//! The `Topology` type: symmetric neighbor views over `n` nodes.

use serde::{Deserialize, Serialize};

use crate::GraphError;

/// An undirected communication graph over nodes `0..n`, stored as per-node
/// sorted neighbor views.
///
/// The views define the graph `G = (V, E)` of the paper: an edge `(i, j)`
/// exists iff `j ∈ Nᵢ`, and symmetry (`j ∈ Nᵢ ⇔ i ∈ Nⱼ`) is an invariant
/// enforced by every constructor and mutation.
///
/// # Examples
///
/// ```
/// use glmia_graph::Topology;
///
/// let ring = Topology::ring(5)?;
/// assert_eq!(ring.view(0), &[1, 4]);
/// assert!(ring.is_regular(2));
/// # Ok::<(), glmia_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    views: Vec<Vec<usize>>,
}

impl Topology {
    /// Builds a topology from explicit neighbor views.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if any view references an out-of-range node,
    /// contains a self-loop or duplicate, or the views are not symmetric.
    pub fn from_views(views: Vec<Vec<usize>>) -> Result<Self, GraphError> {
        let n = views.len();
        let mut sorted = views;
        for (i, view) in sorted.iter_mut().enumerate() {
            view.sort_unstable();
            if view.windows(2).any(|w| w[0] == w[1]) {
                return Err(GraphError::new(format!(
                    "duplicate neighbor in view of {i}"
                )));
            }
            if view.iter().any(|&j| j >= n) {
                return Err(GraphError::new(format!(
                    "view of {i} references a node outside 0..{n}"
                )));
            }
            if view.contains(&i) {
                return Err(GraphError::new(format!("self-loop at node {i}")));
            }
        }
        let t = Self { views: sorted };
        for i in 0..n {
            for &j in t.view(i) {
                if !t.contains_edge(j, i) {
                    return Err(GraphError::new(format!(
                        "asymmetric views: {j} ∈ N_{i} but {i} ∉ N_{j}"
                    )));
                }
            }
        }
        Ok(t)
    }

    /// Creates `n` isolated nodes (used internally by generators).
    pub(crate) fn empty(n: usize) -> Self {
        Self {
            views: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the graph has zero nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The (sorted) neighbor view of node `i` — `Nᵢ` in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn view(&self, i: usize) -> &[usize] {
        &self.views[i]
    }

    /// The degree of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn degree(&self, i: usize) -> usize {
        self.views[i].len()
    }

    /// Whether edge `(i, j)` exists.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn contains_edge(&self, i: usize, j: usize) -> bool {
        self.views[i].binary_search(&j).is_ok()
    }

    /// All edges as `(i, j)` pairs with `i < j`.
    #[must_use]
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, view) in self.views.iter().enumerate() {
            for &j in view {
                if i < j {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Whether every node has degree exactly `k`.
    #[must_use]
    pub fn is_regular(&self, k: usize) -> bool {
        self.views.iter().all(|v| v.len() == k)
    }

    /// Whether the graph is connected (vacuously true for `n <= 1`).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            for &j in &self.views[i] {
                if !seen[j] {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == n
    }

    pub(crate) fn insert_edge_unchecked(&mut self, i: usize, j: usize) {
        if let Err(pos) = self.views[i].binary_search(&j) {
            self.views[i].insert(pos, j);
        }
        if let Err(pos) = self.views[j].binary_search(&i) {
            self.views[j].insert(pos, i);
        }
    }

    pub(crate) fn remove_edge_unchecked(&mut self, i: usize, j: usize) {
        if let Ok(pos) = self.views[i].binary_search(&j) {
            self.views[i].remove(pos);
        }
        if let Ok(pos) = self.views[j].binary_search(&i) {
            self.views[j].remove(pos);
        }
    }

    /// Verifies the symmetry/no-self-loop/no-duplicate invariants; used by
    /// tests and debug assertions.
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        for (i, view) in self.views.iter().enumerate() {
            if view.windows(2).any(|w| w[0] >= w[1]) {
                return false;
            }
            if view.contains(&i) {
                return false;
            }
            if view
                .iter()
                .any(|&j| j >= self.len() || !self.contains_edge(j, i))
            {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_views_validates_symmetry() {
        assert!(Topology::from_views(vec![vec![1], vec![]]).is_err());
        assert!(Topology::from_views(vec![vec![1], vec![0]]).is_ok());
    }

    #[test]
    fn from_views_rejects_self_loop() {
        assert!(Topology::from_views(vec![vec![0]]).is_err());
    }

    #[test]
    fn from_views_rejects_duplicates() {
        assert!(Topology::from_views(vec![vec![1, 1], vec![0, 0]]).is_err());
    }

    #[test]
    fn from_views_rejects_out_of_range() {
        assert!(Topology::from_views(vec![vec![5], vec![0]]).is_err());
    }

    #[test]
    fn from_views_sorts() {
        let t = Topology::from_views(vec![vec![2, 1], vec![0], vec![0]]).unwrap();
        assert_eq!(t.view(0), &[1, 2]);
    }

    #[test]
    fn edges_lists_each_once() {
        let t = Topology::from_views(vec![vec![1, 2], vec![0], vec![0]]).unwrap();
        assert_eq!(t.edges(), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn connectivity_detects_components() {
        let connected = Topology::from_views(vec![vec![1], vec![0, 2], vec![1]]).unwrap();
        assert!(connected.is_connected());
        let split = Topology::from_views(vec![vec![1], vec![0], vec![3], vec![2]]).unwrap();
        assert!(!split.is_connected());
    }

    #[test]
    fn single_node_is_connected() {
        let t = Topology::from_views(vec![vec![]]).unwrap();
        assert!(t.is_connected());
        assert!(t.is_regular(0));
    }

    #[test]
    fn invariants_hold_on_valid_graph() {
        let t = Topology::from_views(vec![vec![1, 2], vec![0, 2], vec![0, 1]]).unwrap();
        assert!(t.invariants_hold());
        assert!(t.is_regular(2));
    }

    #[test]
    fn edge_insert_remove_roundtrip() {
        let mut t = Topology::empty(3);
        t.insert_edge_unchecked(0, 2);
        assert!(t.contains_edge(0, 2) && t.contains_edge(2, 0));
        t.remove_edge_unchecked(2, 0);
        assert!(!t.contains_edge(0, 2) && !t.contains_edge(2, 0));
        assert!(t.invariants_hold());
    }
}

//! Additional reference topology families.
//!
//! The paper's experiments use random k-regular graphs; these families give
//! the analysis toolkit interpretable comparison points with known mixing
//! behaviour: the torus (poorly-mixing regular lattice), the hypercube
//! (well-mixing structured graph) and Watts–Strogatz-style rewired rings
//! (tunable between lattice and random graph).

use rand::Rng;

use crate::{GraphError, Topology};

impl Topology {
    /// A 2-dimensional `rows × cols` torus (wrap-around grid): every node
    /// has degree 4, diameter `Θ(rows + cols)` — a canonical *slow-mixing*
    /// regular topology.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if either side is smaller than 3 (smaller
    /// sides create parallel edges).
    pub fn torus(rows: usize, cols: usize) -> Result<Self, GraphError> {
        if rows < 3 || cols < 3 {
            return Err(GraphError::new("torus sides must be at least 3"));
        }
        let mut g = Topology::empty(rows * cols);
        let id = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                g.insert_edge_unchecked(id(r, c), id((r + 1) % rows, c));
                g.insert_edge_unchecked(id(r, c), id(r, (c + 1) % cols));
            }
        }
        Ok(g)
    }

    /// The `d`-dimensional hypercube on `2^d` nodes: degree `d`, diameter
    /// `d` — a canonical *fast-mixing* structured topology.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `d == 0` or `d > 20` (more than a million
    /// nodes is outside this toolkit's intended scale).
    pub fn hypercube(d: usize) -> Result<Self, GraphError> {
        if d == 0 {
            return Err(GraphError::new("hypercube dimension must be positive"));
        }
        if d > 20 {
            return Err(GraphError::new("hypercube dimension capped at 20"));
        }
        let n = 1usize << d;
        let mut g = Topology::empty(n);
        for i in 0..n {
            for bit in 0..d {
                let j = i ^ (1 << bit);
                if i < j {
                    g.insert_edge_unchecked(i, j);
                }
            }
        }
        Ok(g)
    }

    /// A Watts–Strogatz-style small world: a ring where each node connects
    /// to its `k/2` nearest neighbors on each side, with every edge
    /// rewired to a random endpoint with probability `p` (keeping the
    /// graph simple; degrees may deviate slightly from `k` after
    /// rewiring).
    ///
    /// `p = 0` is the ring lattice (slow mixing); `p = 1` approaches a
    /// random graph (fast mixing).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `k` is odd, zero, or `k >= n`, if
    /// `n < 4`, or if `p` is outside `[0, 1]`.
    pub fn small_world<R: Rng + ?Sized>(
        n: usize,
        k: usize,
        p: f64,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        if n < 4 {
            return Err(GraphError::new("small world requires at least 4 nodes"));
        }
        if k == 0 || !k.is_multiple_of(2) || k >= n {
            return Err(GraphError::new(
                "small-world degree must be even, positive and below n",
            ));
        }
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::new("rewiring probability must be in [0, 1]"));
        }
        let mut g = Topology::empty(n);
        for i in 0..n {
            for offset in 1..=(k / 2) {
                g.insert_edge_unchecked(i, (i + offset) % n);
            }
        }
        if p > 0.0 {
            for (i, j) in g.edges() {
                if !rng.gen_bool(p) {
                    continue;
                }
                // Rewire edge (i, j) to (i, new) when that keeps the graph
                // simple; skip otherwise (standard Watts–Strogatz).
                let new = rng.gen_range(0..n);
                if new == i || g.contains_edge(i, new) {
                    continue;
                }
                g.remove_edge_unchecked(i, j);
                g.insert_edge_unchecked(i, new);
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn torus_is_4_regular_connected() {
        let g = Topology::torus(4, 5).unwrap();
        assert_eq!(g.len(), 20);
        assert!(g.is_regular(4));
        assert!(g.is_connected());
        assert!(g.invariants_hold());
    }

    #[test]
    fn torus_rejects_small_sides() {
        assert!(Topology::torus(2, 5).is_err());
        assert!(Topology::torus(5, 2).is_err());
    }

    #[test]
    fn hypercube_has_degree_d_and_2_pow_d_nodes() {
        let g = Topology::hypercube(4).unwrap();
        assert_eq!(g.len(), 16);
        assert!(g.is_regular(4));
        assert!(g.is_connected());
        // Neighbors differ in exactly one bit.
        for i in 0..g.len() {
            for &j in g.view(i) {
                assert_eq!((i ^ j).count_ones(), 1);
            }
        }
    }

    #[test]
    fn hypercube_rejects_bad_dims() {
        assert!(Topology::hypercube(0).is_err());
        assert!(Topology::hypercube(21).is_err());
    }

    #[test]
    fn small_world_p0_is_ring_lattice() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = Topology::small_world(12, 4, 0.0, &mut rng).unwrap();
        assert!(g.is_regular(4));
        assert!(g.is_connected());
        assert!(g.contains_edge(0, 1) && g.contains_edge(0, 2));
        assert!(g.contains_edge(0, 11) && g.contains_edge(0, 10));
    }

    #[test]
    fn small_world_rewiring_keeps_graph_simple() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [0.1, 0.5, 1.0] {
            let g = Topology::small_world(30, 4, p, &mut rng).unwrap();
            assert!(g.invariants_hold(), "p={p}");
            // Edge count is preserved by rewiring (skips notwithstanding,
            // every rewire removes one and adds one).
            assert_eq!(g.edges().len(), 30 * 2, "p={p}");
        }
    }

    #[test]
    fn small_world_rejects_bad_params() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(Topology::small_world(3, 2, 0.1, &mut rng).is_err());
        assert!(Topology::small_world(10, 3, 0.1, &mut rng).is_err());
        assert!(Topology::small_world(10, 0, 0.1, &mut rng).is_err());
        assert!(Topology::small_world(10, 10, 0.1, &mut rng).is_err());
        assert!(Topology::small_world(10, 2, 1.5, &mut rng).is_err());
    }
}

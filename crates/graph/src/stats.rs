//! Structural graph statistics.
//!
//! Interpretable complements to the spectral analysis: path lengths and
//! clustering explain *why* a topology mixes slowly (long paths, local
//! cliques) in terms a deployment engineer can act on.

use crate::Topology;

/// Structural statistics of a topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Longest shortest path; `None` if the graph is disconnected.
    pub diameter: Option<usize>,
    /// Mean shortest-path length over connected ordered pairs; `None` if
    /// the graph has fewer than 2 nodes or no connected pair.
    pub average_path_length: Option<f64>,
    /// Global clustering coefficient (3 × triangles / connected triples);
    /// 0 when the graph has no connected triples.
    pub clustering_coefficient: f64,
}

impl Topology {
    /// Breadth-first distances from `source`; `usize::MAX` marks
    /// unreachable nodes.
    ///
    /// # Panics
    ///
    /// Panics if `source >= len()`.
    #[must_use]
    pub fn bfs_distances(&self, source: usize) -> Vec<usize> {
        assert!(source < self.len(), "source {source} out of bounds");
        let mut dist = vec![usize::MAX; self.len()];
        dist[source] = 0;
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(i) = queue.pop_front() {
            for &j in self.view(i) {
                if dist[j] == usize::MAX {
                    dist[j] = dist[i] + 1;
                    queue.push_back(j);
                }
            }
        }
        dist
    }

    /// Computes all structural statistics (all-pairs BFS, `O(n·(n+m))` —
    /// fine at this workspace's scales).
    #[must_use]
    pub fn stats(&self) -> GraphStats {
        let n = self.len();
        let edges = self.edges().len();
        let degrees: Vec<usize> = (0..n).map(|i| self.degree(i)).collect();
        let min_degree = degrees.iter().copied().min().unwrap_or(0);
        let max_degree = degrees.iter().copied().max().unwrap_or(0);

        let mut diameter = Some(0usize);
        let mut path_sum = 0u64;
        let mut path_pairs = 0u64;
        for i in 0..n {
            for (j, &d) in self.bfs_distances(i).iter().enumerate() {
                if i == j {
                    continue;
                }
                if d == usize::MAX {
                    diameter = None;
                } else {
                    if let Some(current) = diameter {
                        diameter = Some(current.max(d));
                    }
                    path_sum += d as u64;
                    path_pairs += 1;
                }
            }
        }
        let average_path_length = if path_pairs > 0 && diameter.is_some() {
            Some(path_sum as f64 / path_pairs as f64)
        } else {
            None
        };

        // Global clustering: closed triples / all connected triples.
        let mut triangles = 0u64; // counted 3× (once per corner ordering)
        let mut triples = 0u64;
        for i in 0..n {
            let view = self.view(i);
            let d = view.len() as u64;
            triples += d.saturating_sub(1) * d / 2;
            for (a_idx, &a) in view.iter().enumerate() {
                for &b in &view[a_idx + 1..] {
                    if self.contains_edge(a, b) {
                        triangles += 1;
                    }
                }
            }
        }
        let clustering_coefficient = if triples > 0 {
            triangles as f64 / triples as f64
        } else {
            0.0
        };

        GraphStats {
            nodes: n,
            edges,
            min_degree,
            max_degree,
            diameter,
            average_path_length,
            clustering_coefficient,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_statistics() {
        let g = Topology::ring(8).unwrap();
        let s = g.stats();
        assert_eq!(s.nodes, 8);
        assert_eq!(s.edges, 8);
        assert_eq!((s.min_degree, s.max_degree), (2, 2));
        assert_eq!(s.diameter, Some(4));
        assert_eq!(s.clustering_coefficient, 0.0);
        // Ring of 8: distances 1,1,2,2,3,3,4 from any node → mean 16/7.
        let apl = s.average_path_length.unwrap();
        assert!((apl - 16.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_statistics() {
        let g = Topology::complete(5).unwrap();
        let s = g.stats();
        assert_eq!(s.diameter, Some(1));
        assert_eq!(s.average_path_length, Some(1.0));
        assert!((s.clustering_coefficient - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_graph_has_no_diameter() {
        let g = Topology::from_views(vec![vec![1], vec![0], vec![3], vec![2]]).unwrap();
        let s = g.stats();
        assert_eq!(s.diameter, None);
        assert_eq!(s.average_path_length, None);
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let g = Topology::from_views(vec![vec![1], vec![0, 2], vec![1, 3], vec![2]]).unwrap();
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3]);
        assert_eq!(g.bfs_distances(3), vec![3, 2, 1, 0]);
    }

    #[test]
    fn triangle_has_clustering_one() {
        let g = Topology::from_views(vec![vec![1, 2], vec![0, 2], vec![0, 1]]).unwrap();
        assert!((g.stats().clustering_coefficient - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hypercube_diameter_equals_dimension() {
        let g = Topology::hypercube(5).unwrap();
        assert_eq!(g.stats().diameter, Some(5));
    }

    #[test]
    fn torus_diameter_matches_lattice_formula() {
        let g = Topology::torus(4, 6).unwrap();
        // Torus diameter = floor(rows/2) + floor(cols/2).
        assert_eq!(g.stats().diameter, Some(2 + 3));
    }
}

//! The PeerSwap dynamic peer-sampling update.

use rand::Rng;

use crate::{GraphError, Topology};

impl Topology {
    /// Applies one PeerSwap step: nodes `i` and `j` (which must be
    /// neighbors) exchange their positions in the graph.
    ///
    /// Following §2.4 of the paper, with `p` the current time:
    ///
    /// ```text
    /// Nᵢ ← Nⱼ⁽ᵖ⁻¹⁾ \ {i} ∪ {j}
    /// Nⱼ ← Nᵢ⁽ᵖ⁻¹⁾ \ {j} ∪ {i}
    /// Nₖ ← Nₖ⁽ᵖ⁻¹⁾ \ {i} ∪ {j}   for all k ∈ Nᵢ⁽ᵖ⁻¹⁾ \ {j}
    /// Nₖ ← Nₖ⁽ᵖ⁻¹⁾ \ {j} ∪ {i}   for all k ∈ Nⱼ⁽ᵖ⁻¹⁾ \ {i}
    /// ```
    ///
    /// The swap relabels `i ↔ j`, so the graph stays k-regular and common
    /// neighbors of `i` and `j` keep both in their views.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `i == j`, either index is out of range, or
    /// `(i, j)` is not an edge.
    pub fn peer_swap(&mut self, i: usize, j: usize) -> Result<(), GraphError> {
        let n = self.len();
        if i >= n || j >= n {
            return Err(GraphError::new(format!(
                "peer_swap indices ({i}, {j}) out of range for {n} nodes"
            )));
        }
        if i == j {
            return Err(GraphError::new("peer_swap requires two distinct nodes"));
        }
        if !self.contains_edge(i, j) {
            return Err(GraphError::new(format!(
                "peer_swap requires ({i}, {j}) to be an edge"
            )));
        }
        // Old views minus each other.
        let a: Vec<usize> = self.view(i).iter().copied().filter(|&x| x != j).collect();
        let b: Vec<usize> = self.view(j).iter().copied().filter(|&x| x != i).collect();
        // Detach i and j from their exclusive neighbors, then reattach
        // swapped. Common neighbors (in both a and b) end up unchanged.
        for &x in &a {
            self.remove_edge_unchecked(i, x);
        }
        for &x in &b {
            self.remove_edge_unchecked(j, x);
        }
        for &x in &b {
            self.insert_edge_unchecked(i, x);
        }
        for &x in &a {
            self.insert_edge_unchecked(j, x);
        }
        // (i, j) itself is untouched: i and j remain neighbors.
        debug_assert!(self.invariants_hold());
        Ok(())
    }

    /// PeerSwap wake-up step for node `i`: pick a uniformly random neighbor
    /// `j` and swap positions with it, returning `j`. Returns `None` when
    /// `i` has no neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn swap_with_random_neighbor<R: Rng + ?Sized>(
        &mut self,
        i: usize,
        rng: &mut R,
    ) -> Option<usize> {
        let view = self.view(i);
        if view.is_empty() {
            return None;
        }
        let j = view[rng.gen_range(0..view.len())];
        self.peer_swap(i, j)
            .expect("random neighbor forms a valid edge");
        Some(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn swap_requires_an_edge() {
        let mut g = Topology::ring(5).unwrap();
        assert!(g.peer_swap(0, 2).is_err());
        assert!(g.peer_swap(0, 0).is_err());
        assert!(g.peer_swap(0, 9).is_err());
    }

    #[test]
    fn swap_exchanges_positions_on_a_ring() {
        // Ring 0-1-2-3-4. Swapping 0 and 1 relabels them: new ring is
        // 1-0-2-3-4, i.e. N_0 = {1, 2}, N_1 = {0, 4}.
        let mut g = Topology::ring(5).unwrap();
        g.peer_swap(0, 1).unwrap();
        assert_eq!(g.view(0), &[1, 2]);
        assert_eq!(g.view(1), &[0, 4]);
        assert_eq!(g.view(4), &[1, 3]);
        assert_eq!(g.view(2), &[0, 3]);
        assert!(g.is_regular(2));
        assert!(g.is_connected());
    }

    #[test]
    fn swap_is_an_involution() {
        let mut g = Topology::random_regular(20, 4, &mut rng(0)).unwrap();
        let before = g.clone();
        g.peer_swap(3, g.view(3)[0]).unwrap();
        // Swapping the same pair back restores the original graph.
        let j = *before.view(3).first().unwrap();
        g.peer_swap(3, j).unwrap();
        assert_eq!(g, before);
    }

    #[test]
    fn swap_preserves_regularity_and_connectivity() {
        let mut g = Topology::random_regular(30, 4, &mut rng(1)).unwrap();
        let mut r = rng(2);
        for step in 0..500 {
            let i = r.gen_range(0..g.len());
            g.swap_with_random_neighbor(i, &mut r);
            assert!(g.is_regular(4), "broke regularity at step {step}");
            assert!(g.invariants_hold(), "broke invariants at step {step}");
        }
        assert!(g.is_connected());
    }

    #[test]
    fn swap_with_common_neighbors_keeps_them_intact() {
        // Triangle plus a pendant structure: 0-1, 1-2, 0-2, 2-3, 3-0 forms
        // a graph where 0 and 1 share neighbor 2.
        let g = Topology::from_views(vec![vec![1, 2, 3], vec![0, 2], vec![0, 1, 3], vec![0, 2]])
            .unwrap();
        let mut h = g.clone();
        h.peer_swap(0, 1).unwrap();
        // Node 2 was a common neighbor: still adjacent to both 0 and 1.
        assert!(h.contains_edge(2, 0) && h.contains_edge(2, 1));
        // Node 3 was exclusive to 0: now adjacent to 1 instead.
        assert!(h.contains_edge(3, 1) && !h.contains_edge(3, 0));
        // Degrees swapped with the labels.
        assert_eq!(h.degree(0), g.degree(1));
        assert_eq!(h.degree(1), g.degree(0));
        assert!(h.invariants_hold());
    }

    #[test]
    fn swap_on_isolated_node_returns_none() {
        let mut g = Topology::from_views(vec![vec![1], vec![0], vec![]]).unwrap();
        assert_eq!(g.swap_with_random_neighbor(2, &mut rng(3)), None);
    }

    #[test]
    fn degree_multiset_is_invariant() {
        let mut g =
            Topology::from_views(vec![vec![1, 2, 3], vec![0, 2], vec![0, 1, 3], vec![0, 2]])
                .unwrap();
        let mut degrees_before: Vec<usize> = (0..g.len()).map(|i| g.degree(i)).collect();
        degrees_before.sort_unstable();
        let mut r = rng(4);
        for _ in 0..100 {
            let i = r.gen_range(0..g.len());
            g.swap_with_random_neighbor(i, &mut r);
        }
        let mut degrees_after: Vec<usize> = (0..g.len()).map(|i| g.degree(i)).collect();
        degrees_after.sort_unstable();
        assert_eq!(degrees_before, degrees_after);
    }
}

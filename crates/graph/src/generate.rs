//! Random k-regular graph generation and deterministic reference topologies.

use rand::Rng;

use crate::{GraphError, Topology};

/// How many pairing attempts the configuration model makes before giving up.
const MAX_PAIRING_ATTEMPTS: usize = 10_000;

/// How many generated graphs we reject for disconnectedness before giving up.
const MAX_CONNECTIVITY_ATTEMPTS: usize = 1_000;

impl Topology {
    /// Generates a uniformly random *connected* k-regular graph over `n`
    /// nodes using the configuration (pairing) model with rejection, the
    /// standard construction behind random-peer-sampling overlays.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the parameters are infeasible (`k >= n`,
    /// `n·k` odd, or `k == 0` with `n > 1`) or if generation repeatedly
    /// fails (astronomically unlikely for feasible parameters).
    pub fn random_regular<R: Rng + ?Sized>(
        n: usize,
        k: usize,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        validate_regular_params(n, k)?;
        if n == 0 {
            return Ok(Topology::empty(0));
        }
        if k == 0 {
            // Feasible only for n == 1 after validation.
            return Ok(Topology::empty(n));
        }
        for _ in 0..MAX_CONNECTIVITY_ATTEMPTS {
            let g = pairing_model(n, k, rng)?;
            if g.is_connected() {
                debug_assert!(g.invariants_hold());
                return Ok(g);
            }
        }
        Err(GraphError::new(format!(
            "failed to generate a connected {k}-regular graph on {n} nodes \
             after {MAX_CONNECTIVITY_ATTEMPTS} attempts"
        )))
    }

    /// The deterministic ring (cycle) topology — the canonical 2-regular
    /// graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `n < 3`.
    pub fn ring(n: usize) -> Result<Self, GraphError> {
        if n < 3 {
            return Err(GraphError::new("a ring requires at least 3 nodes"));
        }
        let mut g = Topology::empty(n);
        for i in 0..n {
            g.insert_edge_unchecked(i, (i + 1) % n);
        }
        Ok(g)
    }

    /// The complete graph on `n` nodes (the `(n−1)`-regular limit the paper
    /// uses as the reference point for large view sizes).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `n == 0`.
    pub fn complete(n: usize) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::new("a complete graph requires at least 1 node"));
        }
        let mut g = Topology::empty(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.insert_edge_unchecked(i, j);
            }
        }
        Ok(g)
    }
}

fn validate_regular_params(n: usize, k: usize) -> Result<(), GraphError> {
    if n == 0 {
        return Ok(());
    }
    if k >= n {
        return Err(GraphError::new(format!(
            "degree {k} must be smaller than the node count {n}"
        )));
    }
    if n > 1 && k == 0 {
        return Err(GraphError::new(
            "degree 0 on more than one node can never be connected",
        ));
    }
    if !(n * k).is_multiple_of(2) {
        return Err(GraphError::new(format!(
            "a {k}-regular graph on {n} nodes is infeasible (n·k must be even)"
        )));
    }
    Ok(())
}

/// One configuration-model draw in the incremental (Steger–Wormald) style:
/// repeatedly pair two random *suitable* stubs (different nodes, edge not
/// yet present); restart on the rare deadlock where no suitable pair
/// remains. Unlike whole-matching rejection, this stays efficient for the
/// paper's densest setting (k = 25).
fn pairing_model<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Result<Topology, GraphError> {
    'attempt: for _ in 0..MAX_PAIRING_ATTEMPTS {
        let mut stubs: Vec<usize> = (0..n).flat_map(|i| std::iter::repeat_n(i, k)).collect();
        let mut g = Topology::empty(n);
        while !stubs.is_empty() {
            let mut paired = false;
            // Random proposals; bounded so a deadlock falls through to the
            // exhaustive check instead of looping forever.
            for _ in 0..50 {
                let ai = rng.gen_range(0..stubs.len());
                let bi = rng.gen_range(0..stubs.len());
                let (a, b) = (stubs[ai], stubs[bi]);
                if ai == bi || a == b || g.contains_edge(a, b) {
                    continue;
                }
                g.insert_edge_unchecked(a, b);
                // swap_remove the larger index first so indices stay valid.
                let (hi, lo) = if ai > bi { (ai, bi) } else { (bi, ai) };
                stubs.swap_remove(hi);
                stubs.swap_remove(lo);
                paired = true;
                break;
            }
            if paired {
                continue;
            }
            // Exhaustive scan: does any suitable pair remain?
            let found = 'scan: {
                for x in 0..stubs.len() {
                    for y in (x + 1)..stubs.len() {
                        let (a, b) = (stubs[x], stubs[y]);
                        if a != b && !g.contains_edge(a, b) {
                            break 'scan Some((x, y));
                        }
                    }
                }
                None
            };
            match found {
                Some((x, y)) => {
                    let (a, b) = (stubs[x], stubs[y]);
                    g.insert_edge_unchecked(a, b);
                    stubs.swap_remove(y);
                    stubs.swap_remove(x);
                }
                None => continue 'attempt,
            }
        }
        return Ok(g);
    }
    Err(GraphError::new(format!(
        "pairing model failed to produce a simple {k}-regular graph on {n} nodes \
         after {MAX_PAIRING_ATTEMPTS} attempts"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_infeasible_parameters() {
        let mut r = rng(0);
        assert!(Topology::random_regular(5, 5, &mut r).is_err());
        assert!(Topology::random_regular(5, 3, &mut r).is_err()); // odd n*k
        assert!(Topology::random_regular(4, 0, &mut r).is_err());
    }

    #[test]
    fn paper_configurations_generate() {
        // All view sizes used in the paper, at the paper's 150-node scale.
        let mut r = rng(1);
        for &k in &[2usize, 5, 10, 25] {
            let g = Topology::random_regular(150, k, &mut r).unwrap();
            assert!(g.is_regular(k), "k={k}");
            assert!(g.is_connected(), "k={k}");
            assert!(g.invariants_hold(), "k={k}");
        }
    }

    #[test]
    fn small_graphs_generate() {
        let mut r = rng(2);
        let g = Topology::random_regular(4, 2, &mut r).unwrap();
        assert!(g.is_regular(2));
        let g = Topology::random_regular(1, 0, &mut r).unwrap();
        assert_eq!(g.len(), 1);
        let g = Topology::random_regular(0, 0, &mut r).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Topology::random_regular(30, 4, &mut rng(7)).unwrap();
        let b = Topology::random_regular(30, 4, &mut rng(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Topology::random_regular(30, 4, &mut rng(7)).unwrap();
        let b = Topology::random_regular(30, 4, &mut rng(8)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn ring_is_2_regular_connected() {
        let g = Topology::ring(10).unwrap();
        assert!(g.is_regular(2));
        assert!(g.is_connected());
        assert_eq!(g.view(9), &[0, 8]);
        assert!(Topology::ring(2).is_err());
    }

    #[test]
    fn complete_graph_has_full_degree() {
        let g = Topology::complete(6).unwrap();
        assert!(g.is_regular(5));
        assert_eq!(g.edges().len(), 15);
        assert!(Topology::complete(0).is_err());
    }
}

//! Communication topologies for decentralized learning.
//!
//! The paper runs gossip learning over *k-regular* graphs (every node has
//! exactly `k` neighbors) in two regimes:
//!
//! * **static** — the initial random k-regular graph never changes;
//! * **dynamic** — the [PeerSwap] random peer-sampling protocol
//!   (Guerraoui et al. 2024) is applied on every node wake-up: the waking
//!   node swaps graph positions with a random neighbor, which keeps the graph
//!   k-regular while rapidly re-randomizing it (§2.4).
//!
//! This crate provides the [`Topology`] type (neighbor views + invariant
//! checks), random k-regular generation via the configuration model, and the
//! exact PeerSwap update rule.
//!
//! [PeerSwap]: Topology::peer_swap
//!
//! # Examples
//!
//! ```
//! use glmia_graph::Topology;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut g = Topology::random_regular(20, 4, &mut rng)?;
//! assert!(g.is_regular(4) && g.is_connected());
//!
//! // One PeerSwap step keeps the graph 4-regular.
//! let waking = 3;
//! g.swap_with_random_neighbor(waking, &mut rng);
//! assert!(g.is_regular(4));
//! # Ok::<(), glmia_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod families;
mod generate;
mod peerswap;
mod stats;
mod topology;

pub use error::GraphError;
pub use stats::GraphStats;
pub use topology::Topology;

//! Error type for invalid topologies and operations.

use std::error::Error;
use std::fmt;

/// Error returned on invalid graph parameters or operations.
///
/// # Examples
///
/// ```
/// use glmia_graph::Topology;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// // k must be smaller than n.
/// let err = Topology::random_regular(4, 4, &mut rng).unwrap_err();
/// assert!(err.to_string().contains("degree"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphError {
    message: String,
}

impl GraphError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<GraphError>();
    }
}

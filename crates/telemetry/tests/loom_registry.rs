//! Model-checked concurrency properties of the telemetry registry.
//!
//! Compiled and run only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p glmia-telemetry --test loom_registry
//! ```
//!
//! Each test hands a closure to [`glmia_telemetry::loom::model`], which
//! executes it once per interleaving of the registry's atomic operations
//! (the shims in `src/sync.rs` make every atomic access a scheduling
//! point). The assertions therefore hold on *every* schedule, not just
//! the ones the OS happens to produce — this is what the lint config's
//! `atomic-ordering-audit` exemption for `registry.rs`/`alloc.rs` cites
//! as evidence that `Ordering::Relaxed` is safe there.
//!
//! Models are deliberately tiny (2 threads, 1–2 operations each): the
//! schedule tree grows factorially, and the protocol's commutativity
//! arguments don't get stronger with more identical operations.
#![cfg(loom)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use glmia_telemetry::loom::{model, thread, yield_point};
use glmia_telemetry::{
    count, gauge_set, observe, Gauge, Histogram, Instrument, Telemetry, HISTOGRAM_BUCKETS,
};

/// Self-test of the vendored checker: a naive load-then-store counter
/// (the bug `fetch_add` exists to prevent) MUST be caught. If the checker
/// ever stops exploring the interleaving where both threads read 0 before
/// either writes, every other model in this file is vacuous.
#[test]
fn checker_finds_the_lost_update_in_a_naive_counter() {
    let outcome = std::panic::catch_unwind(|| {
        model(|| {
            let cell = Arc::new(AtomicU64::new(0));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    thread::spawn(move || {
                        yield_point();
                        let seen = cell.load(Ordering::SeqCst);
                        yield_point();
                        cell.store(seen + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for worker in workers {
                worker.join();
            }
            assert_eq!(cell.load(Ordering::SeqCst), 2);
        });
    });
    assert!(
        outcome.is_err(),
        "checker missed the lost-update schedule — exploration is broken"
    );
}

/// Concurrent `count()` increments commute: no interleaving of the
/// per-thread `fetch_add`s loses an update, so the joined total is exact.
#[test]
fn counter_increments_are_never_lost() {
    model(|| {
        let telemetry = Telemetry::new();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let telemetry = telemetry.clone();
                thread::spawn(move || {
                    let _scope = telemetry.enter();
                    count(Instrument::GossipSends, 1);
                    count(Instrument::GossipSends, 1);
                })
            })
            .collect();
        for handle in handles {
            handle.join();
        }
        assert_eq!(telemetry.counter(Instrument::GossipSends), 4);
    });
}

/// `gauge_set` is a `store` (last value) plus a `fetch_max` (high-water
/// mark). On every schedule the maximum is the global maximum, and the
/// last value is one of the written values — never a torn third value.
#[test]
fn gauge_max_is_the_global_maximum_on_every_schedule() {
    model(|| {
        let telemetry = Telemetry::new();
        let writers: Vec<_> = [3u64, 11u64]
            .into_iter()
            .map(|value| {
                let telemetry = telemetry.clone();
                thread::spawn(move || {
                    let _scope = telemetry.enter();
                    gauge_set(Gauge::QueueDepth, value);
                })
            })
            .collect();
        for writer in writers {
            writer.join();
        }
        let last = telemetry.gauge(Gauge::QueueDepth);
        assert!(last == 3 || last == 11, "torn gauge last-value: {last}");
        assert_eq!(telemetry.take_gauge_max(Gauge::QueueDepth), 11);
        // The drain is a `swap(0)`: after the barrier read the running
        // maximum restarts from zero on every schedule.
        assert_eq!(telemetry.take_gauge_max(Gauge::QueueDepth), 0);
    });
}

/// Histogram observations are conserved: every recorded value lands in
/// exactly one bucket, and concurrent `fetch_add`s on the same bucket
/// array never lose a count.
#[test]
fn histogram_observations_are_conserved() {
    model(|| {
        let telemetry = Telemetry::new();
        // 1 falls in the first bucket, 300 is past every edge (256) and
        // lands in the overflow bucket — distinct slots, so the test also
        // catches an interleaving that routes a value to the wrong bucket.
        let observers: Vec<_> = [1u64, 300u64]
            .into_iter()
            .map(|value| {
                let telemetry = telemetry.clone();
                thread::spawn(move || {
                    let _scope = telemetry.enter();
                    observe(Histogram::QueueDepth, value);
                })
            })
            .collect();
        for observer in observers {
            observer.join();
        }
        let buckets = telemetry.histogram(Histogram::QueueDepth);
        assert_eq!(buckets.iter().sum::<u64>(), 2);
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 1);
    });
}

/// Thread-local scope isolation: two threads entered into *different*
/// registries never cross-record, on any schedule.
#[test]
fn scopes_on_different_threads_do_not_cross_record() {
    model(|| {
        let first = Telemetry::new();
        let second = Telemetry::new();
        let spawn_counter = |telemetry: Telemetry, n: u64| {
            thread::spawn(move || {
                let _scope = telemetry.enter();
                count(Instrument::RunnerRounds, n);
            })
        };
        let a = spawn_counter(first.clone(), 1);
        let b = spawn_counter(second.clone(), 10);
        a.join();
        b.join();
        assert_eq!(first.counter(Instrument::RunnerRounds), 1);
        assert_eq!(second.counter(Instrument::RunnerRounds), 10);
    });
}

/// Scope enter/exit nesting restores the previous recording target, and
/// the restore on one thread is invisible to a concurrently recording
/// thread sharing the outer registry.
#[test]
fn nested_scope_exit_restores_outer_registry() {
    model(|| {
        let outer = Telemetry::new();
        let inner = Telemetry::new();
        let peer = {
            let outer = outer.clone();
            thread::spawn(move || {
                let _scope = outer.enter();
                count(Instrument::GossipMerges, 1);
            })
        };
        {
            let _outer_scope = outer.enter();
            count(Instrument::GossipMerges, 1);
            {
                let _inner_scope = inner.enter();
                count(Instrument::GossipMerges, 100);
            }
            // Inner scope dropped: recording lands in `outer` again.
            count(Instrument::GossipMerges, 1);
        }
        peer.join();
        assert_eq!(outer.counter(Instrument::GossipMerges), 3);
        assert_eq!(inner.counter(Instrument::GossipMerges), 100);
    });
}

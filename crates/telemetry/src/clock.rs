//! The workspace's single sanctioned wall-clock access point.
//!
//! Every other crate is barred from calling `Instant::now` directly — by
//! clippy's `disallowed_methods` and by the xtask `no-wall-clock` lint,
//! whose allowlist names exactly this file. Instrumented code asks for a
//! [`Tick`] instead, which keeps all wall-clock reads funneled through one
//! audited shim: timings stay observability output only and can never leak
//! into simulation state.
//!
//! [`Tick`] wraps a monotonic [`Instant`], so readings are immune to
//! system clock adjustments.

use std::time::{Duration, Instant};

/// An opaque monotonic timestamp taken via [`now`].
#[derive(Debug, Clone, Copy)]
pub struct Tick(Instant);

/// The current monotonic time.
///
/// This is the only place in the workspace allowed to call
/// `Instant::now`.
#[must_use]
#[allow(clippy::disallowed_methods)]
pub fn now() -> Tick {
    Tick(Instant::now())
}

impl Tick {
    /// Time elapsed since this tick was taken.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Seconds elapsed since this tick was taken.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic_and_elapsed_is_nonnegative() {
        let a = now();
        let secs = a.elapsed_secs();
        assert!(secs >= 0.0);
        assert!(a.elapsed() >= Duration::ZERO);
    }
}

//! The low-overhead metrics registry.
//!
//! A [`Telemetry`] handle owns a fixed table of atomic instruments —
//! monotonic counters, a last/max gauge pair, and fixed-bucket histograms
//! — shared by every thread that [`enter`](Telemetry::enter)s it. The hot
//! path is lock-free: recording is one thread-local lookup plus one
//! relaxed atomic RMW, and when no handle is installed the free functions
//! cost a thread-local read and a branch.
//!
//! Instrumented crates never see the handle. They call the free functions
//! ([`count`], [`gauge_max`], [`observe`]) which resolve the current
//! thread's installed handle; the runner installs one scope guard per
//! participating thread. This keeps instrumentation signature-free: the
//! gossip engine, the spectral kernels and the attack evaluator need no
//! telemetry parameter threaded through them.
//!
//! Determinism: counters record *logical* work (messages, matvecs,
//! scores), never wall time, so their totals are a pure function of the
//! simulated run — identical at any thread count once every worker has
//! joined. Per-round snapshots drained at round barriers are restricted by
//! the caller to instruments only touched on the simulation thread, which
//! makes the periodic stream thread-count invariant too.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::sync::{AtomicU64, Ordering};

use crate::spans::SpanStat;

/// Every named counter instrument, grouped by subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instrument {
    /// Models handed to the transport by the gossip engine.
    GossipSends,
    /// Models delivered to a recipient's buffer or merge path.
    GossipDelivers,
    /// Buffered-model merges applied at node wake-ups.
    GossipMerges,
    /// Models dropped by failure injection.
    GossipDrops,
    /// Sends served from the shared flat-snapshot cache (`Arc` clone).
    GossipSnapshotHits,
    /// Sends that had to materialize a fresh flat snapshot.
    GossipSnapshotMisses,
    /// Scheduler events processed by the discrete-event loop.
    RunnerEvents,
    /// Simulated rounds completed.
    RunnerRounds,
    /// Evaluated rounds (attack replays) completed.
    RunnerEvals,
    /// Sparse/dense mixing-matrix applications inside power iterations.
    SpectralMatvecs,
    /// Power-iteration sweeps (one forward + transpose pass per sweep).
    SpectralSweeps,
    /// Nonzeros of mixing matrices materialized for spectral analysis.
    SpectralNnz,
    /// Membership-inference scores computed (member + non-member samples).
    MiaScores,
    /// Node evaluations served from the pointer-identity eval cache.
    MiaEvalCacheHits,
    /// Node evaluations that ran the full attack replay.
    MiaEvalCacheMisses,
}

impl Instrument {
    /// Number of counter instruments.
    pub const COUNT: usize = 15;

    /// All instruments, in canonical reporting order.
    pub const ALL: [Instrument; Self::COUNT] = [
        Instrument::GossipSends,
        Instrument::GossipDelivers,
        Instrument::GossipMerges,
        Instrument::GossipDrops,
        Instrument::GossipSnapshotHits,
        Instrument::GossipSnapshotMisses,
        Instrument::RunnerEvents,
        Instrument::RunnerRounds,
        Instrument::RunnerEvals,
        Instrument::SpectralMatvecs,
        Instrument::SpectralSweeps,
        Instrument::SpectralNnz,
        Instrument::MiaScores,
        Instrument::MiaEvalCacheHits,
        Instrument::MiaEvalCacheMisses,
    ];

    /// Stable snake_case name used in `telemetry.jsonl`, `profile.json`
    /// and the prometheus exposition (prefixed `glmia_telemetry_` there).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Instrument::GossipSends => "gossip_sends",
            Instrument::GossipDelivers => "gossip_delivers",
            Instrument::GossipMerges => "gossip_merges",
            Instrument::GossipDrops => "gossip_drops",
            Instrument::GossipSnapshotHits => "gossip_snapshot_hits",
            Instrument::GossipSnapshotMisses => "gossip_snapshot_misses",
            Instrument::RunnerEvents => "runner_events",
            Instrument::RunnerRounds => "runner_rounds",
            Instrument::RunnerEvals => "runner_evals",
            Instrument::SpectralMatvecs => "spectral_matvecs",
            Instrument::SpectralSweeps => "spectral_sweeps",
            Instrument::SpectralNnz => "spectral_nnz",
            Instrument::MiaScores => "mia_scores",
            Instrument::MiaEvalCacheHits => "mia_eval_cache_hits",
            Instrument::MiaEvalCacheMisses => "mia_eval_cache_misses",
        }
    }

    /// One-line help text for the prometheus exposition.
    #[must_use]
    pub fn help(self) -> &'static str {
        match self {
            Instrument::GossipSends => "Models handed to the transport by the gossip engine",
            Instrument::GossipDelivers => "Models delivered to a recipient",
            Instrument::GossipMerges => "Buffered-model merges applied at wake-ups",
            Instrument::GossipDrops => "Models dropped by failure injection",
            Instrument::GossipSnapshotHits => "Sends served from the shared snapshot cache",
            Instrument::GossipSnapshotMisses => "Sends that materialized a fresh snapshot",
            Instrument::RunnerEvents => "Scheduler events processed",
            Instrument::RunnerRounds => "Simulated rounds completed",
            Instrument::RunnerEvals => "Evaluated rounds completed",
            Instrument::SpectralMatvecs => "Mixing-matrix applications in power iterations",
            Instrument::SpectralSweeps => "Power-iteration sweeps",
            Instrument::SpectralNnz => "Nonzeros of materialized mixing matrices",
            Instrument::MiaScores => "Membership-inference scores computed",
            Instrument::MiaEvalCacheHits => "Node evaluations served from the eval cache",
            Instrument::MiaEvalCacheMisses => "Node evaluations that ran the full replay",
        }
    }

    fn index(self) -> usize {
        match self {
            Instrument::GossipSends => 0,
            Instrument::GossipDelivers => 1,
            Instrument::GossipMerges => 2,
            Instrument::GossipDrops => 3,
            Instrument::GossipSnapshotHits => 4,
            Instrument::GossipSnapshotMisses => 5,
            Instrument::RunnerEvents => 6,
            Instrument::RunnerRounds => 7,
            Instrument::RunnerEvals => 8,
            Instrument::SpectralMatvecs => 9,
            Instrument::SpectralSweeps => 10,
            Instrument::SpectralNnz => 11,
            Instrument::MiaScores => 12,
            Instrument::MiaEvalCacheHits => 13,
            Instrument::MiaEvalCacheMisses => 14,
        }
    }
}

/// Gauge instruments: a last-written value plus a running maximum that the
/// round barrier can drain and reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gauge {
    /// Depth of the discrete-event scheduler queue.
    QueueDepth,
}

impl Gauge {
    /// Number of gauge instruments.
    pub const COUNT: usize = 1;

    /// Stable snake_case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gauge::QueueDepth => "queue_depth",
        }
    }

    fn index(self) -> usize {
        match self {
            Gauge::QueueDepth => 0,
        }
    }
}

/// Fixed-bucket histogram instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Histogram {
    /// Scheduler queue depth sampled at every processed event.
    QueueDepth,
}

impl Histogram {
    /// Number of histogram instruments.
    pub const COUNT: usize = 1;

    /// Stable snake_case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Histogram::QueueDepth => "queue_depth",
        }
    }

    fn index(self) -> usize {
        match self {
            Histogram::QueueDepth => 0,
        }
    }
}

/// Upper bucket edges (inclusive) shared by every histogram instrument;
/// values above the last edge land in an overflow bucket.
pub const HISTOGRAM_EDGES: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 256];

/// Buckets per histogram: one per edge plus the overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = HISTOGRAM_EDGES.len() + 1;

fn bucket_of(value: u64) -> usize {
    HISTOGRAM_EDGES
        .iter()
        .position(|&edge| value <= edge)
        .unwrap_or(HISTOGRAM_EDGES.len())
}

/// The shared instrument table behind a [`Telemetry`] handle.
pub(crate) struct Inner {
    counters: [AtomicU64; Instrument::COUNT],
    gauge_last: [AtomicU64; Gauge::COUNT],
    gauge_max: [AtomicU64; Gauge::COUNT],
    histograms: [[AtomicU64; HISTOGRAM_BUCKETS]; Histogram::COUNT],
    pub(crate) spans: Mutex<BTreeMap<String, SpanStat>>,
}

impl Inner {
    /// Locks the span table, recovering from poison: span statistics are
    /// plain accumulators, so a panicked recorder leaves them merely
    /// incomplete, never inconsistent.
    pub(crate) fn lock_spans(&self) -> MutexGuard<'_, BTreeMap<String, SpanStat>> {
        self.spans.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn new() -> Self {
        Self {
            counters: [const { AtomicU64::new(0) }; Instrument::COUNT],
            gauge_last: [const { AtomicU64::new(0) }; Gauge::COUNT],
            gauge_max: [const { AtomicU64::new(0) }; Gauge::COUNT],
            histograms: [[const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS]; Histogram::COUNT],
            spans: Mutex::new(BTreeMap::new()),
        }
    }
}

thread_local! {
    pub(crate) static CURRENT: RefCell<Option<Arc<Inner>>> = const { RefCell::new(None) };
}

/// Adds `n` to `instrument` on the current thread's installed handle;
/// no-op when telemetry is off.
#[inline]
pub fn count(instrument: Instrument, n: u64) {
    CURRENT.with(|current| {
        if let Some(inner) = current.borrow().as_deref() {
            inner.counters[instrument.index()].fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// Records `value` on `gauge` (last value + running maximum); no-op when
/// telemetry is off.
#[inline]
pub fn gauge_set(gauge: Gauge, value: u64) {
    CURRENT.with(|current| {
        if let Some(inner) = current.borrow().as_deref() {
            inner.gauge_last[gauge.index()].store(value, Ordering::Relaxed);
            inner.gauge_max[gauge.index()].fetch_max(value, Ordering::Relaxed);
        }
    });
}

/// Adds an observation to `histogram`'s fixed buckets; no-op when
/// telemetry is off.
#[inline]
pub fn observe(histogram: Histogram, value: u64) {
    CURRENT.with(|current| {
        if let Some(inner) = current.borrow().as_deref() {
            inner.histograms[histogram.index()][bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Whether a telemetry handle is installed on the current thread.
#[must_use]
pub fn is_active() -> bool {
    CURRENT.with(|current| current.borrow().is_some())
}

/// A point-in-time reading of every counter instrument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    values: [u64; Instrument::COUNT],
}

impl CounterSnapshot {
    /// The snapshot's value for `instrument`.
    #[must_use]
    pub fn get(&self, instrument: Instrument) -> u64 {
        self.values[instrument.index()]
    }

    /// Per-instrument difference `self - earlier` (saturating).
    #[must_use]
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut values = [0u64; Instrument::COUNT];
        for (i, slot) in values.iter_mut().enumerate() {
            *slot = self.values[i].saturating_sub(earlier.values[i]);
        }
        CounterSnapshot { values }
    }

    /// `(name, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Instrument, u64)> + '_ {
        Instrument::ALL.iter().map(move |&i| (i, self.get(i)))
    }

    /// The snapshot as a name-keyed sorted map.
    #[must_use]
    pub fn to_map(&self) -> BTreeMap<String, u64> {
        self.iter()
            .map(|(i, v)| (i.name().to_string(), v))
            .collect()
    }
}

/// A shared, cloneable telemetry registry.
///
/// Cloning is cheap (`Arc`); every clone records into the same instrument
/// table. Install it on a thread with [`enter`](Telemetry::enter).
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").finish_non_exhaustive()
    }
}

impl Telemetry {
    /// A fresh registry with every instrument at zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner::new()),
        }
    }

    /// Installs this registry as the current thread's recording target
    /// until the returned guard drops. Guards nest; the previous target is
    /// restored on drop. The guard must stay on the thread that created it
    /// (it is `!Send` by construction).
    #[must_use]
    pub fn enter(&self) -> TelemetryScope {
        let prev = CURRENT.with(|current| current.borrow_mut().replace(Arc::clone(&self.inner)));
        TelemetryScope {
            prev,
            _not_send: PhantomData,
        }
    }

    /// The handle installed on the current thread, if any. Lets code that
    /// spawns workers re-enter the caller's registry inside each worker
    /// without plumbing a handle through every call signature.
    #[must_use]
    pub fn current() -> Option<Self> {
        CURRENT.with(|current| {
            current.borrow().as_ref().map(|inner| Self {
                inner: Arc::clone(inner),
            })
        })
    }

    /// Reads every counter at once.
    #[must_use]
    pub fn counters(&self) -> CounterSnapshot {
        let mut values = [0u64; Instrument::COUNT];
        for (i, slot) in values.iter_mut().enumerate() {
            *slot = self.inner.counters[i].load(Ordering::Relaxed);
        }
        CounterSnapshot { values }
    }

    /// A single counter's current value.
    #[must_use]
    pub fn counter(&self, instrument: Instrument) -> u64 {
        self.inner.counters[instrument.index()].load(Ordering::Relaxed)
    }

    /// The gauge's last-written value.
    #[must_use]
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.inner.gauge_last[gauge.index()].load(Ordering::Relaxed)
    }

    /// Drains the gauge's running maximum, resetting it to zero — the
    /// round barrier's per-round high-water read.
    #[must_use]
    pub fn take_gauge_max(&self, gauge: Gauge) -> u64 {
        self.inner.gauge_max[gauge.index()].swap(0, Ordering::Relaxed)
    }

    /// The histogram's bucket counts (one per [`HISTOGRAM_EDGES`] entry
    /// plus the overflow bucket).
    #[must_use]
    pub fn histogram(&self, histogram: Histogram) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out
            .iter_mut()
            .zip(&self.inner.histograms[histogram.index()])
        {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    pub(crate) fn inner(&self) -> &Arc<Inner> {
        &self.inner
    }
}

/// Guard returned by [`Telemetry::enter`]; restores the thread's previous
/// recording target on drop.
pub struct TelemetryScope {
    prev: Option<Arc<Inner>>,
    // Keeps the guard on its creating thread: restoring the previous
    // handle on a different thread would corrupt both threads' state.
    _not_send: PhantomData<*const ()>,
}

impl Drop for TelemetryScope {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|current| *current.borrow_mut() = prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_functions_are_inert_without_a_handle() {
        assert!(!is_active());
        count(Instrument::GossipSends, 5);
        gauge_set(Gauge::QueueDepth, 9);
        observe(Histogram::QueueDepth, 3);
        // Nothing to assert against — the point is no panic and no state.
        assert!(!is_active());
    }

    #[test]
    fn counts_land_on_the_entered_handle() {
        let telemetry = Telemetry::new();
        {
            let _guard = telemetry.enter();
            assert!(is_active());
            count(Instrument::GossipSends, 2);
            count(Instrument::GossipSends, 3);
            count(Instrument::MiaScores, 7);
        }
        assert!(!is_active());
        assert_eq!(telemetry.counter(Instrument::GossipSends), 5);
        assert_eq!(telemetry.counter(Instrument::MiaScores), 7);
        assert_eq!(telemetry.counter(Instrument::GossipDrops), 0);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = Telemetry::new();
        let inner = Telemetry::new();
        let _o = outer.enter();
        {
            let _i = inner.enter();
            count(Instrument::RunnerRounds, 1);
        }
        count(Instrument::RunnerRounds, 10);
        assert_eq!(inner.counter(Instrument::RunnerRounds), 1);
        assert_eq!(outer.counter(Instrument::RunnerRounds), 10);
    }

    #[test]
    fn deltas_subtract_snapshots() {
        let telemetry = Telemetry::new();
        let _g = telemetry.enter();
        count(Instrument::GossipSends, 4);
        let before = telemetry.counters();
        count(Instrument::GossipSends, 6);
        let delta = telemetry.counters().delta_since(&before);
        assert_eq!(delta.get(Instrument::GossipSends), 6);
        assert_eq!(delta.get(Instrument::GossipMerges), 0);
    }

    #[test]
    fn gauge_max_drains_to_zero() {
        let telemetry = Telemetry::new();
        let _g = telemetry.enter();
        gauge_set(Gauge::QueueDepth, 3);
        gauge_set(Gauge::QueueDepth, 11);
        gauge_set(Gauge::QueueDepth, 5);
        assert_eq!(telemetry.gauge(Gauge::QueueDepth), 5);
        assert_eq!(telemetry.take_gauge_max(Gauge::QueueDepth), 11);
        assert_eq!(telemetry.take_gauge_max(Gauge::QueueDepth), 0);
    }

    #[test]
    fn histogram_buckets_are_cumulative_free_and_fixed() {
        let telemetry = Telemetry::new();
        let _g = telemetry.enter();
        observe(Histogram::QueueDepth, 0); // <= 1
        observe(Histogram::QueueDepth, 1); // <= 1
        observe(Histogram::QueueDepth, 2); // <= 2
        observe(Histogram::QueueDepth, 1000); // overflow
        let buckets = telemetry.histogram(Histogram::QueueDepth);
        assert_eq!(buckets[0], 2);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn cross_thread_totals_sum_once_joined() {
        let telemetry = Telemetry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = telemetry.clone();
                scope.spawn(move || {
                    let _g = handle.enter();
                    for _ in 0..1000 {
                        count(Instrument::SpectralMatvecs, 1);
                    }
                });
            }
        });
        assert_eq!(telemetry.counter(Instrument::SpectralMatvecs), 4000);
    }

    #[test]
    fn snapshot_map_is_name_sorted_and_complete() {
        let telemetry = Telemetry::new();
        let map = telemetry.counters().to_map();
        assert_eq!(map.len(), Instrument::COUNT);
        let names: Vec<&str> = map.keys().map(String::as_str).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}

//! Atomic-type indirection for concurrency model checking.
//!
//! Normal builds re-export `std::sync::atomic` unchanged, so the registry
//! and the counting allocator compile to exactly the code they always did.
//! Under `RUSTFLAGS="--cfg loom"` the same names resolve to shims that
//! insert a [`crate::loom`] scheduling point before every operation, which
//! lets `loom::model` exhaustively interleave the atomic accesses of the
//! modeled threads (see `tests/loom_registry.rs`). Outside a `model` run —
//! e.g. the regular unit tests compiled with the cfg active — the
//! scheduling points are no-ops and the shims behave like plain atomics.

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(loom)]
pub(crate) use shim::AtomicU64;
#[cfg(loom)]
pub(crate) use std::sync::atomic::Ordering;

#[cfg(loom)]
mod shim {
    use std::sync::atomic::Ordering;

    /// `AtomicU64` with a model-checker scheduling point before every
    /// access.
    ///
    /// The shim executes every operation under `Ordering::SeqCst`
    /// regardless of the ordering the call site names: the vendored
    /// checker explores sequentially-consistent interleavings only. That
    /// is sound for the registry's protocol because its correctness
    /// argument is commutativity (`fetch_add`/`fetch_max` tolerate any
    /// interleaving), not ordering — see DESIGN.md §8.
    pub(crate) struct AtomicU64 {
        inner: std::sync::atomic::AtomicU64,
    }

    impl AtomicU64 {
        pub(crate) const fn new(value: u64) -> Self {
            Self {
                inner: std::sync::atomic::AtomicU64::new(value),
            }
        }

        pub(crate) fn load(&self, _order: Ordering) -> u64 {
            crate::loom::yield_point();
            self.inner.load(Ordering::SeqCst)
        }

        pub(crate) fn store(&self, value: u64, _order: Ordering) {
            crate::loom::yield_point();
            self.inner.store(value, Ordering::SeqCst);
        }

        pub(crate) fn swap(&self, value: u64, _order: Ordering) -> u64 {
            crate::loom::yield_point();
            self.inner.swap(value, Ordering::SeqCst)
        }

        pub(crate) fn fetch_add(&self, value: u64, _order: Ordering) -> u64 {
            crate::loom::yield_point();
            self.inner.fetch_add(value, Ordering::SeqCst)
        }

        pub(crate) fn fetch_max(&self, value: u64, _order: Ordering) -> u64 {
            crate::loom::yield_point();
            self.inner.fetch_max(value, Ordering::SeqCst)
        }
    }
}

//! A minimal, vendored loom-style model checker (compiled only under
//! `RUSTFLAGS="--cfg loom"`).
//!
//! The build is offline and dependency-free, so instead of the `loom`
//! crate this module vendors the core of its technique: exhaustive
//! depth-first exploration of thread interleavings via *replay*. Every
//! atomic operation issued through [`crate::sync`] is a scheduling point;
//! at each point the checker picks which ready thread runs next. One
//! execution of the model closure follows one schedule. After it
//! completes, the recorded decision tape is backtracked to the deepest
//! choice with an untried alternative and the closure runs again,
//! replaying the common prefix — until the whole schedule tree has been
//! visited.
//!
//! Threads are real OS threads serialized by a token: exactly one modeled
//! thread executes at any moment, and the token is handed off at
//! scheduling points under a `Mutex`/`Condvar`. That keeps the modeled
//! code's thread-locals (the registry's `CURRENT` scope) faithful while
//! making the interleaving deterministic and replayable.
//!
//! ## Scope
//!
//! The checker explores **sequentially-consistent** interleavings. Weak
//! orderings (`Ordering::Relaxed` reorderings, store buffering) are not
//! modeled — the shim in [`crate::sync`] upgrades every access to
//! `SeqCst`. For the telemetry registry this is the property that
//! matters: its protocol is commutative (`fetch_add` totals, `fetch_max`
//! high-water marks, `swap(0)` drains), so the bugs worth finding are
//! lost updates and torn read-modify-write sequences under arbitrary
//! interleaving, which SC exploration covers exhaustively. See
//! DESIGN.md §8 for the methodology note.
//!
//! ## Requirements on model closures
//!
//! * Deterministic apart from scheduling: no wall clock, no ambient RNG
//!   (the workspace lint enforces this everywhere anyway).
//! * Every thread spawned with [`thread::spawn`] must be joined before
//!   the closure returns; the checker asserts this.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Backstop on executions per model, so an accidentally huge schedule
/// space fails fast instead of hanging CI.
const MAX_EXECUTIONS: usize = 250_000;

/// `State::current` value while no thread holds the token (all finished).
const NO_THREAD: usize = usize::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Eligible to be scheduled.
    Ready,
    /// Parked in [`thread::JoinHandle::join`] until the tid finishes.
    Blocked(usize),
    Finished,
}

/// One scheduling decision: which of the `alternatives` ready threads
/// (by position in the ready list, ascending tid) received the token.
#[derive(Clone, Copy)]
struct Choice {
    selected: usize,
    alternatives: usize,
}

struct State {
    /// Per-tid status; tid 0 is the model closure itself.
    status: Vec<Status>,
    /// Tid currently holding the execution token.
    current: usize,
    /// Decision tape: `..prefix` replays the previous execution, the rest
    /// is recorded fresh (always picking alternative 0, i.e. lowest tid).
    tape: Vec<Choice>,
    prefix: usize,
    step: usize,
    /// First panic captured from a spawned modeled thread.
    panicked: Option<String>,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    /// The model run this thread participates in, and its tid.
    static CONTEXT: RefCell<Option<(Arc<Shared>, usize)>> = const { RefCell::new(None) };
}

fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    shared
        .state
        .lock()
        .expect("model scheduler state poisoned by a panicked modeled thread")
}

/// Runs `f` once per schedule until every interleaving of its atomic
/// operations (and joins) has been explored. Panics from the closure or
/// any modeled thread propagate, failing the enclosing test with the
/// schedule that exposed them.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let mut tape: Vec<Choice> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= MAX_EXECUTIONS,
            "model: schedule space exceeds {MAX_EXECUTIONS} executions — shrink the model"
        );
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                status: vec![Status::Ready],
                current: 0,
                prefix: tape.len(),
                tape,
                step: 0,
                panicked: None,
            }),
            cv: Condvar::new(),
        });
        CONTEXT.with(|ctx| *ctx.borrow_mut() = Some((Arc::clone(&shared), 0)));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        CONTEXT.with(|ctx| *ctx.borrow_mut() = None);
        let (recorded, child_panic, unjoined) = {
            let mut st = lock(&shared);
            let unjoined = st.status.iter().skip(1).any(|s| *s != Status::Finished);
            (std::mem::take(&mut st.tape), st.panicked.take(), unjoined)
        };
        if let Err(payload) = outcome {
            std::panic::resume_unwind(payload);
        }
        if let Some(msg) = child_panic {
            // lint:allow(no-panic-in-library, "a modeled thread's panic must fail the enclosing test")
            panic!("model: spawned thread panicked: {msg}");
        }
        assert!(
            !unjoined,
            "model: closure returned with unjoined spawned threads"
        );
        // Depth-first backtrack: drop exhausted trailing choices, advance
        // the deepest one with an untried alternative, replay that prefix.
        tape = recorded;
        while let Some(last) = tape.last() {
            if last.selected + 1 < last.alternatives {
                break;
            }
            tape.pop();
        }
        match tape.last_mut() {
            Some(last) => last.selected += 1,
            None => return, // schedule tree exhausted
        }
    }
}

/// A scheduling point: hands the token to the tape's next chosen thread
/// (possibly the caller) and blocks until the caller is scheduled again.
/// No-op on threads outside a `model` run, so code compiled with
/// `--cfg loom` still works in ordinary tests.
///
/// The [`crate::sync`] shims call this before every atomic access; it is
/// public so tests can also build hand-instrumented models (e.g. the
/// lost-update self-test in `tests/loom_registry.rs`).
pub fn yield_point() {
    let ctx = CONTEXT.with(|c| c.borrow().clone());
    let Some((shared, me)) = ctx else { return };
    schedule_next(&shared, me, Status::Ready);
    wait_for_token(&shared, me);
}

/// Records `me`'s new status, picks the next thread per the decision
/// tape, and hands it the token. A finishing thread wakes its joiners
/// first so they are schedulable again.
fn schedule_next(shared: &Shared, me: usize, me_status: Status) {
    let mut st = lock(shared);
    st.status[me] = me_status;
    if me_status == Status::Finished {
        for status in st.status.iter_mut() {
            if *status == Status::Blocked(me) {
                *status = Status::Ready;
            }
        }
    }
    let ready: Vec<usize> = st
        .status
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == Status::Ready)
        .map(|(tid, _)| tid)
        .collect();
    if ready.is_empty() {
        let all_finished = st.status.iter().all(|s| *s == Status::Finished);
        st.current = NO_THREAD;
        drop(st);
        shared.cv.notify_all();
        assert!(
            all_finished,
            "model: deadlock — every live thread is blocked on a join"
        );
        return;
    }
    let step = st.step;
    st.step += 1;
    let pick = if step < st.prefix {
        let choice = st.tape[step];
        debug_assert_eq!(
            choice.alternatives,
            ready.len(),
            "model closures must be deterministic apart from scheduling"
        );
        choice.selected
    } else {
        st.tape.push(Choice {
            selected: 0,
            alternatives: ready.len(),
        });
        0
    };
    st.current = ready[pick];
    drop(st);
    shared.cv.notify_all();
}

fn wait_for_token(shared: &Shared, me: usize) {
    let mut st = lock(shared);
    while st.current != me {
        st = shared
            .cv
            .wait(st)
            .expect("model scheduler state poisoned while parked");
    }
}

fn current_context() -> (Arc<Shared>, usize) {
    CONTEXT
        .with(|c| c.borrow().clone())
        .expect("loom::thread used outside loom::model")
}

/// Modeled threads: a `std::thread`-shaped API whose spawned threads are
/// scheduled by the model checker instead of the OS.
pub mod thread {
    use super::{current_context, lock, schedule_next, wait_for_token, Arc, Mutex, Status};

    /// Handle to a modeled thread; join it before the model closure
    /// returns.
    pub struct JoinHandle<T> {
        tid: usize,
        result: Arc<Mutex<Option<T>>>,
    }

    /// Spawns a modeled thread. It becomes schedulable immediately but
    /// runs only when the decision tape hands it the token; the spawning
    /// thread keeps running (spawn itself is not a branch point).
    pub fn spawn<T, G>(g: G) -> JoinHandle<T>
    where
        T: Send + 'static,
        G: FnOnce() -> T + Send + 'static,
    {
        let (shared, _me) = current_context();
        let tid = {
            let mut st = lock(&shared);
            st.status.push(Status::Ready);
            st.status.len() - 1
        };
        let result = Arc::new(Mutex::new(None));
        let thread_result = Arc::clone(&result);
        let thread_shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            super::CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(&thread_shared), tid)));
            wait_for_token(&thread_shared, tid);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(g));
            match outcome {
                Ok(value) => {
                    *thread_result
                        .lock()
                        .expect("modeled-thread result slot poisoned") = Some(value);
                }
                Err(payload) => {
                    let msg = super::panic_message(payload.as_ref());
                    lock(&thread_shared).panicked.get_or_insert(msg);
                }
            }
            schedule_next(&thread_shared, tid, Status::Finished);
        });
        JoinHandle { tid, result }
    }

    impl<T> JoinHandle<T> {
        /// Blocks (as a scheduling point) until the thread finishes, then
        /// returns its value. Panics if the modeled thread panicked,
        /// propagating its message.
        pub fn join(self) -> T {
            let (shared, me) = current_context();
            loop {
                {
                    let st = lock(&shared);
                    if st.status[self.tid] == Status::Finished {
                        break;
                    }
                }
                schedule_next(&shared, me, Status::Blocked(self.tid));
                wait_for_token(&shared, me);
            }
            let value = self
                .result
                .lock()
                .expect("modeled-thread result slot poisoned")
                .take();
            match value {
                Some(v) => v,
                None => {
                    let msg = lock(&shared).panicked.take().unwrap_or_default();
                    // lint:allow(no-panic-in-library, "join propagates the modeled thread's panic")
                    panic!("model: joined thread panicked: {msg}");
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

//! Opt-in allocation accounting.
//!
//! Behind the `telemetry-alloc` feature this module provides
//! [`CountingAllocator`], a wrapper around the system allocator that
//! counts allocations and bytes — globally and per thread, which is what
//! lets the span profiler attribute heap traffic to the span that caused
//! it (see `profile.json`'s `allocs`/`alloc_bytes` columns). Binaries opt
//! in by installing it:
//!
//! ```ignore
//! #[cfg(feature = "telemetry-alloc")]
//! #[global_allocator]
//! static ALLOC: glmia_telemetry::CountingAllocator =
//!     glmia_telemetry::CountingAllocator;
//! ```
//!
//! With the feature off (the default) nothing in this module exists but
//! inert zero-returning shims, so default builds carry no allocator
//! wrapper and no counting overhead at all.
//!
//! The counters use only `const`-initialized `Cell` thread-locals and
//! atomics — no lazy initialization, so the accounting paths themselves
//! can never allocate (which would recurse into the allocator).

/// Run-level allocation totals; all zero unless the counting allocator is
/// installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AllocTotals {
    /// Heap allocations served.
    pub allocs: u64,
    /// Bytes requested across all allocations.
    pub bytes: u64,
    /// Deallocations served.
    pub deallocs: u64,
}

/// Whether this build carries the counting allocator support.
#[must_use]
pub const fn accounting_compiled() -> bool {
    cfg!(feature = "telemetry-alloc")
}

#[cfg(feature = "telemetry-alloc")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    use crate::sync::{AtomicU64, Ordering};

    use super::AllocTotals;

    thread_local! {
        // `const`-initialized and `Drop`-free: accessing these from inside
        // the allocator can never itself allocate or recurse.
        static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
        static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
    }

    static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
    static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
    static TOTAL_DEALLOCS: AtomicU64 = AtomicU64::new(0);

    /// A counting wrapper around the system allocator.
    pub struct CountingAllocator;

    fn record_alloc(size: usize) {
        TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        TOTAL_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        THREAD_BYTES.with(|c| c.set(c.get() + size as u64));
    }

    // The one sanctioned unsafe block in the workspace: `GlobalAlloc` is
    // an unsafe trait by definition. The impl only forwards to `System`
    // and bumps counters; it never inspects or retains the pointers.
    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let ptr = System.alloc(layout);
            if !ptr.is_null() {
                record_alloc(layout.size());
            }
            ptr
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let ptr = System.alloc_zeroed(layout);
            if !ptr.is_null() {
                record_alloc(layout.size());
            }
            ptr
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let new_ptr = System.realloc(ptr, layout, new_size);
            if !new_ptr.is_null() {
                record_alloc(new_size);
            }
            new_ptr
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            TOTAL_DEALLOCS.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn mark() -> (u64, u64) {
        (THREAD_ALLOCS.with(Cell::get), THREAD_BYTES.with(Cell::get))
    }

    pub(crate) fn since(mark: (u64, u64)) -> (u64, u64) {
        (
            THREAD_ALLOCS.with(Cell::get).saturating_sub(mark.0),
            THREAD_BYTES.with(Cell::get).saturating_sub(mark.1),
        )
    }

    pub(crate) fn totals() -> AllocTotals {
        AllocTotals {
            allocs: TOTAL_ALLOCS.load(Ordering::Relaxed),
            bytes: TOTAL_BYTES.load(Ordering::Relaxed),
            deallocs: TOTAL_DEALLOCS.load(Ordering::Relaxed),
        }
    }
}

#[cfg(feature = "telemetry-alloc")]
pub use imp::CountingAllocator;

#[cfg(feature = "telemetry-alloc")]
pub(crate) use imp::{mark, since};

#[cfg(feature = "telemetry-alloc")]
pub(crate) fn totals() -> AllocTotals {
    imp::totals()
}

#[cfg(not(feature = "telemetry-alloc"))]
pub(crate) fn mark() -> (u64, u64) {
    (0, 0)
}

#[cfg(not(feature = "telemetry-alloc"))]
pub(crate) fn since(_mark: (u64, u64)) -> (u64, u64) {
    (0, 0)
}

#[cfg(not(feature = "telemetry-alloc"))]
pub(crate) fn totals() -> AllocTotals {
    AllocTotals::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_zero_or_monotone() {
        let t = totals();
        if accounting_compiled() {
            // With the allocator installed by a host binary the counters
            // move; as a plain test dependency they stay zero. Either way
            // the shape holds.
            assert!(t.bytes >= t.allocs.min(t.bytes));
        } else {
            assert_eq!(t, AllocTotals::default());
        }
    }
}

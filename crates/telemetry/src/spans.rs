//! The hierarchical span profiler.
//!
//! `span("round")` opens a region charged to the current thread's span
//! stack; nested spans build slash-joined paths (`simulate/round/…`).
//! When the guard drops, the elapsed wall time (read through the
//! [`clock`](crate::clock) shim) is folded into the installed
//! [`Telemetry`](crate::Telemetry) handle's span table. With no handle
//! installed a span is a no-op that never touches the clock.
//!
//! Span timings are wall-clock and therefore *not* deterministic; they are
//! exported only through `profile.json`, never through the byte-identity
//! checked `telemetry.jsonl` / `events.jsonl` streams.
//!
//! Each thread has its own stack, so concurrently profiled threads fold
//! into the same path table without interleaving; the per-path totals are
//! busy time summed across threads.

use std::cell::RefCell;
use std::sync::Arc;

use crate::clock::{self, Tick};
use crate::registry::{Inner, CURRENT};

/// Accumulated statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct SpanStat {
    /// Times the span was entered.
    pub count: u64,
    /// Total wall seconds across all entries (self + children).
    pub total_secs: f64,
    /// Heap allocations attributed to the span (0 unless the
    /// `telemetry-alloc` counting allocator is installed).
    pub allocs: u64,
    /// Heap bytes attributed to the span.
    pub alloc_bytes: u64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Opens a profiling span named `name` on the current thread.
///
/// Drop the returned guard to close the span; guards must drop in LIFO
/// order (the natural result of holding them in scope). Returns an inert
/// guard when no telemetry handle is installed.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    let inner = CURRENT.with(|current| current.borrow().as_ref().map(Arc::clone));
    let Some(inner) = inner else {
        return SpanGuard { active: None };
    };
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        stack.join("/")
    });
    let alloc_mark = crate::alloc::mark();
    SpanGuard {
        active: Some(ActiveSpan {
            inner,
            path,
            start: clock::now(),
            alloc_mark,
        }),
    }
}

struct ActiveSpan {
    inner: Arc<Inner>,
    path: String,
    start: Tick,
    alloc_mark: (u64, u64),
}

/// Guard for an open span; folds elapsed time into the registry on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let secs = active.start.elapsed_secs();
        let (allocs, alloc_bytes) = crate::alloc::since(active.alloc_mark);
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let mut spans = active.inner.lock_spans();
        let stat = spans.entry(active.path).or_default();
        stat.count += 1;
        stat.total_secs += secs;
        stat.allocs += allocs;
        stat.alloc_bytes += alloc_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn spans_are_inert_without_a_handle() {
        let guard = span("orphan");
        drop(guard);
        SPAN_STACK.with(|stack| assert!(stack.borrow().is_empty()));
    }

    #[test]
    fn nested_spans_build_slash_paths() {
        let telemetry = Telemetry::new();
        {
            let _g = telemetry.enter();
            let _outer = span("simulate");
            {
                let _inner = span("round");
            }
            {
                let _inner = span("round");
            }
        }
        let report = crate::export::span_report(&telemetry);
        let paths: Vec<&str> = report.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(paths, ["simulate", "simulate/round"]);
        let round = &report[1];
        assert_eq!(round.count, 2);
        assert!(round.total_secs >= 0.0);
        let outer = &report[0];
        assert_eq!(outer.count, 1);
        assert!(outer.total_secs >= round.total_secs);
        // Self time excludes the nested rounds.
        assert!(outer.self_secs <= outer.total_secs);
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let telemetry = Telemetry::new();
        {
            let _g = telemetry.enter();
            {
                let _a = span("partition");
            }
            {
                let _b = span("topology");
            }
        }
        let report = crate::export::span_report(&telemetry);
        let paths: Vec<&str> = report.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(paths, ["partition", "topology"]);
    }
}

//! Runtime telemetry for the glmia workspace.
//!
//! Four pieces, all designed around one invariant — *telemetry must never
//! perturb experiment results*:
//!
//! 1. **Metrics registry** ([`Telemetry`], [`Instrument`], [`count`],
//!    [`gauge_set`], [`observe`]): lock-free counters/gauges/histograms
//!    recording logical work (messages, matvecs, scores). Instrumented
//!    crates call free functions that resolve a thread-local handle; when
//!    none is installed every call is a branch and nothing else, and the
//!    produced traces are byte-identical to an uninstrumented build.
//! 2. **Span profiler** ([`span`]): hierarchical wall-time regions
//!    (`simulate` → `simulate/round` → …) folded into a per-path
//!    self/total tree, exported via [`profile`] to `profile.json`.
//! 3. **Allocation accounting** (`CountingAllocator`, behind the
//!    `telemetry-alloc` feature): an opt-in counting global allocator that
//!    attributes allocs/bytes to the active span.
//! 4. **Clock shim** ([`clock`]): the workspace's only sanctioned
//!    `Instant::now` call site, enforced by the xtask `no-wall-clock`
//!    lint's allowlist.
//!
//! Determinism contract: counter values are pure functions of the
//! simulated run and thread-invariant once workers join; wall-clock span
//! data never enters the byte-compared `telemetry.jsonl`/`events.jsonl`
//! streams, only `profile.json`.

pub mod clock;

mod alloc;
mod export;
#[cfg(loom)]
pub mod loom;
mod registry;
mod spans;
mod sync;

#[cfg(feature = "telemetry-alloc")]
pub use alloc::CountingAllocator;
pub use alloc::{accounting_compiled, AllocTotals};
pub use export::{format_bytes, profile, rss_bytes, span_report, Profile, SpanNode};
pub use registry::{
    count, gauge_set, is_active, observe, CounterSnapshot, Gauge, Histogram, Instrument, Telemetry,
    TelemetryScope, HISTOGRAM_BUCKETS, HISTOGRAM_EDGES,
};
pub use spans::{span, SpanGuard};

//! End-of-run exporters: the `profile.json` payload and process helpers.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::alloc::{self, AllocTotals};
use crate::registry::{Histogram, Telemetry, HISTOGRAM_EDGES};

/// One node of the span profile: a slash-joined path with its entry
/// count, total and self wall time, and (when the counting allocator is
/// installed) attributed heap traffic.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SpanNode {
    /// Slash-joined span path, e.g. `simulate/round`.
    pub path: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total wall seconds (self + children), summed across threads.
    pub total_secs: f64,
    /// Wall seconds not attributed to any child span.
    pub self_secs: f64,
    /// Heap allocations during the span (0 without `telemetry-alloc`).
    pub allocs: u64,
    /// Heap bytes during the span (0 without `telemetry-alloc`).
    pub alloc_bytes: u64,
}

/// The `profile.json` document: span tree, counter totals, histogram
/// buckets and allocation accounting for one run.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Profile {
    /// Span statistics sorted by path (parents precede children).
    pub spans: Vec<SpanNode>,
    /// Final counter totals, name-sorted.
    pub counters: BTreeMap<String, u64>,
    /// Upper bucket edges shared by the histograms below.
    pub histogram_edges: Vec<u64>,
    /// Scheduler queue-depth histogram (one count per edge + overflow).
    pub queue_depth_buckets: Vec<u64>,
    /// Run-level allocation totals (zeros without `telemetry-alloc`).
    pub alloc: AllocTotals,
    /// Whether this build compiled the counting allocator in.
    pub alloc_accounting: bool,
}

/// Builds the span report from a registry: paths sorted, self time
/// derived as total minus the sum of direct children.
#[must_use]
pub fn span_report(telemetry: &Telemetry) -> Vec<SpanNode> {
    let spans = telemetry.inner().lock_spans();
    let mut nodes: Vec<SpanNode> = spans
        .iter()
        .map(|(path, stat)| SpanNode {
            path: path.clone(),
            count: stat.count,
            total_secs: stat.total_secs,
            self_secs: stat.total_secs,
            allocs: stat.allocs,
            alloc_bytes: stat.alloc_bytes,
        })
        .collect();
    // BTreeMap iteration is path-sorted already; derive self time by
    // charging each direct child's total against its parent.
    let child_totals: Vec<(String, f64)> = spans
        .iter()
        .filter_map(|(path, stat)| {
            path.rsplit_once('/')
                .map(|(parent, _)| (parent.to_string(), stat.total_secs))
        })
        .collect();
    drop(spans);
    for (parent, child_total) in child_totals {
        if let Some(node) = nodes.iter_mut().find(|n| n.path == parent) {
            node.self_secs = (node.self_secs - child_total).max(0.0);
        }
    }
    nodes
}

/// Assembles the full `profile.json` payload from a registry.
#[must_use]
pub fn profile(telemetry: &Telemetry) -> Profile {
    Profile {
        spans: span_report(telemetry),
        counters: telemetry.counters().to_map(),
        histogram_edges: HISTOGRAM_EDGES.to_vec(),
        queue_depth_buckets: telemetry.histogram(Histogram::QueueDepth).to_vec(),
        alloc: alloc::totals(),
        alloc_accounting: alloc::accounting_compiled(),
    }
}

/// The process's current resident set size in bytes, read from
/// `/proc/self/statm` (`None` off Linux or when unreadable). This is a
/// point-in-time OS statistic, not a clock — safe for dashboard display.
#[must_use]
pub fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// `bytes` rendered with a binary-unit suffix for dashboard lines.
#[must_use]
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{count, observe, Instrument, HISTOGRAM_BUCKETS};

    #[test]
    fn profile_round_trips_through_json() {
        let telemetry = Telemetry::new();
        {
            let _g = telemetry.enter();
            count(Instrument::GossipSends, 3);
            observe(Histogram::QueueDepth, 2);
            let _span = crate::span("simulate");
        }
        let p = profile(&telemetry);
        assert_eq!(p.counters["gossip_sends"], 3);
        assert_eq!(p.queue_depth_buckets.len(), HISTOGRAM_BUCKETS);
        assert_eq!(p.histogram_edges, HISTOGRAM_EDGES.to_vec());
        let json = serde_json::to_string(&p).expect("profile serializes");
        let back: Profile = serde_json::from_str(&json).expect("profile deserializes");
        assert_eq!(back, p);
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let telemetry = Telemetry::new();
        {
            let _g = telemetry.enter();
            let _outer = crate::span("eval");
            {
                let _inner = crate::span("mia");
            }
        }
        let report = span_report(&telemetry);
        let outer = report.iter().find(|n| n.path == "eval").expect("outer");
        let inner = report.iter().find(|n| n.path == "eval/mia").expect("inner");
        assert!(outer.total_secs >= inner.total_secs);
        assert!((outer.self_secs - (outer.total_secs - inner.total_secs)).abs() < 1e-9);
        assert_eq!(inner.self_secs, inner.total_secs);
    }

    #[test]
    fn rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = rss_bytes().expect("procfs present");
            assert!(rss > 0);
        }
    }

    #[test]
    fn byte_formatting_scales_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KiB");
        assert_eq!(format_bytes(5 * 1024 * 1024), "5.0 MiB");
    }
}

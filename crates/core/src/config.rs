//! Experiment configuration covering every knob the paper varies.

use glmia_data::{DataPreset, Partition, SyntheticSpec};
use glmia_gossip::{Defense, FaultPlan, LrSchedule, ProtocolKind, SimConfig, TopologyMode};
use glmia_mia::{AttackKind, AttackerModel};
use glmia_nn::MlpSpec;
use serde::{Deserialize, Serialize};

use crate::{CoreError, TrainingPreset};

/// Which model copies the omniscient attacker observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AttackSurface {
    /// Each node's *internal* current model θᵢ — the paper's §2.6 threat
    /// model ("recovers the current models of all nodes").
    #[default]
    NodeModel,
    /// The most recent model each node *transmitted* (post-defense) — what
    /// a network eavesdropper actually captures, and the only surface a
    /// share-perturbation [`Defense`] can protect.
    SharedModel,
}

impl std::fmt::Display for AttackSurface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackSurface::NodeModel => f.write_str("node-model"),
            AttackSurface::SharedModel => f.write_str("shared-model"),
        }
    }
}

/// How many worker threads the attack-replay pipeline may use.
///
/// This is an *execution* knob, not part of an experiment's identity:
/// results are bit-identical at any thread count (the evaluation RNG is
/// derived per `(seed, round, node)`, never shared across nodes), so the
/// field is excluded from [`ExperimentConfig`]'s equality and serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Parallelism {
    /// Use every available core (`std::thread::available_parallelism`).
    #[default]
    Auto,
    /// Pin to exactly `n` threads; `1` selects the legacy serial path,
    /// which spawns no threads at all.
    Fixed(usize),
}

impl Parallelism {
    /// The concrete worker count this knob resolves to (always ≥ 1).
    #[must_use]
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Auto => {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            }
            Parallelism::Fixed(n) => n.max(1),
        }
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Auto => f.write_str("auto"),
            Parallelism::Fixed(n) => write!(f, "{n}"),
        }
    }
}

impl std::str::FromStr for Parallelism {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "auto" {
            return Ok(Parallelism::Auto);
        }
        match s.parse::<usize>() {
            Ok(0) | Err(_) => Err(format!(
                "invalid parallelism '{s}' (expected 'auto' or a positive integer)"
            )),
            Ok(n) => Ok(Parallelism::Fixed(n)),
        }
    }
}

/// Full description of one decentralized-learning experiment: dataset,
/// partition, topology, protocol, training hyperparameters, attack and
/// seed.
///
/// Three scale presets are provided:
///
/// * [`ExperimentConfig::paper_scale`] — the paper's §3.1 setup (150 nodes,
///   250–500 rounds);
/// * [`ExperimentConfig::bench_scale`] — a reduced configuration that
///   preserves the paper's qualitative trends while regenerating every
///   figure on one CPU core in minutes;
/// * [`ExperimentConfig::quick_test`] — a tiny configuration for unit tests
///   and doctests.
///
/// # Examples
///
/// ```
/// use glmia_core::ExperimentConfig;
/// use glmia_data::{DataPreset, Partition};
/// use glmia_gossip::{ProtocolKind, TopologyMode};
///
/// let config = ExperimentConfig::bench_scale(DataPreset::Cifar10Like)
///     .with_protocol(ProtocolKind::Samo)
///     .with_topology_mode(TopologyMode::Dynamic)
///     .with_view_size(5)
///     .with_partition(Partition::Dirichlet { beta: 0.1 });
/// assert_eq!(config.view_size(), 5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    dataset: DataPreset,
    num_classes_override: Option<usize>,
    input_dim_override: Option<usize>,
    n_nodes: usize,
    view_size: usize,
    train_per_node: usize,
    test_per_node: usize,
    partition: Partition,
    protocol: ProtocolKind,
    topology_mode: TopologyMode,
    rounds: usize,
    eval_every: usize,
    training: TrainingPreset,
    batch_size: usize,
    attack: AttackKind,
    #[serde(default)]
    attack_surface: AttackSurface,
    defense: Option<Defense>,
    drop_probability: f64,
    lr_schedule: LrSchedule,
    /// Overrides the wake-interval jitter σ (in ticks). `None` keeps the
    /// engine default (σ = 10); `Some(0.0)` makes wake times deterministic,
    /// which turns SAMO on a static graph into exact synchronous gossip —
    /// the regime where the empirical mixing matrix equals the analytic
    /// `(A + I)/(k + 1)`. Part of the experiment's identity.
    #[serde(default)]
    wake_std_override: Option<f64>,
    /// Fault-injection plan: node churn, per-link latency heterogeneity,
    /// per-link drops. Part of the experiment's identity, but absent (and
    /// skipped in serialization) for fault-free runs so their config JSON —
    /// and hence fingerprint — is byte-identical to before the knob
    /// existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    fault: Option<FaultPlan>,
    /// Who the adversary is: which nodes' model snapshots the attack may
    /// observe. Part of the experiment's identity, but absent (and skipped
    /// in serialization) for the default omniscient attacker so that
    /// omniscient config JSON — and hence fingerprint — is byte-identical
    /// to before the knob existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    attacker: Option<AttackerModel>,
    seed: u64,
    /// Worker threads for the attack-replay pipeline. Excluded from
    /// serialization and equality: two runs differing only in thread count
    /// produce byte-identical results, so this knob is not part of the
    /// experiment's identity.
    #[serde(skip)]
    parallelism: Parallelism,
    /// Disables empirical mixing-matrix reconstruction (an observability
    /// knob: recording `W_t` costs `O(n²)` memory per round and an `O(n³)`
    /// eigensolve per round after the run, but never touches an RNG or a
    /// model). Excluded from identity like `parallelism`.
    #[serde(skip)]
    mixing_disabled: bool,
    /// Requests the stderr progress heartbeat (suppressed anyway when
    /// stderr is not a TTY). Pure presentation; excluded from identity.
    #[serde(skip)]
    progress: bool,
    /// Enables the runtime telemetry subsystem: counter registry, span
    /// profiler, `telemetry.jsonl` side-stream and `profile.json`.
    /// Observability only — never feeds back into the simulation — so it
    /// is excluded from identity like the other execution knobs.
    #[serde(skip)]
    telemetry: bool,
}

/// Equality over every field *except* the execution/observability knobs
/// `parallelism`, `mixing_disabled`, `progress` and `telemetry` (none of
/// which can change a result byte). The exhaustive destructuring makes
/// this impl fail to compile when a field is added, so new knobs cannot
/// silently escape comparison.
impl PartialEq for ExperimentConfig {
    fn eq(&self, other: &Self) -> bool {
        let Self {
            dataset,
            num_classes_override,
            input_dim_override,
            n_nodes,
            view_size,
            train_per_node,
            test_per_node,
            partition,
            protocol,
            topology_mode,
            rounds,
            eval_every,
            training,
            batch_size,
            attack,
            attack_surface,
            defense,
            drop_probability,
            lr_schedule,
            wake_std_override,
            fault,
            attacker,
            seed,
            parallelism: _,
            mixing_disabled: _,
            progress: _,
            telemetry: _,
        } = self;
        *dataset == other.dataset
            && *num_classes_override == other.num_classes_override
            && *input_dim_override == other.input_dim_override
            && *n_nodes == other.n_nodes
            && *view_size == other.view_size
            && *train_per_node == other.train_per_node
            && *test_per_node == other.test_per_node
            && *partition == other.partition
            && *protocol == other.protocol
            && *topology_mode == other.topology_mode
            && *rounds == other.rounds
            && *eval_every == other.eval_every
            && *training == other.training
            && *batch_size == other.batch_size
            && *attack == other.attack
            && *attack_surface == other.attack_surface
            && *defense == other.defense
            && *drop_probability == other.drop_probability
            && *lr_schedule == other.lr_schedule
            && *wake_std_override == other.wake_std_override
            && *fault == other.fault
            && *attacker == other.attacker
            && *seed == other.seed
    }
}

impl ExperimentConfig {
    /// The paper's full-scale configuration for `dataset` (§3.1, Table 2):
    /// the paper's node count, rounds and hyperparameters, 5-regular static
    /// SAMO by default, IID partition, per-node shards sized to the paper's
    /// equal split.
    #[must_use]
    pub fn paper_scale(dataset: DataPreset) -> Self {
        let training = TrainingPreset::for_dataset(dataset);
        let nodes = training.paper_nodes;
        Self {
            dataset,
            num_classes_override: None,
            input_dim_override: None,
            n_nodes: nodes,
            view_size: 5,
            // CIFAR-10-scale: 50k train / 150 nodes ≈ 333 per node.
            train_per_node: 300,
            test_per_node: 100,
            partition: Partition::Iid,
            protocol: ProtocolKind::Samo,
            topology_mode: TopologyMode::Static,
            rounds: training.paper_rounds,
            eval_every: 10,
            batch_size: 32,
            attack: AttackKind::Mpe,
            attack_surface: AttackSurface::NodeModel,
            defense: None,
            drop_probability: 0.0,
            lr_schedule: LrSchedule::Constant,
            wake_std_override: None,
            fault: None,
            attacker: None,
            seed: 0,
            training,
            parallelism: Parallelism::Auto,
            mixing_disabled: false,
            progress: false,
            telemetry: false,
        }
    }

    /// A reduced configuration preserving the paper's qualitative trends on
    /// one CPU core: 24 nodes, 40 rounds, ~48 training samples per node.
    #[must_use]
    pub fn bench_scale(dataset: DataPreset) -> Self {
        let mut config = Self::paper_scale(dataset);
        config.n_nodes = 24;
        config.rounds = 40;
        config.eval_every = 4;
        config.train_per_node = 48;
        config.test_per_node = 24;
        config.batch_size = 16;
        // Keep the class count manageable for the 100-class presets at this
        // data budget while preserving the many-class character. The
        // reduction is milder than the node-count reduction: heterogeneity
        // regimes (Dirichlet β) only behave like the paper's when nodes
        // can hold a *subset* of many classes.
        if config.dataset_spec_classes() == 100 {
            config.num_classes_override = Some(25);
        }
        config
    }

    /// A tiny configuration for unit tests and doctests (seconds, not
    /// minutes): 8 nodes, 5 rounds, 4 classes, 12 features.
    #[must_use]
    pub fn quick_test(dataset: DataPreset) -> Self {
        let mut config = Self::paper_scale(dataset);
        config.num_classes_override = Some(4);
        config.input_dim_override = Some(12);
        config.n_nodes = 8;
        config.view_size = 2;
        config.rounds = 5;
        config.eval_every = 1;
        config.train_per_node = 16;
        config.test_per_node = 8;
        config.batch_size = 8;
        config.training.local_epochs = 1;
        config.training.hidden = vec![16];
        config
    }

    /// Looks up a scale preset by name: `quick` → [`Self::quick_test`],
    /// `bench` → [`Self::bench_scale`], `paper` → [`Self::paper_scale`].
    /// `None` for any other name.
    #[must_use]
    pub fn preset(name: &str, dataset: DataPreset) -> Option<Self> {
        match name {
            "quick" => Some(Self::quick_test(dataset)),
            "bench" => Some(Self::bench_scale(dataset)),
            "paper" => Some(Self::paper_scale(dataset)),
            _ => None,
        }
    }

    fn dataset_spec_classes(&self) -> usize {
        self.dataset.spec().num_classes()
    }

    /// Sets the gossip protocol.
    #[must_use]
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets static vs dynamic (PeerSwap) topology.
    #[must_use]
    pub fn with_topology_mode(mut self, mode: TopologyMode) -> Self {
        self.topology_mode = mode;
        self
    }

    /// Sets the view size `k` of the k-regular topology. Checked by
    /// [`validate`](Self::validate): must be positive and below the node
    /// count.
    #[must_use]
    pub fn with_view_size(mut self, k: usize) -> Self {
        self.view_size = k;
        self
    }

    /// Sets the number of nodes. Checked by [`validate`](Self::validate):
    /// at least 2.
    #[must_use]
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.n_nodes = n;
        self
    }

    /// Sets the data partition (IID / Dirichlet).
    #[must_use]
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = partition;
        self
    }

    /// Sets the number of communication rounds. Checked by
    /// [`validate`](Self::validate): must be positive.
    #[must_use]
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets how often (in rounds) the omniscient attacker evaluates. The
    /// final round is always evaluated. Checked by
    /// [`validate`](Self::validate): must be positive and at most the
    /// round count.
    #[must_use]
    pub fn with_eval_every(mut self, every: usize) -> Self {
        self.eval_every = every;
        self
    }

    /// Sets the number of local epochs per update. Checked by
    /// [`validate`](Self::validate): must be positive.
    #[must_use]
    pub fn with_local_epochs(mut self, epochs: usize) -> Self {
        self.training.local_epochs = epochs;
        self
    }

    /// Sets the SGD learning rate. Checked by
    /// [`validate`](Self::validate): must be finite and positive.
    #[must_use]
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.training.learning_rate = lr;
        self
    }

    /// Sets training samples per node (average under non-IID partitions).
    /// Checked by [`validate`](Self::validate): must be positive.
    #[must_use]
    pub fn with_train_per_node(mut self, n: usize) -> Self {
        self.train_per_node = n;
        self
    }

    /// Sets held-out samples per node. Checked by
    /// [`validate`](Self::validate): must be positive.
    #[must_use]
    pub fn with_test_per_node(mut self, n: usize) -> Self {
        self.test_per_node = n;
        self
    }

    /// Overrides the class count of the synthetic dataset. Checked by
    /// [`validate`](Self::validate): at least 2.
    #[must_use]
    pub fn with_num_classes(mut self, classes: usize) -> Self {
        self.num_classes_override = Some(classes);
        self
    }

    /// Overrides the feature dimensionality of the synthetic dataset.
    /// Checked by [`validate`](Self::validate): must be positive.
    #[must_use]
    pub fn with_input_dim(mut self, dim: usize) -> Self {
        self.input_dim_override = Some(dim);
        self
    }

    /// Sets the MIA variant the omniscient attacker runs.
    #[must_use]
    pub fn with_attack(mut self, attack: AttackKind) -> Self {
        self.attack = attack;
        self
    }

    /// Sets which model copies the attacker observes (default: the node's
    /// internal model, the paper's threat model).
    #[must_use]
    pub fn with_attack_surface(mut self, surface: AttackSurface) -> Self {
        self.attack_surface = surface;
        self
    }

    /// Attaches a model-perturbation defense.
    #[must_use]
    pub fn with_defense(mut self, defense: Defense) -> Self {
        self.defense = Some(defense);
        self
    }

    /// Sets the learning-rate schedule (default: constant, the paper's
    /// setup; warmup implements the §5 early-overfitting recommendation).
    #[must_use]
    pub fn with_lr_schedule(mut self, schedule: LrSchedule) -> Self {
        self.lr_schedule = schedule;
        self
    }

    /// Sets the dropout probability on hidden activations (default 0, the
    /// paper's setup; the §5 recommendations suggest regularization like
    /// this against early overfitting). Checked by
    /// [`validate`](Self::validate): must lie in `[0, 1)`.
    #[must_use]
    pub fn with_dropout(mut self, p: f32) -> Self {
        self.training.dropout = p;
        self
    }

    /// Sets the message-drop probability (failure injection). Checked by
    /// [`validate`](Self::validate): must lie in `[0, 1)`.
    #[must_use]
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p;
        self
    }

    /// Overrides the wake-interval jitter σ in ticks (default: the engine's
    /// σ = 10). `0.0` makes every node wake exactly once per round at a
    /// deterministic tick — the synchronous-gossip limit used to validate
    /// empirical against analytic λ₂. Checked by
    /// [`validate`](Self::validate): must be finite and non-negative.
    #[must_use]
    pub fn with_wake_std(mut self, std: f64) -> Self {
        self.wake_std_override = Some(std);
        self
    }

    /// Attaches a fault-injection plan (node churn, per-link latency,
    /// per-link drops). An *inert* plan ([`FaultPlan::is_inert`]) is
    /// normalized away so it cannot perturb the config's identity or
    /// fingerprint. Checked by [`validate`](Self::validate) against the
    /// plan's own constraints.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = if plan.is_inert() { None } else { Some(plan) };
        self
    }

    /// The attached fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Sets the attacker model: which nodes' model snapshots the MIA may
    /// observe. The default *omniscient* attacker (the paper's §2.6 threat
    /// model) is normalized away so it cannot perturb the config's identity
    /// or fingerprint; restricted attackers are canonicalized
    /// ([`AttackerModel::normalized`]) so equivalent specs compare and hash
    /// equal. Checked by [`validate`](Self::validate) against the node
    /// count.
    #[must_use]
    pub fn with_attacker(mut self, attacker: AttackerModel) -> Self {
        self.attacker = if attacker.is_omniscient() {
            None
        } else {
            Some(attacker.normalized())
        };
        self
    }

    /// The attacker model (`None` means the default omniscient attacker).
    #[must_use]
    pub fn attacker(&self) -> Option<&AttackerModel> {
        self.attacker.as_ref()
    }

    /// The attached defense, if any.
    #[must_use]
    pub fn defense(&self) -> Option<&Defense> {
        self.defense.as_ref()
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables empirical mixing-matrix reconstruction in traced
    /// runs (default: enabled). An observability knob excluded from the
    /// config's identity; see the field docs for the cost model.
    #[must_use]
    pub fn with_mixing_trace(mut self, enabled: bool) -> Self {
        self.mixing_disabled = !enabled;
        self
    }

    /// Requests the stderr progress heartbeat (default: off; suppressed
    /// regardless when stderr is not a TTY). Excluded from identity.
    #[must_use]
    pub fn with_progress(mut self, enabled: bool) -> Self {
        self.progress = enabled;
        self
    }

    /// Enables the runtime telemetry subsystem (default: off). Adds the
    /// `telemetry.jsonl` side-stream and `profile.json` to the run's
    /// artifacts; `events.jsonl` stays byte-identical either way.
    /// Excluded from identity.
    #[must_use]
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Sets the attack-replay worker-thread budget (default: all cores).
    /// Results are bit-identical at any setting; see [`Parallelism`].
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The dataset preset.
    #[must_use]
    pub fn dataset(&self) -> DataPreset {
        self.dataset
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.n_nodes
    }

    /// View size `k`.
    #[must_use]
    pub fn view_size(&self) -> usize {
        self.view_size
    }

    /// Training samples per node.
    #[must_use]
    pub fn train_per_node(&self) -> usize {
        self.train_per_node
    }

    /// Held-out samples per node.
    #[must_use]
    pub fn test_per_node(&self) -> usize {
        self.test_per_node
    }

    /// The data partition.
    #[must_use]
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// The gossip protocol.
    #[must_use]
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// The topology mode.
    #[must_use]
    pub fn topology_mode(&self) -> TopologyMode {
        self.topology_mode
    }

    /// Communication rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Evaluation cadence in rounds.
    #[must_use]
    pub fn eval_every(&self) -> usize {
        self.eval_every
    }

    /// The training hyperparameters.
    #[must_use]
    pub fn training(&self) -> &TrainingPreset {
        &self.training
    }

    /// The MIA variant.
    #[must_use]
    pub fn attack(&self) -> AttackKind {
        self.attack
    }

    /// The observed attack surface.
    #[must_use]
    pub fn attack_surface(&self) -> AttackSurface {
        self.attack_surface
    }

    /// The master seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The attack-replay worker-thread budget.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The wake-interval jitter override, if any.
    #[must_use]
    pub fn wake_std(&self) -> Option<f64> {
        self.wake_std_override
    }

    /// Whether traced runs reconstruct empirical mixing matrices.
    #[must_use]
    pub fn mixing_trace(&self) -> bool {
        !self.mixing_disabled
    }

    /// Whether the stderr progress heartbeat is requested.
    #[must_use]
    pub fn progress(&self) -> bool {
        self.progress
    }

    /// Whether the runtime telemetry subsystem is enabled.
    #[must_use]
    pub fn telemetry(&self) -> bool {
        self.telemetry
    }

    /// FNV-1a fingerprint over the config's canonical JSON. The serialized
    /// form excludes the execution knobs (thread count, mixing trace,
    /// progress), so the fingerprint identifies the *experiment*, not the
    /// execution.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("config serialization is infallible");
        glmia_trace::fnv1a(json.as_bytes())
    }

    /// Materializes the synthetic dataset spec (preset + overrides).
    #[must_use]
    pub fn data_spec(&self) -> SyntheticSpec {
        let mut spec = self.dataset.spec();
        if let Some(classes) = self.num_classes_override {
            spec = spec.with_num_classes(classes);
        }
        if let Some(dim) = self.input_dim_override {
            spec = spec.with_input_dim(dim);
        }
        spec
    }

    /// Materializes the model architecture.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the resulting spec is invalid.
    pub fn model_spec(&self) -> Result<MlpSpec, CoreError> {
        let data = self.data_spec();
        Ok(MlpSpec::new(
            data.input_dim(),
            &self.training.hidden,
            data.num_classes(),
            self.training.activation,
        )?
        .with_dropout(self.training.dropout))
    }

    /// Materializes the simulator configuration.
    #[must_use]
    pub fn sim_config(&self) -> SimConfig {
        let mut sim = SimConfig::new(self.protocol, self.topology_mode)
            .with_rounds(self.rounds)
            .with_local_epochs(self.training.local_epochs)
            .with_batch_size(self.batch_size)
            .with_learning_rate(self.training.learning_rate)
            .with_weight_decay(self.training.weight_decay);
        if self.training.momentum > 0.0 {
            sim = sim.with_momentum(self.training.momentum);
        }
        if self.drop_probability > 0.0 {
            sim = sim.with_drop_probability(self.drop_probability);
        }
        if let Some(defense) = self.defense {
            sim = sim.with_defense(defense);
        }
        if let Some(std) = self.wake_std_override {
            sim = sim.with_wake_distribution(100.0, std);
        }
        if let Some(plan) = self.fault {
            sim = sim.with_fault_plan(plan);
        }
        sim.with_lr_schedule(self.lr_schedule)
    }

    /// Validates every field constraint, returning the first violation as
    /// [`CoreError::InvalidConfig`] naming the offending field.
    ///
    /// The `with_*` setters accept any value so builder chains stay
    /// infallible and composable; [`run_experiment`](crate::run_experiment)
    /// calls this before doing any work, so a bad knob fails fast with a
    /// field-named error instead of a panic or a late substrate error.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when a field is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use glmia_core::prelude::*;
    ///
    /// let bad = ExperimentConfig::quick_test(DataPreset::Cifar10Like).with_view_size(0);
    /// let err = bad.validate().unwrap_err();
    /// assert_eq!(err.invalid_field(), Some("view_size"));
    /// ```
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.n_nodes < 2 {
            return Err(CoreError::invalid(
                "nodes",
                format!("need at least 2 nodes, got {}", self.n_nodes),
            ));
        }
        if self.view_size == 0 {
            return Err(CoreError::invalid("view_size", "must be positive"));
        }
        if self.view_size >= self.n_nodes {
            return Err(CoreError::invalid(
                "view_size",
                format!(
                    "view size {} must be smaller than the node count {}",
                    self.view_size, self.n_nodes
                ),
            ));
        }
        if self.rounds == 0 {
            return Err(CoreError::invalid("rounds", "must be positive"));
        }
        if self.eval_every == 0 {
            return Err(CoreError::invalid("eval_every", "must be positive"));
        }
        if self.eval_every > self.rounds {
            return Err(CoreError::invalid(
                "eval_every",
                format!(
                    "eval cadence {} exceeds the round count {}",
                    self.eval_every, self.rounds
                ),
            ));
        }
        if self.train_per_node == 0 {
            return Err(CoreError::invalid("train_per_node", "must be positive"));
        }
        if self.test_per_node == 0 {
            return Err(CoreError::invalid("test_per_node", "must be positive"));
        }
        if self.batch_size == 0 {
            return Err(CoreError::invalid("batch_size", "must be positive"));
        }
        if let Some(classes) = self.num_classes_override {
            if classes < 2 {
                return Err(CoreError::invalid(
                    "num_classes",
                    format!("need at least 2 classes, got {classes}"),
                ));
            }
        }
        if let Some(dim) = self.input_dim_override {
            if dim == 0 {
                return Err(CoreError::invalid("input_dim", "must be positive"));
            }
        }
        if self.training.local_epochs == 0 {
            return Err(CoreError::invalid("local_epochs", "must be positive"));
        }
        let lr = self.training.learning_rate;
        if !lr.is_finite() || lr <= 0.0 {
            return Err(CoreError::invalid(
                "learning_rate",
                format!("must be finite and positive, got {lr}"),
            ));
        }
        if !(0.0..1.0).contains(&self.training.dropout) {
            return Err(CoreError::invalid(
                "dropout",
                format!("must lie in [0, 1), got {}", self.training.dropout),
            ));
        }
        if !(0.0..1.0).contains(&self.drop_probability) {
            return Err(CoreError::invalid(
                "drop_probability",
                format!("must lie in [0, 1), got {}", self.drop_probability),
            ));
        }
        if let Some(std) = self.wake_std_override {
            if !std.is_finite() || std < 0.0 {
                return Err(CoreError::invalid(
                    "wake_std",
                    format!("must be finite and non-negative, got {std}"),
                ));
            }
        }
        if let Some(plan) = &self.fault {
            plan.validate()
                .map_err(|e| CoreError::invalid("fault", e.to_string()))?;
        }
        if let Some(defense) = &self.defense {
            defense
                .validate()
                .map_err(|e| CoreError::invalid("defense", e.to_string()))?;
        }
        if let Some(attacker) = &self.attacker {
            attacker
                .validate(self.n_nodes)
                .map_err(|e| CoreError::invalid("attacker", e.to_string()))?;
        }
        Ok(())
    }

    /// A short human-readable label for tables and logs.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{} {} {} k={} {}",
            self.dataset, self.protocol, self.topology_mode, self.view_size, self.partition
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table2() {
        let c = ExperimentConfig::paper_scale(DataPreset::Cifar100Like);
        assert_eq!(c.nodes(), 60);
        assert_eq!(c.rounds(), 500);
        assert_eq!(c.training().learning_rate, 0.001);
    }

    #[test]
    fn bench_scale_reduces_class_count_for_100_class_presets() {
        let c = ExperimentConfig::bench_scale(DataPreset::Purchase100Like);
        assert_eq!(c.data_spec().num_classes(), 25);
        let c10 = ExperimentConfig::bench_scale(DataPreset::Cifar10Like);
        assert_eq!(c10.data_spec().num_classes(), 10);
    }

    #[test]
    fn model_spec_tracks_overrides() {
        let c = ExperimentConfig::quick_test(DataPreset::Cifar10Like);
        let spec = c.model_spec().unwrap();
        assert_eq!(spec.input_dim(), 12);
        assert_eq!(spec.num_classes(), 4);
    }

    #[test]
    fn sim_config_reflects_training_preset() {
        let c = ExperimentConfig::bench_scale(DataPreset::Purchase100Like);
        let sim = c.sim_config();
        assert_eq!(sim.local_epochs(), 10);
        assert_eq!(sim.momentum(), 0.9);
        assert_eq!(sim.learning_rate(), 0.01);
    }

    #[test]
    fn builder_chain_applies() {
        use glmia_gossip::Defense;
        let c = ExperimentConfig::quick_test(DataPreset::FashionMnistLike)
            .with_protocol(ProtocolKind::BaseGossip)
            .with_topology_mode(TopologyMode::Dynamic)
            .with_view_size(3)
            .with_nodes(10)
            .with_rounds(9)
            .with_eval_every(3)
            .with_local_epochs(2)
            .with_learning_rate(0.02)
            .with_train_per_node(20)
            .with_test_per_node(10)
            .with_attack(glmia_mia::AttackKind::Loss)
            .with_defense(Defense::GaussianNoise { std: 0.01 })
            .with_drop_probability(0.05)
            .with_seed(99);
        assert_eq!(c.protocol(), ProtocolKind::BaseGossip);
        assert_eq!(c.topology_mode(), TopologyMode::Dynamic);
        assert_eq!(c.view_size(), 3);
        assert_eq!(c.nodes(), 10);
        assert_eq!(c.rounds(), 9);
        assert_eq!(c.eval_every(), 3);
        assert_eq!(c.training().local_epochs, 2);
        assert_eq!(c.seed(), 99);
        assert!(c.label().contains("base-gossip"));
        let sim = c.sim_config();
        assert_eq!(sim.drop_probability(), 0.05);
        assert!(sim.defense().is_some());
    }

    #[test]
    fn presets_validate_clean() {
        for preset in [
            DataPreset::Cifar10Like,
            DataPreset::Cifar100Like,
            DataPreset::FashionMnistLike,
            DataPreset::Purchase100Like,
        ] {
            ExperimentConfig::paper_scale(preset).validate().unwrap();
            ExperimentConfig::bench_scale(preset).validate().unwrap();
            ExperimentConfig::quick_test(preset).validate().unwrap();
        }
    }

    #[test]
    fn validate_names_the_offending_field() {
        let quick = || ExperimentConfig::quick_test(DataPreset::Cifar10Like);
        let cases: Vec<(ExperimentConfig, &str)> = vec![
            (quick().with_nodes(1), "nodes"),
            (quick().with_view_size(0), "view_size"),
            (quick().with_nodes(4).with_view_size(4), "view_size"),
            (quick().with_rounds(0), "rounds"),
            (quick().with_eval_every(0), "eval_every"),
            (quick().with_rounds(3).with_eval_every(4), "eval_every"),
            (quick().with_train_per_node(0), "train_per_node"),
            (quick().with_test_per_node(0), "test_per_node"),
            (quick().with_num_classes(1), "num_classes"),
            (quick().with_input_dim(0), "input_dim"),
            (quick().with_local_epochs(0), "local_epochs"),
            (quick().with_learning_rate(0.0), "learning_rate"),
            (quick().with_learning_rate(f32::NAN), "learning_rate"),
            (quick().with_dropout(1.0), "dropout"),
            (quick().with_dropout(-0.1), "dropout"),
            (quick().with_drop_probability(1.0), "drop_probability"),
            (quick().with_drop_probability(-0.5), "drop_probability"),
            (quick().with_wake_std(-1.0), "wake_std"),
            (quick().with_wake_std(f64::NAN), "wake_std"),
        ];
        for (config, field) in cases {
            let err = config.validate().unwrap_err();
            assert_eq!(err.invalid_field(), Some(field), "for field {field}");
            assert!(err.to_string().starts_with("invalid config: "));
        }
    }

    #[test]
    fn wake_std_is_part_of_identity_and_reaches_the_simulator() {
        let base = ExperimentConfig::quick_test(DataPreset::Cifar10Like);
        let synced = base.clone().with_wake_std(0.0);
        assert_ne!(base, synced, "wake_std changes the experiment");
        assert_eq!(base.sim_config().wake_std(), 10.0);
        assert_eq!(synced.sim_config().wake_std(), 0.0);
        assert_eq!(synced.sim_config().wake_mean(), 100.0);
        assert_ne!(base.fingerprint(), synced.fingerprint());
        // The override round-trips through serialization.
        let back: ExperimentConfig =
            serde_json::from_str(&serde_json::to_string(&synced).unwrap()).unwrap();
        assert_eq!(back.wake_std(), Some(0.0));
    }

    #[test]
    fn fault_plan_is_part_of_identity_and_reaches_the_simulator() {
        use glmia_gossip::{ChurnConfig, LatencyDist};
        let base = ExperimentConfig::quick_test(DataPreset::Cifar10Like);
        let plan = FaultPlan::none()
            .with_churn(ChurnConfig::new(0.05))
            .with_latency(LatencyDist::Fixed { ticks: 3 });
        let faulty = base.clone().with_fault_plan(plan);
        assert_ne!(base, faulty, "a fault plan changes the experiment");
        assert_ne!(base.fingerprint(), faulty.fingerprint());
        assert_eq!(faulty.sim_config().fault_plan(), Some(&plan));
        assert_eq!(base.sim_config().fault_plan(), None);
        // The plan round-trips through serialization.
        let back: ExperimentConfig =
            serde_json::from_str(&serde_json::to_string(&faulty).unwrap()).unwrap();
        assert_eq!(back.fault_plan(), Some(&plan));
    }

    #[test]
    fn inert_fault_plans_are_normalized_away() {
        let base = ExperimentConfig::quick_test(DataPreset::Cifar10Like);
        let inert = base.clone().with_fault_plan(FaultPlan::none());
        assert_eq!(base, inert, "an inert plan is no plan");
        assert_eq!(base.fingerprint(), inert.fingerprint());
        assert_eq!(inert.fault_plan(), None);
        // Fault-free configs serialize without any fault key at all, so
        // their canonical JSON (and fingerprint) is unchanged from before
        // the knob existed.
        assert!(!serde_json::to_string(&base).unwrap().contains("fault"));
    }

    #[test]
    fn attacker_is_part_of_identity_and_canonicalized() {
        let base = ExperimentConfig::quick_test(DataPreset::Cifar10Like);
        let restricted = base.clone().with_attacker(AttackerModel::Coalition {
            members: vec![2, 0, 1, 1],
        });
        assert_ne!(
            base, restricted,
            "a restricted attacker changes the experiment"
        );
        assert_ne!(base.fingerprint(), restricted.fingerprint());
        assert_eq!(
            restricted.attacker(),
            Some(&AttackerModel::Coalition {
                members: vec![0, 1, 2]
            }),
            "members are sorted and deduped"
        );
        // Equivalent specs land on the same canonical form and fingerprint.
        let same = base.clone().with_attacker(AttackerModel::Coalition {
            members: vec![1, 2, 0],
        });
        assert_eq!(restricted, same);
        assert_eq!(restricted.fingerprint(), same.fingerprint());
        // The attacker round-trips through serialization.
        let back: ExperimentConfig =
            serde_json::from_str(&serde_json::to_string(&restricted).unwrap()).unwrap();
        assert_eq!(back.attacker(), restricted.attacker());
    }

    #[test]
    fn omniscient_attackers_are_normalized_away() {
        let base = ExperimentConfig::quick_test(DataPreset::Cifar10Like);
        let explicit = base.clone().with_attacker(AttackerModel::Omniscient);
        assert_eq!(base, explicit, "the omniscient attacker is the default");
        assert_eq!(base.fingerprint(), explicit.fingerprint());
        assert_eq!(explicit.attacker(), None);
        // Omniscient configs serialize without any attacker key at all, so
        // their canonical JSON (and fingerprint) is unchanged from before
        // the knob existed.
        assert!(!serde_json::to_string(&base).unwrap().contains("attacker"));
    }

    #[test]
    fn invalid_attackers_and_defenses_are_named_by_validate() {
        let quick = || ExperimentConfig::quick_test(DataPreset::Cifar10Like);
        // quick_test has 8 nodes; node 8 is out of range.
        let bad = quick().with_attacker(AttackerModel::PassiveNeighbors { observers: vec![8] });
        let err = bad.validate().unwrap_err();
        assert_eq!(err.invalid_field(), Some("attacker"));
        // A coalition of every node leaves nothing to attack.
        let bad = quick().with_attacker(AttackerModel::Coalition {
            members: (0..8).collect(),
        });
        assert_eq!(
            bad.validate().unwrap_err().invalid_field(),
            Some("attacker")
        );
        let bad = quick().with_defense(Defense::RandomMask { fraction: 1.0 });
        let err = bad.validate().unwrap_err();
        assert_eq!(err.invalid_field(), Some("defense"));
        assert!(err.to_string().contains("mask fraction"));
        // Valid attacker/defense combinations pass.
        quick()
            .with_attacker(AttackerModel::PassiveNeighbors { observers: vec![3] })
            .with_defense(Defense::Clipping { limit: 1.0 })
            .validate()
            .unwrap();
    }

    #[test]
    fn invalid_fault_plans_are_named_by_validate() {
        use glmia_gossip::ChurnConfig;
        let bad = ExperimentConfig::quick_test(DataPreset::Cifar10Like)
            .with_fault_plan(FaultPlan::none().with_churn(ChurnConfig::new(1.5)));
        let err = bad.validate().unwrap_err();
        assert_eq!(err.invalid_field(), Some("fault"));
        assert!(err.to_string().contains("churn rate"));
    }

    #[test]
    fn observability_knobs_do_not_change_identity() {
        let base = ExperimentConfig::quick_test(DataPreset::Cifar10Like);
        assert!(base.mixing_trace(), "mixing trace defaults on");
        assert!(!base.progress(), "progress defaults off");
        assert!(!base.telemetry(), "telemetry defaults off");
        let tweaked = base
            .clone()
            .with_mixing_trace(false)
            .with_progress(true)
            .with_telemetry(true);
        assert_eq!(base, tweaked);
        assert_eq!(base.fingerprint(), tweaked.fingerprint());
        assert!(!tweaked.mixing_trace());
        assert!(tweaked.progress());
        assert!(tweaked.telemetry());
    }

    #[test]
    fn parallelism_parses_and_displays() {
        assert_eq!("auto".parse::<Parallelism>().unwrap(), Parallelism::Auto);
        assert_eq!("4".parse::<Parallelism>().unwrap(), Parallelism::Fixed(4));
        assert!("0".parse::<Parallelism>().is_err());
        assert!("many".parse::<Parallelism>().is_err());
        assert_eq!(Parallelism::Auto.to_string(), "auto");
        assert_eq!(Parallelism::Fixed(3).to_string(), "3");
    }

    #[test]
    fn parallelism_resolves_to_at_least_one_thread() {
        assert!(Parallelism::Auto.threads() >= 1);
        assert_eq!(Parallelism::Fixed(1).threads(), 1);
        assert_eq!(Parallelism::Fixed(8).threads(), 8);
    }

    #[test]
    fn parallelism_is_not_part_of_config_identity() {
        let a = ExperimentConfig::quick_test(DataPreset::Cifar10Like)
            .with_parallelism(Parallelism::Fixed(1));
        let b = a.clone().with_parallelism(Parallelism::Fixed(8));
        assert_eq!(a, b, "thread count must not distinguish configs");
        // ... and it never reaches the serialized form.
        let json_a = serde_json::to_string(&a).unwrap();
        let json_b = serde_json::to_string(&b).unwrap();
        assert_eq!(json_a, json_b);
        assert!(!json_a.contains("parallelism"));
        // A deserialized config runs with the default (auto) budget.
        let back: ExperimentConfig = serde_json::from_str(&json_b).unwrap();
        assert_eq!(back.parallelism(), Parallelism::Auto);
    }
}

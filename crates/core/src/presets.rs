//! The paper's per-dataset training configuration (Table 2).

use glmia_data::DataPreset;
use glmia_nn::Activation;
use serde::{Deserialize, Serialize};

/// The training hyperparameters the paper uses for one dataset (Table 2),
/// plus the model architecture stand-in.
///
/// The paper's models (light CNNs, ResNet-8, a 4-layer MLP) are replaced by
/// MLPs sized to the synthetic stand-in tasks; learning rate, momentum,
/// weight decay, local epochs and round counts are kept at the paper's
/// values.
///
/// # Examples
///
/// ```
/// use glmia_core::TrainingPreset;
/// use glmia_data::DataPreset;
///
/// let t = TrainingPreset::for_dataset(DataPreset::Cifar100Like);
/// assert_eq!(t.learning_rate, 0.001);
/// assert_eq!(t.momentum, 0.9);
/// assert_eq!(t.paper_rounds, 500);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingPreset {
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// SGD weight decay.
    pub weight_decay: f32,
    /// Local epochs per update.
    pub local_epochs: usize,
    /// Rounds the paper trains for.
    pub paper_rounds: usize,
    /// Nodes the paper simulates (150; 60 for CIFAR-100).
    pub paper_nodes: usize,
    /// Hidden-layer widths of the stand-in MLP.
    pub hidden: Vec<usize>,
    /// Dropout probability on hidden activations (0 = the paper's setup).
    pub dropout: f32,
    /// Hidden activation.
    pub activation: Activation,
}

impl TrainingPreset {
    /// The paper's Table 2 row for `dataset`.
    #[must_use]
    pub fn for_dataset(dataset: DataPreset) -> Self {
        match dataset {
            DataPreset::Cifar10Like => Self {
                learning_rate: 0.01,
                momentum: 0.0,
                weight_decay: 5e-4,
                local_epochs: 3,
                paper_rounds: 250,
                paper_nodes: 150,
                hidden: vec![64, 32],
                dropout: 0.0,
                activation: Activation::Relu,
            },
            DataPreset::Cifar100Like => Self {
                learning_rate: 0.001,
                momentum: 0.9,
                weight_decay: 5e-4,
                local_epochs: 5,
                paper_rounds: 500,
                paper_nodes: 60,
                hidden: vec![96, 64],
                dropout: 0.0,
                activation: Activation::Relu,
            },
            DataPreset::FashionMnistLike => Self {
                learning_rate: 0.01,
                momentum: 0.0,
                weight_decay: 5e-4,
                local_epochs: 3,
                paper_rounds: 250,
                paper_nodes: 150,
                hidden: vec![48, 24],
                dropout: 0.0,
                activation: Activation::Relu,
            },
            DataPreset::Purchase100Like => Self {
                learning_rate: 0.01,
                momentum: 0.9,
                weight_decay: 5e-4,
                local_epochs: 10,
                paper_rounds: 250,
                paper_nodes: 150,
                // The paper uses Nasr et al.'s 4-layer fully-connected net.
                hidden: vec![128, 64, 32],
                dropout: 0.0,
                activation: Activation::Relu,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        let c10 = TrainingPreset::for_dataset(DataPreset::Cifar10Like);
        assert_eq!(
            (
                c10.learning_rate,
                c10.momentum,
                c10.local_epochs,
                c10.paper_rounds
            ),
            (0.01, 0.0, 3, 250)
        );
        let c100 = TrainingPreset::for_dataset(DataPreset::Cifar100Like);
        assert_eq!(
            (
                c100.learning_rate,
                c100.momentum,
                c100.local_epochs,
                c100.paper_rounds
            ),
            (0.001, 0.9, 5, 500)
        );
        assert_eq!(c100.paper_nodes, 60);
        let fm = TrainingPreset::for_dataset(DataPreset::FashionMnistLike);
        assert_eq!(fm.paper_nodes, 150);
        let p100 = TrainingPreset::for_dataset(DataPreset::Purchase100Like);
        assert_eq!(p100.local_epochs, 10);
        assert_eq!(p100.hidden.len(), 3, "4-layer fully-connected stand-in");
    }

    #[test]
    fn all_presets_share_weight_decay() {
        for d in DataPreset::ALL {
            assert_eq!(TrainingPreset::for_dataset(d).weight_decay, 5e-4);
        }
    }
}

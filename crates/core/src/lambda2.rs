//! The §4 spectral experiment: λ₂(W*) versus iterations (Figure 8).

use glmia_graph::Topology;
use glmia_spectral::{product_contraction_seeded, ProductContractionOptions, SparseMixingMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::CoreError;

/// Configuration of one λ₂(W*) decay measurement.
///
/// # Examples
///
/// ```
/// use glmia_core::{lambda2_series, Lambda2Config};
/// use glmia_gossip::TopologyMode;
///
/// let config = Lambda2Config {
///     nodes: 30,
///     view_size: 2,
///     iterations: 8,
///     runs: 5,
///     mode: TopologyMode::Dynamic,
///     seed: 0,
/// };
/// let series = lambda2_series(&config)?;
/// assert_eq!(series.mean.len(), 8);
/// // Contraction decays with more iterations.
/// assert!(series.mean[7] < series.mean[0]);
/// # Ok::<(), glmia_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lambda2Config {
    /// Number of nodes `n` (the paper uses 150).
    pub nodes: usize,
    /// Regular-graph degree `k ∈ {2, 5, 10, 25}` in the paper.
    pub view_size: usize,
    /// Maximum number of synchronous iterations `T`.
    pub iterations: usize,
    /// Independent runs to average (the paper uses 50).
    pub runs: usize,
    /// Static (one `W` reused) or dynamic (random node permutation each
    /// iteration, the idealized PeerSwap limit of §4).
    pub mode: glmia_gossip::TopologyMode,
    /// Master seed.
    pub seed: u64,
}

/// λ₂(W*) as a function of the iteration count, averaged over runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lambda2Series {
    /// The configuration that produced the series.
    pub config: Lambda2Config,
    /// `mean[t]` is the mean contraction of the length-`t+1` product.
    pub mean: Vec<f64>,
    /// Population standard deviation across runs, same indexing.
    pub std: Vec<f64>,
}

/// Measures the decay of λ₂(W*) (precisely: the contraction coefficient
/// σ₂ of the mixing product, which equals |λ₂| per symmetric factor) over
/// `iterations` synchronous gossip steps, averaged over `runs` independent
/// random k-regular graphs — the paper's Figure 8.
///
/// In the static mode the same mixing matrix is reused each iteration; in
/// the dynamic mode the graph's node labels are randomly permuted between
/// iterations, the idealized model of PeerSwap dynamics used by §4 ("all
/// nodes are randomly permuted at each iteration").
///
/// # Errors
///
/// Returns [`CoreError`] if the regular-graph parameters are infeasible.
pub fn lambda2_series(config: &Lambda2Config) -> Result<Lambda2Series, CoreError> {
    if config.iterations == 0 || config.runs == 0 {
        return Err(CoreError::new("iterations and runs must be positive"));
    }
    let mut master = StdRng::seed_from_u64(config.seed);
    // per_run[r][t] = contraction of the length-(t+1) product in run r.
    let mut per_run: Vec<Vec<f64>> = Vec::with_capacity(config.runs);
    let opts = ProductContractionOptions::default();
    for _ in 0..config.runs {
        let mut rng = StdRng::seed_from_u64(master.gen());
        let base = Topology::random_regular(config.nodes, config.view_size, &mut rng)?;
        // CSR factors: the growing product is never materialized, so a run
        // costs O(T² · n·(k+1)) matvec work and O(T · n·(k+1)) memory
        // instead of the dense path's O(T · n²).
        let mut sequence: Vec<SparseMixingMatrix> = Vec::with_capacity(config.iterations);
        let mut values = Vec::with_capacity(config.iterations);
        let mut topo = base;
        for t in 0..config.iterations {
            sequence.push(SparseMixingMatrix::from_regular(&topo)?);
            values.push(product_contraction_seeded(&sequence, opts, rng.gen())?);
            if config.mode == glmia_gossip::TopologyMode::Dynamic && t + 1 < config.iterations {
                topo = permute_topology(&topo, &mut rng);
            }
        }
        per_run.push(values);
    }
    let mut mean = Vec::with_capacity(config.iterations);
    let mut std = Vec::with_capacity(config.iterations);
    for t in 0..config.iterations {
        let column: Vec<f64> = per_run.iter().map(|run| run[t]).collect();
        let (m, s) = glmia_dist::mean_std(&column);
        mean.push(m);
        std.push(s);
    }
    Ok(Lambda2Series {
        config: *config,
        mean,
        std,
    })
}

/// Relabels all nodes with a uniformly random permutation, preserving the
/// graph structure (the §4 idealization of PeerSwap dynamics).
fn permute_topology<R: Rng + ?Sized>(topology: &Topology, rng: &mut R) -> Topology {
    let n = topology.len();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut views = vec![Vec::new(); n];
    for i in 0..n {
        views[perm[i]] = topology.view(i).iter().map(|&j| perm[j]).collect();
    }
    Topology::from_views(views).expect("permutation preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use glmia_gossip::TopologyMode;

    fn config(mode: TopologyMode, k: usize) -> Lambda2Config {
        Lambda2Config {
            nodes: 24,
            view_size: k,
            iterations: 6,
            runs: 4,
            mode,
            seed: 1,
        }
    }

    #[test]
    fn series_has_expected_shape() {
        let s = lambda2_series(&config(TopologyMode::Static, 2)).unwrap();
        assert_eq!(s.mean.len(), 6);
        assert_eq!(s.std.len(), 6);
        assert!(s.mean.iter().all(|&m| (0.0..=1.0 + 1e-9).contains(&m)));
    }

    #[test]
    fn contraction_decays_monotonically_in_iterations() {
        let s = lambda2_series(&config(TopologyMode::Static, 5)).unwrap();
        for w in s.mean.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{:?}", s.mean);
        }
    }

    #[test]
    fn dynamic_beats_static_on_sparse_graphs() {
        // The headline claim of §4 / Figure 8.
        let st = lambda2_series(&config(TopologyMode::Static, 2)).unwrap();
        let dy = lambda2_series(&config(TopologyMode::Dynamic, 2)).unwrap();
        let last = st.mean.len() - 1;
        assert!(
            dy.mean[last] < st.mean[last],
            "dynamic {} should be below static {}",
            dy.mean[last],
            st.mean[last]
        );
    }

    #[test]
    fn denser_graphs_mix_faster() {
        let sparse = lambda2_series(&config(TopologyMode::Static, 2)).unwrap();
        let dense = lambda2_series(&config(TopologyMode::Static, 10)).unwrap();
        assert!(dense.mean[0] < sparse.mean[0]);
    }

    #[test]
    fn permutation_preserves_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = Topology::random_regular(20, 4, &mut rng).unwrap();
        let p = permute_topology(&g, &mut rng);
        assert!(p.is_regular(4));
        assert!(p.invariants_hold());
        assert_eq!(p.edges().len(), g.edges().len());
    }

    #[test]
    fn zero_iterations_errors() {
        let mut c = config(TopologyMode::Static, 2);
        c.iterations = 0;
        assert!(lambda2_series(&c).is_err());
        let mut c = config(TopologyMode::Static, 2);
        c.runs = 0;
        assert!(lambda2_series(&c).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = lambda2_series(&config(TopologyMode::Dynamic, 2)).unwrap();
        let b = lambda2_series(&config(TopologyMode::Dynamic, 2)).unwrap();
        assert_eq!(a, b);
    }
}

//! Multi-seed replication: run a configuration across independent seeds
//! and aggregate, giving the error bars the paper reports over repeated
//! runs.

use glmia_dist::mean_std;
use glmia_telemetry::clock;
use glmia_trace::{Phase, RunTrace};
use serde::{Deserialize, Serialize};

use crate::runner::config_fingerprint;
use crate::{
    run_experiment_traced, CoreError, ExperimentConfig, ExperimentResult, Parallelism, Stat,
};

/// Per-round metrics aggregated *across seeds* (each seed's value is its
/// own across-node mean).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedRound {
    /// The 1-based communication round.
    pub round: usize,
    /// Across-seed statistics of the mean test accuracy.
    pub test_accuracy: Stat,
    /// Across-seed statistics of the mean MIA vulnerability.
    pub mia_vulnerability: Stat,
    /// Across-seed statistics of the mean generalization error.
    pub gen_error: Stat,
}

/// The outcome of a replicated experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedResult {
    /// The base configuration (its seed field is the first seed used).
    pub config: ExperimentConfig,
    /// Seeds that were run.
    pub seeds: Vec<u64>,
    /// Per-round aggregates across seeds.
    pub rounds: Vec<ReplicatedRound>,
    /// The individual per-seed results.
    pub runs: Vec<ExperimentResult>,
}

/// Runs `config` under each seed `base_seed..base_seed + replicas` and
/// aggregates per-round metrics across seeds.
///
/// Replicas are independent experiments, so they run on scoped threads when
/// the config's [`Parallelism`] allows: the thread budget is split between
/// seed-level workers and each run's inner evaluation pool. The seed
/// sequence, the order of `runs`, and every result are identical to the
/// serial path ([`run_experiment`](crate::run_experiment)'s determinism
/// contract).
///
/// # Errors
///
/// Returns [`CoreError`] if `replicas == 0`, the config fails
/// [`validate`](ExperimentConfig::validate), or any replica fails.
///
/// # Examples
///
/// ```
/// use glmia_core::prelude::*;
///
/// let config = ExperimentConfig::quick_test(DataPreset::Cifar10Like);
/// let replicated = replicate_experiment(&config, 2)?;
/// assert_eq!(replicated.runs.len(), 2);
/// assert_eq!(replicated.rounds.len(), replicated.runs[0].rounds.len());
/// # Ok::<(), CoreError>(())
/// ```
pub fn replicate_experiment(
    config: &ExperimentConfig,
    replicas: usize,
) -> Result<ReplicatedResult, CoreError> {
    replicate_experiment_traced(config, replicas).map(|(result, _trace)| result)
}

/// [`replicate_experiment`], additionally returning the combined
/// [`RunTrace`]: every seed's per-round counters concatenated in ascending
/// seed order (so the event stream stays deterministic), phase timings
/// summed across replicas, plus the cross-seed aggregation charged to the
/// `aggregate` phase.
///
/// # Errors
///
/// Same contract as [`replicate_experiment`].
pub fn replicate_experiment_traced(
    config: &ExperimentConfig,
    replicas: usize,
) -> Result<(ReplicatedResult, RunTrace), CoreError> {
    if replicas == 0 {
        return Err(CoreError::new("replicas must be positive"));
    }
    config.validate()?;
    let wall_start = clock::now();
    let base_seed = config.seed();
    let seeds: Vec<u64> = (0..replicas)
        .map(|r| base_seed.wrapping_add(r as u64))
        .collect();
    let threads = config.parallelism().threads();
    // The combined trace is keyed by the *base* config's fingerprint; the
    // per-seed child traces (hashed with their own seed) fold into it.
    let mut trace = RunTrace::new(config.label(), config_fingerprint(config), threads);
    // Split the budget: up to `outer` seeds in flight, each with an inner
    // evaluation pool of `threads / outer` workers.
    let outer = threads.min(replicas);
    let outcomes: Vec<(ExperimentResult, RunTrace)> = if outer <= 1 {
        seeds
            .iter()
            .map(|&seed| run_experiment_traced(&config.clone().with_seed(seed)))
            .collect::<Result<_, _>>()?
    } else {
        let inner = Parallelism::Fixed((threads / outer).max(1));
        let mut slots: Vec<Option<Result<(ExperimentResult, RunTrace), CoreError>>> =
            (0..replicas).map(|_| None).collect();
        let chunk_len = replicas.div_ceil(outer);
        let mut worker_panic: Option<CoreError> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, out) in slots.chunks_mut(chunk_len).enumerate() {
                let seeds = &seeds;
                handles.push(scope.spawn(move || {
                    for (offset, slot) in out.iter_mut().enumerate() {
                        let seed = seeds[w * chunk_len + offset];
                        let run_config = config.clone().with_seed(seed).with_parallelism(inner);
                        *slot = Some(run_experiment_traced(&run_config));
                    }
                }));
            }
            // Join manually so a panicked seed worker surfaces as a typed
            // error (with its message) while the other seeds still finish.
            for handle in handles {
                if let Err(payload) = handle.join() {
                    if worker_panic.is_none() {
                        worker_panic = Some(CoreError::worker_panic("seed replication", payload));
                    }
                }
            }
        });
        if let Some(e) = worker_panic {
            return Err(e);
        }
        slots
            .into_iter()
            .map(|slot| {
                // Unreachable once every worker joined cleanly; kept as a
                // typed error rather than a panic.
                slot.unwrap_or_else(|| {
                    Err(CoreError::new(
                        "internal: replica slot left unfilled after replication",
                    ))
                })
            })
            .collect::<Result<_, _>>()?
    };
    let mut runs = Vec::with_capacity(replicas);
    for (result, seed_trace) in outcomes {
        // `outcomes` is in ascending seed order on both paths, so the
        // merged event stream is deterministic.
        trace.merge(seed_trace);
        runs.push(result);
    }
    // All runs share the eval schedule, so aggregate by index.
    let rounds = trace
        .phases_mut()
        .time(Phase::Aggregate, || aggregate_rounds(&runs))?;
    trace.set_wall_secs(wall_start.elapsed_secs());
    Ok((
        ReplicatedResult {
            config: config.clone(),
            seeds,
            rounds,
            runs,
        },
        trace,
    ))
}

/// Cross-seed per-round aggregation (mean ± std over seeds, by index).
fn aggregate_rounds(runs: &[ExperimentResult]) -> Result<Vec<ReplicatedRound>, CoreError> {
    let n_rounds = runs[0].rounds.len();
    if runs.iter().any(|r| r.rounds.len() != n_rounds) {
        return Err(CoreError::new(
            "replicas produced differing evaluation schedules",
        ));
    }
    let mut rounds = Vec::with_capacity(n_rounds);
    for i in 0..n_rounds {
        let acc: Vec<f64> = runs
            .iter()
            .map(|r| r.rounds[i].test_accuracy.mean)
            .collect();
        let vuln: Vec<f64> = runs
            .iter()
            .map(|r| r.rounds[i].mia_vulnerability.mean)
            .collect();
        let gen: Vec<f64> = runs.iter().map(|r| r.rounds[i].gen_error.mean).collect();
        let stat = |xs: &[f64]| {
            let (mean, std) = mean_std(xs);
            Stat { mean, std }
        };
        rounds.push(ReplicatedRound {
            round: runs[0].rounds[i].round,
            test_accuracy: stat(&acc),
            mia_vulnerability: stat(&vuln),
            gen_error: stat(&gen),
        });
    }
    Ok(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glmia_data::DataPreset;

    #[test]
    fn zero_replicas_errors() {
        let config = ExperimentConfig::quick_test(DataPreset::Cifar10Like);
        assert!(replicate_experiment(&config, 0).is_err());
    }

    #[test]
    fn replicas_use_distinct_seeds() {
        let config = ExperimentConfig::quick_test(DataPreset::Cifar10Like).with_seed(500);
        let rep = replicate_experiment(&config, 3).unwrap();
        assert_eq!(rep.seeds, vec![500, 501, 502]);
        assert_ne!(rep.runs[0], rep.runs[1]);
    }

    #[test]
    fn aggregate_mean_matches_manual_average() {
        let config = ExperimentConfig::quick_test(DataPreset::Cifar10Like).with_seed(600);
        let rep = replicate_experiment(&config, 2).unwrap();
        for (i, round) in rep.rounds.iter().enumerate() {
            let manual = (rep.runs[0].rounds[i].test_accuracy.mean
                + rep.runs[1].rounds[i].test_accuracy.mean)
                / 2.0;
            assert!((round.test_accuracy.mean - manual).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_over_seeds_matches_serial_baseline() {
        let config = ExperimentConfig::quick_test(DataPreset::Cifar10Like).with_seed(800);
        let serial =
            replicate_experiment(&config.clone().with_parallelism(Parallelism::Fixed(1)), 3)
                .unwrap();
        let parallel =
            replicate_experiment(&config.with_parallelism(Parallelism::Fixed(3)), 3).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn single_replica_has_zero_std() {
        let config = ExperimentConfig::quick_test(DataPreset::Cifar10Like).with_seed(700);
        let rep = replicate_experiment(&config, 1).unwrap();
        assert!(rep.rounds.iter().all(|r| r.test_accuracy.std == 0.0));
    }

    #[test]
    fn traced_replication_merges_seed_traces_in_order() {
        let config = ExperimentConfig::quick_test(DataPreset::Cifar10Like).with_seed(900);
        let (rep, trace) = replicate_experiment_traced(&config, 2).unwrap();
        assert_eq!(trace.seeds(), &[900, 901]);
        assert_eq!(
            trace.totals().rounds,
            (rep.runs.len() * config.rounds()) as u64
        );
        let sent: u64 = rep.runs.iter().map(|r| r.messages_sent).sum();
        assert_eq!(trace.totals().messages_sent, sent);
        // The combined event stream lists seed 900's records before 901's.
        let seed_order: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                glmia_trace::TraceEvent::Round(r) => Some(r.seed),
                _ => None,
            })
            .collect();
        let mut sorted = seed_order.clone();
        sorted.sort_unstable();
        assert_eq!(seed_order, sorted);
    }

    #[test]
    fn traced_and_untraced_replication_agree() {
        let config = ExperimentConfig::quick_test(DataPreset::Cifar10Like).with_seed(950);
        let plain = replicate_experiment(&config, 2).unwrap();
        let (traced, _) = replicate_experiment_traced(&config, 2).unwrap();
        assert_eq!(plain, traced);
    }
}

//! Multi-seed replication: run a configuration across independent seeds
//! and aggregate, giving the error bars the paper reports over repeated
//! runs.

use glmia_dist::mean_std;
use serde::{Deserialize, Serialize};

use crate::{run_experiment, CoreError, ExperimentConfig, ExperimentResult, Stat};

/// Per-round metrics aggregated *across seeds* (each seed's value is its
/// own across-node mean).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedRound {
    /// The 1-based communication round.
    pub round: usize,
    /// Across-seed statistics of the mean test accuracy.
    pub test_accuracy: Stat,
    /// Across-seed statistics of the mean MIA vulnerability.
    pub mia_vulnerability: Stat,
    /// Across-seed statistics of the mean generalization error.
    pub gen_error: Stat,
}

/// The outcome of a replicated experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedResult {
    /// The base configuration (its seed field is the first seed used).
    pub config: ExperimentConfig,
    /// Seeds that were run.
    pub seeds: Vec<u64>,
    /// Per-round aggregates across seeds.
    pub rounds: Vec<ReplicatedRound>,
    /// The individual per-seed results.
    pub runs: Vec<ExperimentResult>,
}

/// Runs `config` under each seed `base_seed..base_seed + replicas` and
/// aggregates per-round metrics across seeds.
///
/// # Errors
///
/// Returns [`CoreError`] if `replicas == 0` or any replica fails.
///
/// # Examples
///
/// ```
/// use glmia_core::{replicate_experiment, ExperimentConfig};
/// use glmia_data::DataPreset;
///
/// let config = ExperimentConfig::quick_test(DataPreset::Cifar10Like);
/// let replicated = replicate_experiment(&config, 2)?;
/// assert_eq!(replicated.runs.len(), 2);
/// assert_eq!(replicated.rounds.len(), replicated.runs[0].rounds.len());
/// # Ok::<(), glmia_core::CoreError>(())
/// ```
pub fn replicate_experiment(
    config: &ExperimentConfig,
    replicas: usize,
) -> Result<ReplicatedResult, CoreError> {
    if replicas == 0 {
        return Err(CoreError::new("replicas must be positive"));
    }
    let base_seed = config.seed();
    let mut runs = Vec::with_capacity(replicas);
    let mut seeds = Vec::with_capacity(replicas);
    for r in 0..replicas {
        let seed = base_seed.wrapping_add(r as u64);
        seeds.push(seed);
        runs.push(run_experiment(&config.clone().with_seed(seed))?);
    }
    // All runs share the eval schedule, so aggregate by index.
    let n_rounds = runs[0].rounds.len();
    if runs.iter().any(|r| r.rounds.len() != n_rounds) {
        return Err(CoreError::new(
            "replicas produced differing evaluation schedules",
        ));
    }
    let mut rounds = Vec::with_capacity(n_rounds);
    for i in 0..n_rounds {
        let acc: Vec<f64> = runs.iter().map(|r| r.rounds[i].test_accuracy.mean).collect();
        let vuln: Vec<f64> = runs
            .iter()
            .map(|r| r.rounds[i].mia_vulnerability.mean)
            .collect();
        let gen: Vec<f64> = runs.iter().map(|r| r.rounds[i].gen_error.mean).collect();
        let stat = |xs: &[f64]| {
            let (mean, std) = mean_std(xs);
            Stat { mean, std }
        };
        rounds.push(ReplicatedRound {
            round: runs[0].rounds[i].round,
            test_accuracy: stat(&acc),
            mia_vulnerability: stat(&vuln),
            gen_error: stat(&gen),
        });
    }
    Ok(ReplicatedResult {
        config: config.clone(),
        seeds,
        rounds,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use glmia_data::DataPreset;

    #[test]
    fn zero_replicas_errors() {
        let config = ExperimentConfig::quick_test(DataPreset::Cifar10Like);
        assert!(replicate_experiment(&config, 0).is_err());
    }

    #[test]
    fn replicas_use_distinct_seeds() {
        let config = ExperimentConfig::quick_test(DataPreset::Cifar10Like).with_seed(500);
        let rep = replicate_experiment(&config, 3).unwrap();
        assert_eq!(rep.seeds, vec![500, 501, 502]);
        assert_ne!(rep.runs[0], rep.runs[1]);
    }

    #[test]
    fn aggregate_mean_matches_manual_average() {
        let config = ExperimentConfig::quick_test(DataPreset::Cifar10Like).with_seed(600);
        let rep = replicate_experiment(&config, 2).unwrap();
        for (i, round) in rep.rounds.iter().enumerate() {
            let manual = (rep.runs[0].rounds[i].test_accuracy.mean
                + rep.runs[1].rounds[i].test_accuracy.mean)
                / 2.0;
            assert!((round.test_accuracy.mean - manual).abs() < 1e-12);
        }
    }

    #[test]
    fn single_replica_has_zero_std() {
        let config = ExperimentConfig::quick_test(DataPreset::Cifar10Like).with_seed(700);
        let rep = replicate_experiment(&config, 1).unwrap();
        assert!(rep.rounds.iter().all(|r| r.test_accuracy.std == 0.0));
    }
}

//! Experiment layer reproducing *"Scrutinizing the Vulnerability of
//! Decentralized Learning to Membership Inference Attacks"* (MIDDLEWARE
//! 2025).
//!
//! This crate wires the workspace's substrates together into the paper's
//! experimental pipeline:
//!
//! 1. build a synthetic [federation](glmia_data::Federation) of per-node
//!    datasets (IID or Dirichlet non-IID),
//! 2. generate a random k-regular [topology](glmia_graph::Topology),
//! 3. run a [gossip-learning simulation](glmia_gossip::Simulation) with the
//!    chosen protocol (Base Gossip / SAMO) and dynamics (static / PeerSwap),
//! 4. replay the omniscient attacker over every round snapshot: per node,
//!    measure global test accuracy (Eq. 5), MIA vulnerability with the MPE
//!    attack (Eq. 6) and generalization error (Eq. 7),
//! 5. aggregate into per-round means/standard deviations and
//!    privacy/utility tradeoff curves.
//!
//! The entry points are [`ExperimentConfig`] (a builder covering every knob
//! the paper varies) and [`run_experiment`]. [`TrainingPreset`] captures the
//! paper's Table 2 hyperparameters per dataset, and
//! [`lambda2_series`]/[`Lambda2Config`] reproduce the §4 spectral analysis
//! (Figure 8).
//!
//! # Examples
//!
//! ```
//! use glmia_core::prelude::*;
//!
//! # fn main() -> Result<(), CoreError> {
//! let config = ExperimentConfig::quick_test(DataPreset::FashionMnistLike)
//!     .with_protocol(ProtocolKind::Samo)
//!     .with_topology_mode(TopologyMode::Dynamic)
//!     .with_seed(7);
//! let result = run_experiment(&config)?;
//! assert!(!result.rounds.is_empty());
//! let last = result.rounds.last().unwrap();
//! assert!(last.mia_vulnerability.mean >= 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod lambda2;
mod presets;
mod replicate;
mod runner;

pub use config::{AttackSurface, ExperimentConfig, Parallelism};
pub use error::CoreError;
pub use lambda2::{lambda2_series, Lambda2Config, Lambda2Series};
pub use presets::TrainingPreset;
pub use replicate::{
    replicate_experiment, replicate_experiment_traced, ReplicatedResult, ReplicatedRound,
};
pub use runner::{run_experiment, run_experiment_traced, ExperimentResult, RoundEval, Stat};

/// One-stop imports for configuring, running and observing experiments.
///
/// Pulls in the experiment entry points and every cross-crate type a
/// typical caller needs to *configure* one (dataset presets, partitions,
/// protocols, topology modes, defenses, attack kinds) plus the
/// observability types returned by the `*_traced` runners — so examples
/// and downstream code start with a single `use glmia_core::prelude::*;`.
pub mod prelude {
    pub use crate::{
        lambda2_series, replicate_experiment, replicate_experiment_traced, run_experiment,
        run_experiment_traced, AttackSurface, CoreError, ExperimentConfig, ExperimentResult,
        Lambda2Config, Lambda2Series, Parallelism, ReplicatedResult, ReplicatedRound, RoundEval,
        Stat, TrainingPreset,
    };
    pub use glmia_data::{DataPreset, Partition};
    pub use glmia_gossip::{Defense, LrSchedule, ProtocolKind, TopologyMode};
    pub use glmia_mia::{Attack, AttackKind, AttackerModel, AttackerView};
    pub use glmia_trace::{
        read_trace, PerfSummary, Phase, RunSummary, RunTrace, TraceEvent, TraceReadError,
        TraceReader, TraceRecorder, TraceWriter,
    };
}

//! Unified error type for the experiment layer.

use std::error::Error;
use std::fmt;

/// Error returned by experiment construction or execution; wraps the
/// substrate crates' error types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreError {
    message: String,
}

impl CoreError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for CoreError {}

impl From<glmia_data::DataError> for CoreError {
    fn from(e: glmia_data::DataError) -> Self {
        Self::new(format!("data: {e}"))
    }
}

impl From<glmia_graph::GraphError> for CoreError {
    fn from(e: glmia_graph::GraphError) -> Self {
        Self::new(format!("graph: {e}"))
    }
}

impl From<glmia_gossip::GossipError> for CoreError {
    fn from(e: glmia_gossip::GossipError) -> Self {
        Self::new(format!("gossip: {e}"))
    }
}

impl From<glmia_nn::NnError> for CoreError {
    fn from(e: glmia_nn::NnError) -> Self {
        Self::new(format!("nn: {e}"))
    }
}

impl From<glmia_mia::MiaError> for CoreError {
    fn from(e: glmia_mia::MiaError) -> Self {
        Self::new(format!("mia: {e}"))
    }
}

impl From<glmia_spectral::SpectralError> for CoreError {
    fn from(e: glmia_spectral::SpectralError) -> Self {
        Self::new(format!("spectral: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
    }

    #[test]
    fn wraps_substrate_errors_with_prefix() {
        let e: CoreError = glmia_data::Dataset::empty(4, 1).unwrap_err().into();
        assert!(e.to_string().starts_with("data: "));
    }
}

//! Unified error type for the experiment layer.

use std::error::Error;
use std::fmt;

/// Error returned by experiment construction or execution.
///
/// Configuration mistakes are reported *before* any work starts as
/// [`CoreError::InvalidConfig`], naming the offending field; failures from
/// the substrate crates (data synthesis, graph construction, simulation,
/// evaluation) are wrapped as [`CoreError::Message`] with a subsystem
/// prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A configuration field violates its documented constraint; caught by
    /// [`ExperimentConfig::validate`](crate::ExperimentConfig::validate).
    InvalidConfig {
        /// The offending configuration field, e.g. `"view_size"`.
        field: &'static str,
        /// What constraint was violated.
        message: String,
    },
    /// A worker thread panicked during parallel evaluation or replication.
    ///
    /// Surfaced as a typed error instead of re-raising the panic so the
    /// caller (CLI, replication driver) can report which stage died and
    /// with what message, and other seeds/rounds can still complete.
    WorkerPanic {
        /// The parallel stage that lost a worker, e.g. `"round evaluation"`.
        context: &'static str,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// Any other construction or execution failure.
    Message(String),
}

impl CoreError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self::Message(message.into())
    }

    /// Builds a [`CoreError::WorkerPanic`] from a `JoinHandle::join` error
    /// payload, extracting the panic message when it is a string.
    pub(crate) fn worker_panic(
        context: &'static str,
        payload: Box<dyn std::any::Any + Send>,
    ) -> Self {
        let message = payload
            .downcast_ref::<&'static str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Self::WorkerPanic { context, message }
    }

    pub(crate) fn invalid(field: &'static str, message: impl Into<String>) -> Self {
        Self::InvalidConfig {
            field,
            message: message.into(),
        }
    }

    /// The offending config field for [`CoreError::InvalidConfig`], `None`
    /// otherwise. Lets callers (CLI, tests) react to *which* knob failed
    /// without parsing the message.
    #[must_use]
    pub fn invalid_field(&self) -> Option<&'static str> {
        match self {
            Self::InvalidConfig { field, .. } => Some(field),
            Self::WorkerPanic { .. } | Self::Message(_) => None,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { field, message } => {
                write!(f, "invalid config: {field}: {message}")
            }
            Self::WorkerPanic { context, message } => {
                write!(f, "worker thread panicked during {context}: {message}")
            }
            Self::Message(message) => f.write_str(message),
        }
    }
}

impl Error for CoreError {}

impl From<glmia_data::DataError> for CoreError {
    fn from(e: glmia_data::DataError) -> Self {
        Self::new(format!("data: {e}"))
    }
}

impl From<glmia_graph::GraphError> for CoreError {
    fn from(e: glmia_graph::GraphError) -> Self {
        Self::new(format!("graph: {e}"))
    }
}

impl From<glmia_gossip::GossipError> for CoreError {
    fn from(e: glmia_gossip::GossipError) -> Self {
        Self::new(format!("gossip: {e}"))
    }
}

impl From<glmia_nn::NnError> for CoreError {
    fn from(e: glmia_nn::NnError) -> Self {
        Self::new(format!("nn: {e}"))
    }
}

impl From<glmia_mia::MiaError> for CoreError {
    fn from(e: glmia_mia::MiaError) -> Self {
        Self::new(format!("mia: {e}"))
    }
}

impl From<glmia_spectral::SpectralError> for CoreError {
    fn from(e: glmia_spectral::SpectralError) -> Self {
        Self::new(format!("spectral: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
    }

    #[test]
    fn wraps_substrate_errors_with_prefix() {
        let e: CoreError = glmia_data::Dataset::empty(4, 1).unwrap_err().into();
        assert!(e.to_string().starts_with("data: "));
        assert_eq!(e.invalid_field(), None);
    }

    #[test]
    fn worker_panic_extracts_string_payloads() {
        let payload = std::thread::spawn(|| panic!("boom at round 3"))
            .join()
            .unwrap_err();
        let e = CoreError::worker_panic("round evaluation", payload);
        assert_eq!(
            e.to_string(),
            "worker thread panicked during round evaluation: boom at round 3"
        );
        assert_eq!(e.invalid_field(), None);
    }

    #[test]
    fn invalid_config_names_the_field() {
        let e = CoreError::invalid("view_size", "must be positive");
        assert_eq!(e.invalid_field(), Some("view_size"));
        assert_eq!(e.to_string(), "invalid config: view_size: must be positive");
    }
}

//! Unified error type for the experiment layer.

use std::error::Error;
use std::fmt;

/// Error returned by experiment construction or execution.
///
/// Configuration mistakes are reported *before* any work starts as
/// [`CoreError::InvalidConfig`], naming the offending field; failures from
/// the substrate crates (data synthesis, graph construction, simulation,
/// evaluation) are wrapped as [`CoreError::Message`] with a subsystem
/// prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A configuration field violates its documented constraint; caught by
    /// [`ExperimentConfig::validate`](crate::ExperimentConfig::validate).
    InvalidConfig {
        /// The offending configuration field, e.g. `"view_size"`.
        field: &'static str,
        /// What constraint was violated.
        message: String,
    },
    /// Any other construction or execution failure.
    Message(String),
}

impl CoreError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self::Message(message.into())
    }

    pub(crate) fn invalid(field: &'static str, message: impl Into<String>) -> Self {
        Self::InvalidConfig {
            field,
            message: message.into(),
        }
    }

    /// The offending config field for [`CoreError::InvalidConfig`], `None`
    /// otherwise. Lets callers (CLI, tests) react to *which* knob failed
    /// without parsing the message.
    #[must_use]
    pub fn invalid_field(&self) -> Option<&'static str> {
        match self {
            Self::InvalidConfig { field, .. } => Some(field),
            Self::Message(_) => None,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { field, message } => {
                write!(f, "invalid config: {field}: {message}")
            }
            Self::Message(message) => f.write_str(message),
        }
    }
}

impl Error for CoreError {}

impl From<glmia_data::DataError> for CoreError {
    fn from(e: glmia_data::DataError) -> Self {
        Self::new(format!("data: {e}"))
    }
}

impl From<glmia_graph::GraphError> for CoreError {
    fn from(e: glmia_graph::GraphError) -> Self {
        Self::new(format!("graph: {e}"))
    }
}

impl From<glmia_gossip::GossipError> for CoreError {
    fn from(e: glmia_gossip::GossipError) -> Self {
        Self::new(format!("gossip: {e}"))
    }
}

impl From<glmia_nn::NnError> for CoreError {
    fn from(e: glmia_nn::NnError) -> Self {
        Self::new(format!("nn: {e}"))
    }
}

impl From<glmia_mia::MiaError> for CoreError {
    fn from(e: glmia_mia::MiaError) -> Self {
        Self::new(format!("mia: {e}"))
    }
}

impl From<glmia_spectral::SpectralError> for CoreError {
    fn from(e: glmia_spectral::SpectralError) -> Self {
        Self::new(format!("spectral: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
    }

    #[test]
    fn wraps_substrate_errors_with_prefix() {
        let e: CoreError = glmia_data::Dataset::empty(4, 1).unwrap_err().into();
        assert!(e.to_string().starts_with("data: "));
        assert_eq!(e.invalid_field(), None);
    }

    #[test]
    fn invalid_config_names_the_field() {
        let e = CoreError::invalid("view_size", "must be positive");
        assert_eq!(e.invalid_field(), Some("view_size"));
        assert_eq!(e.to_string(), "invalid config: view_size: must be positive");
    }
}

//! The end-to-end experiment runner: simulate, then replay the configured
//! attacker ([`AttackerModel`], omniscient by default) over every recorded
//! round, scoring only the nodes that threat model observes.
//!
//! # Parallel evaluation & determinism
//!
//! The attack replay is embarrassingly parallel — every node's model is
//! reconstructed and attacked independently against read-only data — so the
//! runner fans it out over a scoped worker pool sized by
//! [`Parallelism`](crate::Parallelism). Two properties make the fan-out
//! invisible to results:
//!
//! 1. **Per-`(seed, round, node)` RNG derivation.** The evaluation RNG is
//!    not a sequential stream threaded through nodes; each node of each
//!    evaluated round reseeds its own [`StdRng`] from a SplitMix64 hash of
//!    `(seed, round, node)`. Evaluation order therefore cannot influence any
//!    random choice.
//! 2. **In-order reassembly.** Snapshots stream from the simulation thread
//!    over a bounded channel in round order, and per-node results are
//!    written into index-addressed slots, so aggregation always sees the
//!    same ordering the serial path produces.
//!
//! Consequently `run_experiment` returns bit-identical results at any
//! thread count, including the legacy serial path (`Parallelism::Fixed(1)`),
//! which spawns no threads at all.

use std::sync::mpsc;
use std::sync::Arc;

use glmia_data::Federation;
use glmia_dist::mean_std;
use glmia_gossip::{MixingMatrixObserver, Observers, RoundSnapshot, Simulation};
use glmia_graph::Topology;
use glmia_metrics::{accuracy, best_utility_point, generalization_error, TradeoffPoint};
use glmia_mia::{AttackerModel, MiaEvaluator};
use glmia_nn::Mlp;
use glmia_spectral::{product_contraction_seeded, ProductContractionOptions, SparseMixingMatrix};
use glmia_telemetry::{clock, count, span, Instrument, Telemetry};
use glmia_trace::{
    EvalRecord, MixingRecord, NodeEvalRecord, Phase, ProgressObserver, RunTrace, TelemetryObserver,
    ThreatRecord, TopologyRecord, TraceRecorder,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{AttackSurface, CoreError, ExperimentConfig};

/// How many evaluated snapshots the simulation thread may run ahead of the
/// evaluation pool before backpressure pauses it. Small on purpose: each
/// snapshot holds every node's full parameter vector.
const PIPELINE_DEPTH: usize = 2;

/// SplitMix64 finalizer: a cheap, well-mixed u64 → u64 hash.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The evaluation RNG for one node of one evaluated round: an `StdRng`
/// seeded from a SplitMix64 chain over `(seed, round, node)`. Independent of
/// evaluation order and thread count — the determinism contract documented
/// in the module docs hinges on this derivation.
fn node_eval_rng(seed: u64, round: usize, node: usize) -> StdRng {
    let h = splitmix64(splitmix64(splitmix64(seed) ^ round as u64) ^ node as u64);
    StdRng::seed_from_u64(h)
}

/// A mean ± population-standard-deviation pair aggregated over nodes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Stat {
    /// Mean over nodes.
    pub mean: f64,
    /// Population standard deviation over nodes.
    pub std: f64,
}

impl Stat {
    fn of(values: &[f64]) -> Self {
        let (mean, std) = mean_std(values);
        Self { mean, std }
    }
}

impl std::fmt::Display for Stat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}±{:.3}", self.mean, self.std)
    }
}

/// The omniscient attacker's measurements for one evaluated round,
/// aggregated over all nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundEval {
    /// The 1-based communication round.
    pub round: usize,
    /// Mean top-1 accuracy on the shared global test set (utility, Eq. 5).
    pub test_accuracy: Stat,
    /// Mean accuracy on each node's own training shard.
    pub train_accuracy: Stat,
    /// Mean MPE-attack accuracy over nodes (privacy, Eq. 6).
    pub mia_vulnerability: Stat,
    /// Mean attack AUC over nodes (threshold-free leakage).
    pub mia_auc: Stat,
    /// Mean generalization error over nodes (Eq. 7).
    pub gen_error: Stat,
}

/// The outcome of one experiment: per-round evaluations plus run-level
/// counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// One entry per evaluated round, in round order.
    pub rounds: Vec<RoundEval>,
    /// Total models sent (communication cost).
    pub messages_sent: u64,
    /// Models dropped by failure injection.
    pub messages_dropped: u64,
}

impl ExperimentResult {
    /// The privacy/utility tradeoff curve: one point per evaluated round
    /// (utility = mean test accuracy, vulnerability = mean MIA accuracy) —
    /// the data behind the paper's Figures 2, 3 and 5.
    #[must_use]
    pub fn tradeoff_points(&self) -> Vec<TradeoffPoint> {
        self.rounds
            .iter()
            .map(|r| TradeoffPoint {
                round: r.round,
                utility: r.test_accuracy.mean,
                vulnerability: r.mia_vulnerability.mean,
            })
            .collect()
    }

    /// The generalization-error tradeoff curve (x = mean gen error, y =
    /// mean MIA accuracy) — the data behind Figure 6.
    #[must_use]
    pub fn gen_error_points(&self) -> Vec<TradeoffPoint> {
        self.rounds
            .iter()
            .map(|r| TradeoffPoint {
                round: r.round,
                utility: r.gen_error.mean,
                vulnerability: r.mia_vulnerability.mean,
            })
            .collect()
    }

    /// The round with maximum mean test accuracy and its vulnerability —
    /// the summary statistic of Figure 4.
    #[must_use]
    pub fn best_point(&self) -> Option<TradeoffPoint> {
        best_utility_point(&self.tradeoff_points())
    }

    /// The final evaluated round.
    ///
    /// # Panics
    ///
    /// Panics if the result holds no rounds (cannot happen for a value
    /// returned by [`run_experiment`]).
    #[must_use]
    pub fn final_round(&self) -> &RoundEval {
        self.rounds
            .last()
            .expect("experiments evaluate at least one round")
    }

    /// Renders the per-round evaluations as an aligned plain-text table.
    #[must_use]
    pub fn summary_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rounds
            .iter()
            .map(|r| {
                vec![
                    r.round.to_string(),
                    r.test_accuracy.to_string(),
                    r.train_accuracy.to_string(),
                    r.mia_vulnerability.to_string(),
                    r.mia_auc.to_string(),
                    r.gen_error.to_string(),
                ]
            })
            .collect();
        glmia_metrics::render_table(
            &[
                "round",
                "test acc",
                "train acc",
                "MIA vuln",
                "MIA AUC",
                "gen error",
            ],
            &rows,
        )
    }
}

/// Runs one experiment end to end.
///
/// Pipeline: build the federation and k-regular topology from the config's
/// seed, simulate the gossip protocol for the configured rounds, and at
/// every `eval_every`-th round (plus the final round) replay the paper's
/// omniscient attacker: reconstruct each node's model from the snapshot and
/// measure global-test accuracy, local train accuracy, MPE-attack
/// accuracy/AUC against the node's member/non-member pools, and
/// generalization error.
///
/// With [`Parallelism`](crate::Parallelism) above 1 the simulation runs on
/// its own thread, streaming due snapshots over a bounded channel to a
/// scoped evaluation pool, so attack replay never stalls the protocol
/// simulation; the result is bit-identical to the serial path (see the
/// module docs for the determinism contract).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if the configuration fails
/// [`validate`](ExperimentConfig::validate), or [`CoreError`] if any
/// substrate rejects it (infeasible topology, undersized dataset,
/// mismatched shapes).
pub fn run_experiment(config: &ExperimentConfig) -> Result<ExperimentResult, CoreError> {
    run_experiment_traced(config).map(|(result, _trace)| result)
}

/// [`run_experiment`], additionally returning the run's observability
/// trace: per-round simulation counters (from a
/// [`TraceRecorder`] riding the engine's observer chain), per-phase
/// wall-clock timings and run totals, packaged as a [`RunTrace`] ready to
/// serialize as `events.jsonl` + `manifest.json`.
///
/// Tracing is counter-only instrumentation on the engine's event stream —
/// it never touches an RNG or a model, so the [`ExperimentResult`] is
/// byte-identical to an untraced run ([`run_experiment`] is in fact this
/// function with the trace discarded).
///
/// # Errors
///
/// Same contract as [`run_experiment`].
pub fn run_experiment_traced(
    config: &ExperimentConfig,
) -> Result<(ExperimentResult, RunTrace), CoreError> {
    config.validate()?;
    let wall_start = clock::now();
    let threads = config.parallelism().threads();
    let mut trace = RunTrace::new(config.label(), config_fingerprint(config), threads);
    // One registry per run, installed on this thread for its duration and
    // re-entered on the simulation and evaluation workers. `None` keeps
    // every instrument a no-op and the trace byte-identical to pre-telemetry
    // runs.
    let telemetry = config.telemetry().then(Telemetry::new);
    let _telemetry_scope = telemetry.as_ref().map(Telemetry::enter);

    let mut rng = StdRng::seed_from_u64(config.seed());
    let data_spec = config.data_spec();
    let federation = trace.phases_mut().time(Phase::Partition, || {
        let _span = span("partition");
        Federation::build(
            &data_spec,
            config.nodes(),
            config.train_per_node(),
            config.test_per_node(),
            config.partition(),
            &mut rng,
        )
    })?;
    let topology = trace.phases_mut().time(Phase::Topology, || {
        let _span = span("topology");
        Topology::random_regular(config.nodes(), config.view_size(), &mut rng)
    })?;
    // Analytic anchor: λ₂ of the synchronous mixing matrix (A + I)/(k + 1)
    // of the initial graph, recorded so `analyze` can put the empirical
    // per-round values next to the theory they approximate. Computed via
    // the sparse deterministic path — the dense Jacobi oracle is O(n³) and
    // would dominate the whole run beyond a few thousand nodes.
    let topo_record = TopologyRecord {
        seed: config.seed(),
        nodes: config.nodes(),
        view_size: config.view_size(),
        lambda2_analytic: SparseMixingMatrix::from_regular(&topology)?
            .lambda2_magnitude_seeded(ProductContractionOptions::deterministic(), config.seed())?,
    };
    // The attacker's vantage is fixed against the initial topology: a
    // restricted adversary only ever scores the nodes its observers (or
    // coalition members) are adjacent to at round zero, even when PeerSwap
    // rewires the views later. `None` means omniscient — every node.
    let observed_set: Option<Vec<usize>> = match config.attacker() {
        Some(attacker) => {
            let views: Vec<&[usize]> = (0..config.nodes()).map(|i| topology.view(i)).collect();
            let observed = attacker.observed_nodes(&views);
            if observed.is_empty() {
                return Err(CoreError::invalid(
                    "attacker",
                    format!("attacker '{attacker}' observes no nodes on this topology"),
                ));
            }
            Some(observed)
        }
        None => None,
    };
    let model_spec = config.model_spec()?;
    let mut sim = Simulation::new(
        config.sim_config(),
        &model_spec,
        &federation,
        topology,
        // Decouple the simulator's stream from the data stream.
        config.seed().wrapping_add(0x9E37_79B9_7F4A_7C15),
    )?;

    let evaluator = MiaEvaluator::new(config.attack());
    let observed_ref: Option<&[usize]> = observed_set.as_deref();
    let seed = config.seed();
    let surface = config.attack_surface();
    let eval_every = config.eval_every();
    let total_rounds = config.rounds();
    let due = move |round: usize| round.is_multiple_of(eval_every) || round == total_rounds;

    let mut rounds = Vec::new();
    let mut node_evals: Vec<NodeEvalRecord> = Vec::new();
    let mut eval_error: Option<CoreError> = None;
    let mut eval_cache = NodeEvalCache::default();
    let mut recorder = TraceRecorder::new();
    let mut mixing_obs = if config.mixing_trace() {
        MixingMatrixObserver::new(config.nodes())
    } else {
        MixingMatrixObserver::disabled()
    };
    let mut progress = ProgressObserver::with_enabled(total_rounds, config.progress());
    // Drains the per-round counter deltas at each round barrier; inert (and
    // record-free) when the run has no telemetry handle.
    let mut telemetry_obs = TelemetryObserver::new(telemetry.clone());
    let mut sim_secs = 0.0_f64;
    let mut eval_secs = 0.0_f64;
    if threads <= 1 {
        // Legacy serial path: evaluate inline, no threads spawned. The
        // recorder, mixing reconstruction and heartbeat ride the observer
        // chain; the closure sink keeps the pre-trait behavior.
        let run_start = clock::now();
        let _sim_span = span("simulate");
        sim.run_observed(Observers::new(
            &mut telemetry_obs,
            Observers::new(
                &mut recorder,
                Observers::new(
                    &mut mixing_obs,
                    Observers::new(&mut progress, |snapshot: RoundSnapshot| {
                        if eval_error.is_some() || !due(snapshot.round) {
                            return;
                        }
                        let eval_start = clock::now();
                        let _span = span("eval");
                        match evaluate_round(
                            &snapshot,
                            surface,
                            &model_spec,
                            &federation,
                            &evaluator,
                            observed_ref,
                            seed,
                            1,
                            &mut eval_cache,
                        ) {
                            Ok((eval, nodes)) => {
                                rounds.push(eval);
                                node_evals.extend(nodes);
                            }
                            Err(e) => eval_error = Some(e),
                        }
                        eval_secs += eval_start.elapsed_secs();
                    }),
                ),
            ),
        ));
        drop(_sim_span);
        sim_secs = run_start.elapsed_secs() - eval_secs;
    } else {
        // Pipelined path: the simulation thread streams due snapshots over
        // a bounded channel while this thread replays the attack on them
        // with a node-parallel pool. The channel preserves round order, so
        // `rounds` is assembled exactly as the serial path would. The
        // phases overlap in wall time; each accumulates its own busy time.
        let (tx, rx) = mpsc::sync_channel::<RoundSnapshot>(PIPELINE_DEPTH);
        let mut sim_panic: Option<CoreError> = None;
        std::thread::scope(|scope| {
            let sim = &mut sim;
            let recorder = &mut recorder;
            let mixing_obs = &mut mixing_obs;
            let progress = &mut progress;
            let telemetry_obs = &mut telemetry_obs;
            let sim_secs = &mut sim_secs;
            let sim_telemetry = telemetry.clone();
            let sim_thread = scope.spawn(move || {
                // Re-enter the run's registry on this thread so the engine's
                // instruments (and the per-round drain) keep recording.
                let _scope = sim_telemetry.as_ref().map(Telemetry::enter);
                let _span = span("simulate");
                let run_start = clock::now();
                sim.run_observed(Observers::new(
                    telemetry_obs,
                    Observers::new(
                        recorder,
                        Observers::new(
                            mixing_obs,
                            Observers::new(progress, move |snapshot: RoundSnapshot| {
                                if due(snapshot.round) {
                                    // The receiver only hangs up if the scope is
                                    // unwinding; finish the simulation regardless.
                                    let _ = tx.send(snapshot);
                                }
                            }),
                        ),
                    ),
                ));
                *sim_secs = run_start.elapsed_secs();
            });
            for snapshot in &rx {
                if eval_error.is_some() {
                    // Keep draining so the simulation thread never blocks
                    // on a full channel; the first error is what we report.
                    continue;
                }
                let eval_start = clock::now();
                let _span = span("eval");
                match evaluate_round(
                    &snapshot,
                    surface,
                    &model_spec,
                    &federation,
                    &evaluator,
                    observed_ref,
                    seed,
                    threads,
                    &mut eval_cache,
                ) {
                    Ok((eval, nodes)) => {
                        rounds.push(eval);
                        node_evals.extend(nodes);
                    }
                    Err(e) => eval_error = Some(e),
                }
                eval_secs += eval_start.elapsed_secs();
            }
            // The receive loop above only ends once the sender is dropped,
            // so the simulation thread is done (or unwound) by now; joining
            // here converts a panic into a typed error instead of letting
            // the scope re-raise it.
            if let Err(payload) = sim_thread.join() {
                sim_panic = Some(CoreError::worker_panic("pipelined simulation", payload));
            }
        });
        if let Some(e) = sim_panic {
            return Err(e);
        }
    }
    if let Some(e) = eval_error {
        return Err(e);
    }
    trace.phases_mut().add(Phase::Simulate, sim_secs);
    trace.phases_mut().add(Phase::Eval, eval_secs);
    let mixing_records = trace.phases_mut().time(Phase::Spectral, || {
        let _span = span("spectral");
        mixing_lambda2_records(&mixing_obs, seed)
    })?;
    let evals: Vec<EvalRecord> = rounds
        .iter()
        .map(|r| EvalRecord {
            seed,
            round: r.round,
            test_accuracy: r.test_accuracy.mean,
            train_accuracy: r.train_accuracy.mean,
            mia_vulnerability: r.mia_vulnerability.mean,
            mia_auc: r.mia_auc.mean,
            gen_error: r.gen_error.mean,
        })
        .collect();
    // A Threat record is emitted only when the run actually deviates from
    // the paper's baseline threat model (restricted attacker or an active
    // defense); omniscient undefended runs keep their schema-2/3 bytes.
    let threat_record = (config.attacker().is_some() || config.defense().is_some()).then(|| {
        let observed_nodes = observed_set.as_ref().map_or(config.nodes(), Vec::len);
        ThreatRecord {
            seed,
            attacker: config.attacker().map_or_else(
                || AttackerModel::Omniscient.to_string(),
                ToString::to_string,
            ),
            defense: config.defense().map(ToString::to_string),
            observed_nodes,
            nodes: config.nodes(),
            observations: node_evals.len() as u64,
        }
    });
    trace.add_seed_run_full(
        seed,
        Some(topo_record),
        threat_record,
        recorder.rounds(),
        recorder.fault_records(),
        &mixing_records,
        &node_evals,
        &evals,
    );
    trace.set_wall_secs(wall_start.elapsed_secs());
    if let Some(telemetry) = &telemetry {
        trace.add_seed_telemetry(seed, telemetry_obs.into_records());
        trace.set_telemetry_totals(telemetry.counters().to_map());
        trace.set_profile(glmia_telemetry::profile(telemetry));
    }
    Ok((
        ExperimentResult {
            config: config.clone(),
            rounds,
            messages_sent: sim.messages_sent(),
            messages_dropped: sim.messages_dropped(),
        },
        trace,
    ))
}

/// FNV-1a fingerprint of the experiment's identity; see
/// [`ExperimentConfig::fingerprint`].
pub(crate) fn config_fingerprint(config: &ExperimentConfig) -> u64 {
    config.fingerprint()
}

/// The derived seed for the spectral post-pass of one round, independent of
/// evaluation order and thread count (same SplitMix64 chain the old
/// RNG-based derivation used; the constant keeps the stream disjoint from
/// [`node_eval_rng`]).
fn round_spectral_seed(seed: u64, round: usize) -> u64 {
    splitmix64(splitmix64(seed).wrapping_add(0x5bd1) ^ round as u64)
}

/// Folds the per-round empirical mixing matrices into [`MixingRecord`]s:
/// per-round λ₂(W_t) and the cumulative-product contraction
/// σ₂(W_t ⋯ W_1), the paper's Figure 8 quantity measured on the *actual*
/// message schedule instead of the idealized synchronous model.
///
/// Everything runs through the sparse seeded path: the per-round value is
/// the contraction of one CSR factor, and the cumulative value applies the
/// whole prefix `[W₁ … W_t]` factor-by-factor inside the power iteration,
/// so no `n × n` product matrix is ever materialized — per-round cost is
/// `O(iters · t · nnz)` instead of the dense path's `O(n³)` matmul + Jacobi.
fn mixing_lambda2_records(
    observer: &MixingMatrixObserver,
    seed: u64,
) -> Result<Vec<MixingRecord>, CoreError> {
    let n = observer.nodes();
    let matrices = observer.matrices();
    if n < 2 || matrices.is_empty() {
        return Ok(Vec::new());
    }
    let opts = ProductContractionOptions::deterministic();
    let mut records = Vec::with_capacity(matrices.len());
    for (t, w) in matrices.iter().enumerate() {
        let round = t + 1;
        let round_seed = round_spectral_seed(seed, round);
        let lambda2_round = product_contraction_seeded(std::slice::from_ref(w), opts, round_seed)?;
        // W* = W⁽ᵗ⁾ ⋯ W⁽¹⁾: the slice is in round order, and the forward
        // sweep applies W₁ first. A second derived seed keeps the two
        // iterations' start vectors independent.
        let lambda2_cumulative =
            product_contraction_seeded(&matrices[..=t], opts, splitmix64(round_seed))?;
        records.push(MixingRecord {
            seed,
            round,
            lambda2_round,
            lambda2_cumulative,
        });
    }
    Ok(records)
}

/// One node's slice of a round evaluation.
#[derive(Clone, Copy)]
struct NodeEval {
    test_acc: f64,
    train_acc: f64,
    vuln: f64,
    auc: f64,
    gen: f64,
}

/// Per-node memo of the last evaluated model, keyed by `Arc` identity.
///
/// Snapshots share each node's parameter allocation across rounds while the
/// model is unchanged (see [`RoundSnapshot::models`]), so pointer equality
/// certifies byte-identity and the attacker's scores can be reused instead
/// of re-running the full MIA replay. Nodes in a gossip round that neither
/// woke nor merged are common at scale — this turns their evaluation into a
/// pointer compare. Reuse is exact for the model-derived quantities; only
/// the per-`(seed, round, node)` attack-sampling draw is reused along with
/// them, which is the same score the attacker would publish for an
/// unchanged model.
#[derive(Default)]
struct NodeEvalCache {
    entries: Vec<Option<(Arc<[f32]>, NodeEval)>>,
}

impl NodeEvalCache {
    /// The memoized evaluation for node `i`, if `flat` is the very
    /// allocation that produced it.
    fn lookup(&self, i: usize, flat: &Arc<[f32]>) -> Option<NodeEval> {
        match self.entries.get(i)? {
            Some((prev, eval)) if Arc::ptr_eq(prev, flat) => Some(*eval),
            _ => None,
        }
    }

    fn store(&mut self, i: usize, flat: &Arc<[f32]>, eval: NodeEval) {
        if self.entries.len() <= i {
            self.entries.resize_with(i + 1, || None);
        }
        self.entries[i] = Some((Arc::clone(flat), eval));
    }
}

/// Reconstructs and attacks one node's observed model, using the node's
/// order-independent derived RNG.
fn evaluate_node(
    flat: &[f32],
    node: usize,
    round: usize,
    seed: u64,
    model_spec: &glmia_nn::MlpSpec,
    federation: &Federation,
    evaluator: &MiaEvaluator,
) -> Result<NodeEval, CoreError> {
    let model = Mlp::from_flat(model_spec, flat)?;
    let data = federation.node(node);
    let mut rng = node_eval_rng(seed, round, node);
    let mia = evaluator.evaluate(&model, &data.train, &data.test, &mut rng)?;
    Ok(NodeEval {
        test_acc: accuracy(&model, federation.global_test()),
        train_acc: accuracy(&model, &data.train),
        vuln: mia.attack_accuracy,
        auc: mia.auc,
        gen: generalization_error(&model, data),
    })
}

/// Evaluates one snapshot: per-node utility, leakage and generalization,
/// fanned out over at most `threads` scoped workers (serial when 1).
/// Returns the across-node aggregate plus the per-node records (in node
/// order) that the trace keeps for distributional analysis.
///
/// `observed_set` restricts the attack to the nodes a non-omniscient
/// [`AttackerModel`] can actually see: only those nodes are reconstructed,
/// scored, recorded and aggregated. `None` (omniscient) evaluates every
/// node — the exact legacy path, byte for byte.
///
/// Nodes whose observed model is pointer-identical to what `cache` last
/// scored are skipped entirely (see [`NodeEvalCache`]); only the remaining
/// nodes fan out to the worker pool. Cache hits cannot depend on worker
/// scheduling, so the thread-count determinism contract is unchanged.
#[allow(clippy::too_many_arguments)]
fn evaluate_round(
    snapshot: &RoundSnapshot,
    surface: AttackSurface,
    model_spec: &glmia_nn::MlpSpec,
    federation: &Federation,
    evaluator: &MiaEvaluator,
    observed_set: Option<&[usize]>,
    seed: u64,
    threads: usize,
    cache: &mut NodeEvalCache,
) -> Result<(RoundEval, Vec<NodeEvalRecord>), CoreError> {
    let observed: &[Arc<[f32]>] = match surface {
        AttackSurface::NodeModel => &snapshot.models,
        AttackSurface::SharedModel => &snapshot.shared_models,
    };
    let n = observed.len();
    let round = snapshot.round;
    let targets: Vec<usize> = match observed_set {
        Some(set) => set.to_vec(),
        None => (0..n).collect(),
    };
    let mut evals: Vec<Option<NodeEval>> = (0..n).map(|_| None).collect();
    let mut missing: Vec<usize> = Vec::new();
    count(Instrument::RunnerEvals, 1);
    for &i in &targets {
        match cache.lookup(i, &observed[i]) {
            Some(eval) => {
                count(Instrument::MiaEvalCacheHits, 1);
                evals[i] = Some(eval);
            }
            None => {
                count(Instrument::MiaEvalCacheMisses, 1);
                missing.push(i);
            }
        }
    }
    let fresh: Vec<Result<NodeEval, CoreError>> = if threads <= 1 || missing.len() < 2 {
        missing
            .iter()
            .map(|&i| {
                evaluate_node(
                    &observed[i],
                    i,
                    round,
                    seed,
                    model_spec,
                    federation,
                    evaluator,
                )
            })
            .collect()
    } else {
        // Index-addressed slots + contiguous chunks give each worker a
        // disjoint &mut region; node order is preserved by construction.
        let m = missing.len();
        let mut slots: Vec<Option<Result<NodeEval, CoreError>>> = (0..m).map(|_| None).collect();
        let chunk_len = m.div_ceil(threads.min(m));
        let mut worker_panic: Option<CoreError> = None;
        let missing = &missing;
        // Workers inherit the calling thread's registry (if any) so the
        // MIA-side instruments keep counting off-thread; counters are
        // commutative atomics, so totals stay thread-count independent.
        let worker_telemetry = Telemetry::current();
        let worker_telemetry = worker_telemetry.as_ref();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, out) in slots.chunks_mut(chunk_len).enumerate() {
                let start = w * chunk_len;
                handles.push(scope.spawn(move || {
                    let _scope = worker_telemetry.map(Telemetry::enter);
                    for (offset, slot) in out.iter_mut().enumerate() {
                        let i = missing[start + offset];
                        *slot = Some(evaluate_node(
                            &observed[i],
                            i,
                            round,
                            seed,
                            model_spec,
                            federation,
                            evaluator,
                        ));
                    }
                }));
            }
            // Join every worker ourselves: a panicked worker becomes a
            // typed error with the panic message instead of a scope
            // re-raise, and the remaining workers still finish.
            for handle in handles {
                if let Err(payload) = handle.join() {
                    if worker_panic.is_none() {
                        worker_panic = Some(CoreError::worker_panic("round evaluation", payload));
                    }
                }
            }
        });
        if let Some(e) = worker_panic {
            return Err(e);
        }
        slots
            .into_iter()
            .map(|slot| {
                // Unreachable once every worker joined cleanly; kept as a
                // typed error rather than a panic.
                slot.unwrap_or_else(|| {
                    Err(CoreError::new(
                        "internal: node slot left unfilled after evaluation",
                    ))
                })
            })
            .collect()
    };
    for (&i, result) in missing.iter().zip(fresh) {
        let eval = result?;
        cache.store(i, &observed[i], eval);
        evals[i] = Some(eval);
    }
    let m = targets.len();
    let mut test_acc = Vec::with_capacity(m);
    let mut train_acc = Vec::with_capacity(m);
    let mut vuln = Vec::with_capacity(m);
    let mut auc = Vec::with_capacity(m);
    let mut gen = Vec::with_capacity(m);
    let mut records = Vec::with_capacity(m);
    for &node in &targets {
        let eval = evals[node].expect("every observed node is either cached or freshly evaluated");
        test_acc.push(eval.test_acc);
        train_acc.push(eval.train_acc);
        vuln.push(eval.vuln);
        auc.push(eval.auc);
        gen.push(eval.gen);
        records.push(NodeEvalRecord {
            seed,
            round,
            node,
            test_accuracy: eval.test_acc,
            train_accuracy: eval.train_acc,
            mia_vulnerability: eval.vuln,
            mia_auc: eval.auc,
            gen_error: eval.gen,
        });
    }
    Ok((
        RoundEval {
            round,
            test_accuracy: Stat::of(&test_acc),
            train_accuracy: Stat::of(&train_acc),
            mia_vulnerability: Stat::of(&vuln),
            mia_auc: Stat::of(&auc),
            gen_error: Stat::of(&gen),
        },
        records,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use glmia_data::DataPreset;
    use glmia_gossip::{ProtocolKind, TopologyMode};

    fn quick(seed: u64) -> ExperimentConfig {
        ExperimentConfig::quick_test(DataPreset::FashionMnistLike).with_seed(seed)
    }

    #[test]
    fn quick_experiment_produces_per_round_evals() {
        let result = run_experiment(&quick(1)).unwrap();
        assert_eq!(result.rounds.len(), 5, "eval_every=1 over 5 rounds");
        for (i, r) in result.rounds.iter().enumerate() {
            assert_eq!(r.round, i + 1);
            assert!((0.0..=1.0).contains(&r.test_accuracy.mean));
            assert!((0.5..=1.0).contains(&r.mia_vulnerability.mean));
            assert!((0.0..=1.0).contains(&r.mia_auc.mean));
            assert!((-1.0..=1.0).contains(&r.gen_error.mean));
        }
        assert!(result.messages_sent > 0);
    }

    #[test]
    fn results_are_seed_deterministic() {
        let a = run_experiment(&quick(3)).unwrap();
        let b = run_experiment(&quick(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_experiment(&quick(4)).unwrap();
        let b = run_experiment(&quick(5)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn eval_every_thins_rounds_but_keeps_final() {
        let config = quick(6).with_rounds(7).with_eval_every(3);
        let result = run_experiment(&config).unwrap();
        let rounds: Vec<usize> = result.rounds.iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![3, 6, 7]);
        assert_eq!(result.final_round().round, 7);
    }

    #[test]
    fn tradeoff_points_mirror_rounds() {
        let result = run_experiment(&quick(7)).unwrap();
        let points = result.tradeoff_points();
        assert_eq!(points.len(), result.rounds.len());
        assert_eq!(points[0].utility, result.rounds[0].test_accuracy.mean);
        assert!(result.best_point().is_some());
        assert_eq!(result.gen_error_points().len(), points.len());
    }

    #[test]
    fn base_gossip_and_samo_both_run() {
        for protocol in [ProtocolKind::BaseGossip, ProtocolKind::Samo] {
            for mode in [TopologyMode::Static, TopologyMode::Dynamic] {
                let config = quick(8).with_protocol(protocol).with_topology_mode(mode);
                let result = run_experiment(&config).unwrap();
                assert!(!result.rounds.is_empty(), "{protocol} {mode}");
            }
        }
    }

    #[test]
    fn summary_table_has_one_line_per_round() {
        let result = run_experiment(&quick(12)).unwrap();
        let table = result.summary_table();
        // header + rule + one line per evaluated round
        assert_eq!(table.lines().count(), 2 + result.rounds.len());
        assert!(table.contains("MIA vuln"));
    }

    #[test]
    fn shared_surface_differs_under_defense() {
        use crate::AttackSurface;
        use glmia_gossip::Defense;
        let noisy = quick(10).with_defense(Defense::GaussianNoise { std: 0.5 });
        let on_node = run_experiment(&noisy.clone()).unwrap();
        let on_share =
            run_experiment(&noisy.with_attack_surface(AttackSurface::SharedModel)).unwrap();
        // Same simulation, different observed surface → different evals.
        assert_eq!(on_node.messages_sent, on_share.messages_sent);
        assert_ne!(on_node.rounds, on_share.rounds);
    }

    #[test]
    fn surfaces_agree_without_defense_up_to_staleness() {
        // With no defense the shared copy is just a (possibly stale) model;
        // both surfaces must produce valid rounds.
        use crate::AttackSurface;
        let result =
            run_experiment(&quick(11).with_attack_surface(AttackSurface::SharedModel)).unwrap();
        assert!(!result.rounds.is_empty());
        assert!(result
            .rounds
            .iter()
            .all(|r| (0.5..=1.0).contains(&r.mia_vulnerability.mean)));
    }

    #[test]
    fn infeasible_topology_errors() {
        // 8 nodes with view size 9 is impossible.
        let config = quick(9).with_view_size(9);
        assert!(run_experiment(&config).is_err());
    }

    #[test]
    fn invalid_config_fails_fast_with_field_name() {
        let err = run_experiment(&quick(9).with_rounds(0)).unwrap_err();
        assert_eq!(err.invalid_field(), Some("rounds"));
    }

    #[test]
    fn traced_run_matches_untraced_result() {
        let config = quick(13);
        let untraced = run_experiment(&config).unwrap();
        let (traced, trace) = run_experiment_traced(&config).unwrap();
        assert_eq!(
            untraced, traced,
            "tracing must not change experiment numbers"
        );
        // ... and the serialized results are byte-identical too.
        assert_eq!(
            serde_json::to_string(&untraced).unwrap(),
            serde_json::to_string(&traced).unwrap()
        );
        assert_eq!(trace.seeds(), &[config.seed()]);
    }

    #[test]
    fn trace_counters_cover_every_round_and_match_result() {
        let config = quick(14).with_rounds(7).with_eval_every(3);
        let (result, trace) = run_experiment_traced(&config).unwrap();
        let totals = trace.totals();
        assert_eq!(totals.rounds, 7, "every simulated round is recorded");
        assert_eq!(totals.evals, result.rounds.len() as u64);
        assert_eq!(totals.messages_sent, result.messages_sent);
        assert_eq!(totals.messages_dropped, result.messages_dropped);
        assert!(totals.local_updates > 0);
        // Eval records mirror the result's per-round means.
        let evals: Vec<&glmia_trace::EvalRecord> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                glmia_trace::TraceEvent::Eval(record) => Some(record),
                _ => None,
            })
            .collect();
        assert_eq!(evals.len(), result.rounds.len());
        for (record, eval) in evals.iter().zip(&result.rounds) {
            assert_eq!(record.round, eval.round);
            assert_eq!(record.test_accuracy, eval.test_accuracy.mean);
            assert_eq!(record.mia_vulnerability, eval.mia_vulnerability.mean);
        }
        // Phase timings cover the run.
        assert!(trace.phases().get(Phase::Simulate) > 0.0);
        assert!(trace.phases().get(Phase::Eval) > 0.0);
        assert!(trace.wall_secs() > 0.0);
    }

    #[test]
    fn trace_carries_topology_mixing_and_node_records() {
        let config = quick(15);
        let (result, trace) = run_experiment_traced(&config).unwrap();
        let mut topo = 0;
        let mut mixing_rounds = Vec::new();
        let mut node_eval_count = 0;
        for event in trace.events() {
            match event {
                glmia_trace::TraceEvent::Topology(t) => {
                    topo += 1;
                    assert_eq!(t.nodes, config.nodes());
                    assert_eq!(t.view_size, config.view_size());
                    assert!((0.0..1.0).contains(&t.lambda2_analytic));
                }
                glmia_trace::TraceEvent::Mixing(m) => {
                    mixing_rounds.push(m.round);
                    // Empirical W_t is row-stochastic but (asynchrony) not
                    // exactly doubly stochastic, so allow a little headroom
                    // above the symmetric-case ceiling of 1.
                    assert!((0.0..=1.1).contains(&m.lambda2_round), "{m:?}");
                    assert!((0.0..=1.1).contains(&m.lambda2_cumulative), "{m:?}");
                }
                glmia_trace::TraceEvent::NodeEval(_) => node_eval_count += 1,
                _ => {}
            }
        }
        assert_eq!(topo, 1);
        assert_eq!(
            mixing_rounds,
            (1..=config.rounds()).collect::<Vec<_>>(),
            "one mixing record per simulated round"
        );
        assert_eq!(node_eval_count, result.rounds.len() * config.nodes());
        assert!(trace.phases().get(Phase::Spectral) > 0.0);
    }

    #[test]
    fn restricted_attacker_scores_only_observed_nodes() {
        let attacker = AttackerModel::PassiveNeighbors { observers: vec![0] };
        let config = quick(18).with_attacker(attacker);
        let (result, trace) = run_experiment_traced(&config).unwrap();
        // Observer 0's vantage in a 2-regular graph: exactly its 2 neighbors.
        let threat = trace
            .events()
            .iter()
            .find_map(|e| match e {
                glmia_trace::TraceEvent::Threat(t) => Some(t.clone()),
                _ => None,
            })
            .expect("restricted run emits a threat record");
        assert_eq!(threat.attacker, "neighbors:0");
        assert_eq!(threat.defense, None);
        assert_eq!(threat.nodes, config.nodes());
        assert_eq!(threat.observed_nodes, config.view_size());
        let node_evals: Vec<&glmia_trace::NodeEvalRecord> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                glmia_trace::TraceEvent::NodeEval(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(
            node_evals.len(),
            result.rounds.len() * threat.observed_nodes,
            "only observed nodes are scored"
        );
        assert_eq!(threat.observations, node_evals.len() as u64);
        let scored: std::collections::BTreeSet<usize> = node_evals.iter().map(|r| r.node).collect();
        assert_eq!(scored.len(), threat.observed_nodes);
        assert!(!scored.contains(&0), "observers never observe themselves");
        assert_eq!(trace.schema(), glmia_trace::THREAT_SCHEMA_VERSION);
    }

    #[test]
    fn omniscient_attacker_is_identity_inert() {
        let base = quick(19);
        let explicit = quick(19).with_attacker(AttackerModel::Omniscient);
        let (base_result, base_trace) = run_experiment_traced(&base).unwrap();
        let (explicit_result, explicit_trace) = run_experiment_traced(&explicit).unwrap();
        assert_eq!(base_result, explicit_result);
        assert_eq!(base_trace.schema(), glmia_trace::SCHEMA_VERSION);
        assert_eq!(explicit_trace.schema(), glmia_trace::SCHEMA_VERSION);
        assert_eq!(
            serde_json::to_string(base_trace.events()).unwrap(),
            serde_json::to_string(explicit_trace.events()).unwrap(),
            "an explicit omniscient attacker must not change a single byte"
        );
    }

    #[test]
    fn defended_runs_emit_a_threat_record_with_the_omniscient_attacker() {
        use glmia_gossip::Defense;
        let config = quick(20).with_defense(Defense::Clipping { limit: 1.0 });
        let (_, trace) = run_experiment_traced(&config).unwrap();
        let threat = trace
            .events()
            .iter()
            .find_map(|e| match e {
                glmia_trace::TraceEvent::Threat(t) => Some(t.clone()),
                _ => None,
            })
            .expect("defended run emits a threat record");
        assert_eq!(threat.attacker, "omniscient");
        assert_eq!(threat.defense.as_deref(), Some("clip:1"));
        assert_eq!(threat.observed_nodes, config.nodes());
        assert_eq!(trace.schema(), glmia_trace::THREAT_SCHEMA_VERSION);
    }

    #[test]
    fn coalition_attacker_restricts_and_round_trips_through_the_trace() {
        let attacker = AttackerModel::Coalition {
            members: vec![0, 1, 2],
        };
        let config = quick(21).with_attacker(attacker.clone());
        let (result, trace) = run_experiment_traced(&config).unwrap();
        let threat = trace
            .events()
            .iter()
            .find_map(|e| match e {
                glmia_trace::TraceEvent::Threat(t) => Some(t.clone()),
                _ => None,
            })
            .expect("coalition run emits a threat record");
        assert_eq!(threat.attacker, attacker.to_string());
        assert_eq!(
            threat.attacker.parse::<AttackerModel>().unwrap(),
            attacker.normalized()
        );
        assert!(
            threat.observed_nodes < config.nodes(),
            "members are excluded"
        );
        let scored: std::collections::BTreeSet<usize> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                glmia_trace::TraceEvent::NodeEval(r) => Some(r.node),
                _ => None,
            })
            .collect();
        assert!(scored.is_disjoint(&[0, 1, 2].into_iter().collect()));
        assert_eq!(result.rounds.len(), config.rounds());
    }

    #[test]
    fn cumulative_lambda2_contracts_over_rounds() {
        let (_, trace) = run_experiment_traced(&quick(16).with_rounds(6)).unwrap();
        let cumulative: Vec<f64> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                glmia_trace::TraceEvent::Mixing(m) => Some(m.lambda2_cumulative),
                _ => None,
            })
            .collect();
        assert_eq!(cumulative.len(), 6);
        assert!(
            cumulative[5] <= cumulative[0] + 1e-9,
            "product contraction must not grow: {cumulative:?}"
        );
    }

    #[test]
    fn disabling_the_mixing_trace_drops_only_mixing_records() {
        let config = quick(17);
        let (with_result, with_trace) = run_experiment_traced(&config).unwrap();
        let (without_result, without_trace) =
            run_experiment_traced(&config.clone().with_mixing_trace(false)).unwrap();
        assert_eq!(
            with_result, without_result,
            "observability knob must not change results"
        );
        let count = |trace: &RunTrace| {
            trace
                .events()
                .iter()
                .filter(|e| matches!(e, glmia_trace::TraceEvent::Mixing(_)))
                .count()
        };
        assert_eq!(count(&with_trace), config.rounds());
        assert_eq!(count(&without_trace), 0);
        assert_eq!(with_trace.totals(), without_trace.totals());
    }
}

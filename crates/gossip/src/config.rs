//! Simulation configuration.

use serde::{Deserialize, Serialize};

use crate::{Defense, FaultPlan, GossipError, LrSchedule};

/// Which gossip-learning protocol the nodes run.
///
/// [`BaseGossip`](ProtocolKind::BaseGossip) and [`Samo`](ProtocolKind::Samo)
/// are the paper's Algorithms 1 and 2. SAMO changes *two* things at once
/// relative to Base Gossip — it defers merging to wake-up (merge-once) and
/// it disseminates to every neighbor (send-all). The two hybrid variants
/// decompose that change so ablations can attribute the privacy gain to
/// each mechanism separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Algorithm 1: pairwise merge on receive, send to one random neighbor
    /// on wake.
    BaseGossip,
    /// Algorithm 2 (*send-all-merge-once*): buffer on receive; on wake merge
    /// the whole buffer, train, and send to every neighbor.
    Samo,
    /// Hybrid ablation (*send-one-merge-once*): buffer on receive and merge
    /// at wake-up like SAMO, but send to only one random neighbor like Base
    /// Gossip. Isolates the merge-once mechanism.
    SendOneMergeOnce,
    /// Hybrid ablation (*send-all-merge-each*): pairwise merge + local
    /// update on every receive like Base Gossip, but send to every neighbor
    /// like SAMO. Isolates the send-all mechanism.
    SendAllMergeEach,
}

impl ProtocolKind {
    /// All protocol variants (the paper's two plus the two decomposition
    /// hybrids).
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::BaseGossip,
        ProtocolKind::Samo,
        ProtocolKind::SendOneMergeOnce,
        ProtocolKind::SendAllMergeEach,
    ];

    /// Whether received models are buffered until wake-up (merge-once)
    /// rather than merged immediately.
    #[must_use]
    pub fn merges_once(self) -> bool {
        matches!(self, ProtocolKind::Samo | ProtocolKind::SendOneMergeOnce)
    }

    /// Whether the node disseminates to all neighbors (send-all) rather
    /// than one random neighbor.
    #[must_use]
    pub fn sends_all(self) -> bool {
        matches!(self, ProtocolKind::Samo | ProtocolKind::SendAllMergeEach)
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolKind::BaseGossip => f.write_str("base-gossip"),
            ProtocolKind::Samo => f.write_str("samo"),
            ProtocolKind::SendOneMergeOnce => f.write_str("send-one-merge-once"),
            ProtocolKind::SendAllMergeEach => f.write_str("send-all-merge-each"),
        }
    }
}

impl std::str::FromStr for ProtocolKind {
    type Err = String;

    /// Accepts the CLI short names and the `Display` forms.
    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw {
            "base" | "base-gossip" => Ok(ProtocolKind::BaseGossip),
            "samo" | "send-all-merge-once" => Ok(ProtocolKind::Samo),
            "somo" | "send-one-merge-once" => Ok(ProtocolKind::SendOneMergeOnce),
            "same" | "send-all-merge-each" => Ok(ProtocolKind::SendAllMergeEach),
            other => Err(format!(
                "unknown protocol '{other}' (expected base|samo|somo|same)"
            )),
        }
    }
}

/// Whether the communication graph evolves during the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyMode {
    /// The initial k-regular graph never changes.
    Static,
    /// A waking node first swaps positions with a random neighbor
    /// (PeerSwap, §2.4).
    Dynamic,
}

impl std::fmt::Display for TopologyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyMode::Static => f.write_str("static"),
            TopologyMode::Dynamic => f.write_str("dynamic"),
        }
    }
}

impl std::str::FromStr for TopologyMode {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw {
            "static" => Ok(TopologyMode::Static),
            "dynamic" => Ok(TopologyMode::Dynamic),
            other => Err(format!(
                "unknown topology '{other}' (expected static|dynamic)"
            )),
        }
    }
}

/// Configuration of a gossip-learning simulation.
///
/// Defaults mirror the paper's setup (§3.1): 100 ticks per round, wake
/// period `N(100, 100)` (σ = 10 ticks), no message loss, one local epoch,
/// batch size 16.
///
/// # Examples
///
/// ```
/// use glmia_gossip::{ProtocolKind, SimConfig, TopologyMode};
///
/// let config = SimConfig::new(ProtocolKind::BaseGossip, TopologyMode::Static)
///     .with_rounds(50)
///     .with_local_epochs(3)
///     .with_learning_rate(0.01)
///     .with_momentum(0.9)
///     .with_weight_decay(5e-4);
/// assert_eq!(config.rounds(), 50);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    protocol: ProtocolKind,
    topology_mode: TopologyMode,
    rounds: usize,
    ticks_per_round: u64,
    wake_mean: f64,
    wake_std: f64,
    message_latency: u64,
    drop_probability: f64,
    local_epochs: usize,
    batch_size: usize,
    learning_rate: f32,
    momentum: f32,
    weight_decay: f32,
    defense: Option<Defense>,
    lr_schedule: LrSchedule,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    fault: Option<FaultPlan>,
}

impl SimConfig {
    /// Creates a config with the paper's defaults.
    #[must_use]
    pub fn new(protocol: ProtocolKind, topology_mode: TopologyMode) -> Self {
        Self {
            protocol,
            topology_mode,
            rounds: 10,
            ticks_per_round: 100,
            wake_mean: 100.0,
            wake_std: 10.0,
            message_latency: 1,
            drop_probability: 0.0,
            local_epochs: 1,
            batch_size: 16,
            learning_rate: 0.01,
            momentum: 0.0,
            weight_decay: 5e-4,
            defense: None,
            lr_schedule: LrSchedule::Constant,
            fault: None,
        }
    }

    /// Sets the number of communication rounds to simulate. Must be
    /// positive (checked by [`validate`](Self::validate)).
    #[must_use]
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the number of ticks per communication round. Must be positive
    /// (checked by [`validate`](Self::validate)).
    #[must_use]
    pub fn with_ticks_per_round(mut self, ticks: u64) -> Self {
        self.ticks_per_round = ticks;
        self
    }

    /// Sets the wake-period distribution `N(mean, std²)` in ticks. The
    /// mean must be positive and the std non-negative (checked by
    /// [`validate`](Self::validate)).
    #[must_use]
    pub fn with_wake_distribution(mut self, mean: f64, std: f64) -> Self {
        self.wake_mean = mean;
        self.wake_std = std;
        self
    }

    /// Sets the message delivery latency in ticks.
    #[must_use]
    pub fn with_message_latency(mut self, ticks: u64) -> Self {
        self.message_latency = ticks;
        self
    }

    /// Sets the probability that a sent model is silently dropped
    /// (failure injection). Must be in `[0, 1)` (checked by
    /// [`validate`](Self::validate)).
    #[must_use]
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p;
        self
    }

    /// Sets the number of local epochs run per update (Table 2). Must be
    /// positive (checked by [`validate`](Self::validate)).
    #[must_use]
    pub fn with_local_epochs(mut self, epochs: usize) -> Self {
        self.local_epochs = epochs;
        self
    }

    /// Sets the minibatch size for local SGD. Must be positive (checked
    /// by [`validate`](Self::validate)).
    #[must_use]
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch;
        self
    }

    /// Sets the SGD learning rate. Must be finite and positive (checked
    /// by [`validate`](Self::validate)).
    #[must_use]
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the SGD momentum. Must be in `[0, 1)` (checked by
    /// [`validate`](Self::validate)).
    #[must_use]
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets the SGD weight decay. Must be finite and non-negative
    /// (checked by [`validate`](Self::validate)).
    #[must_use]
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Attaches a model-perturbation defense applied to outgoing models.
    #[must_use]
    pub fn with_defense(mut self, defense: Defense) -> Self {
        self.defense = Some(defense);
        self
    }

    /// Sets the learning-rate schedule over rounds (default:
    /// [`LrSchedule::Constant`], the paper's setup).
    #[must_use]
    pub fn with_lr_schedule(mut self, schedule: LrSchedule) -> Self {
        self.lr_schedule = schedule;
        self
    }

    /// Attaches a fault-injection plan (node churn, per-link latency,
    /// per-link drops). An [inert](FaultPlan::is_inert) plan leaves the
    /// run byte-identical to one with no plan at all.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Checks every field against its documented constraint, returning
    /// the first violation. Called by
    /// [`Simulation::new`](crate::Simulation::new), so a bad config is
    /// reported as a typed error before any work starts rather than as a
    /// setter panic.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError`] naming the offending field.
    pub fn validate(&self) -> Result<(), GossipError> {
        if self.rounds == 0 {
            return Err(GossipError::new("rounds must be positive"));
        }
        if self.ticks_per_round == 0 {
            return Err(GossipError::new("ticks_per_round must be positive"));
        }
        if self.wake_mean <= 0.0 || !self.wake_mean.is_finite() {
            return Err(GossipError::new("wake mean must be positive"));
        }
        if self.wake_std < 0.0 || !self.wake_std.is_finite() {
            return Err(GossipError::new("wake std must be non-negative"));
        }
        if !self.drop_probability.is_finite() || !(0.0..1.0).contains(&self.drop_probability) {
            return Err(GossipError::new("drop probability must be in [0, 1)"));
        }
        if self.local_epochs == 0 {
            return Err(GossipError::new("local_epochs must be positive"));
        }
        if self.batch_size == 0 {
            return Err(GossipError::new("batch_size must be positive"));
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(GossipError::new("learning rate must be positive"));
        }
        if !self.momentum.is_finite() || !(0.0..1.0).contains(&self.momentum) {
            return Err(GossipError::new("momentum must be in [0, 1)"));
        }
        if !self.weight_decay.is_finite() || self.weight_decay < 0.0 {
            return Err(GossipError::new("weight decay must be non-negative"));
        }
        if let Some(plan) = &self.fault {
            plan.validate()?;
        }
        Ok(())
    }

    /// The protocol.
    #[must_use]
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// The topology mode.
    #[must_use]
    pub fn topology_mode(&self) -> TopologyMode {
        self.topology_mode
    }

    /// Communication rounds to simulate.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Ticks per round.
    #[must_use]
    pub fn ticks_per_round(&self) -> u64 {
        self.ticks_per_round
    }

    /// Mean of the wake-period distribution.
    #[must_use]
    pub fn wake_mean(&self) -> f64 {
        self.wake_mean
    }

    /// Standard deviation of the wake-period distribution.
    #[must_use]
    pub fn wake_std(&self) -> f64 {
        self.wake_std
    }

    /// Message latency in ticks.
    #[must_use]
    pub fn message_latency(&self) -> u64 {
        self.message_latency
    }

    /// Message drop probability.
    #[must_use]
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// Local epochs per update.
    #[must_use]
    pub fn local_epochs(&self) -> usize {
        self.local_epochs
    }

    /// Minibatch size.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// SGD learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// SGD momentum.
    #[must_use]
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// SGD weight decay.
    #[must_use]
    pub fn weight_decay(&self) -> f32 {
        self.weight_decay
    }

    /// The configured defense, if any.
    #[must_use]
    pub fn defense(&self) -> Option<&Defense> {
        self.defense.as_ref()
    }

    /// The learning-rate schedule.
    #[must_use]
    pub fn lr_schedule(&self) -> LrSchedule {
        self.lr_schedule
    }

    /// The attached fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChurnConfig, LatencyDist};

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::new(ProtocolKind::Samo, TopologyMode::Static);
        assert_eq!(c.ticks_per_round(), 100);
        assert_eq!(c.wake_mean(), 100.0);
        assert_eq!(c.wake_std(), 10.0);
        assert_eq!(c.drop_probability(), 0.0);
        assert!(c.defense().is_none());
    }

    #[test]
    fn builder_chain_applies() {
        let c = SimConfig::new(ProtocolKind::BaseGossip, TopologyMode::Dynamic)
            .with_rounds(7)
            .with_ticks_per_round(50)
            .with_wake_distribution(60.0, 5.0)
            .with_message_latency(3)
            .with_drop_probability(0.1)
            .with_local_epochs(4)
            .with_batch_size(8)
            .with_learning_rate(0.05)
            .with_momentum(0.9)
            .with_weight_decay(1e-4);
        assert_eq!(c.rounds(), 7);
        assert_eq!(c.ticks_per_round(), 50);
        assert_eq!(c.wake_mean(), 60.0);
        assert_eq!(c.message_latency(), 3);
        assert_eq!(c.drop_probability(), 0.1);
        assert_eq!(c.local_epochs(), 4);
        assert_eq!(c.batch_size(), 8);
        assert_eq!(c.learning_rate(), 0.05);
        assert_eq!(c.momentum(), 0.9);
        assert_eq!(c.weight_decay(), 1e-4);
    }

    #[test]
    fn zero_rounds_is_a_validation_error() {
        let err = SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
            .with_rounds(0)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("rounds must be positive"));
    }

    #[test]
    fn bad_drop_probability_is_a_validation_error() {
        let err = SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
            .with_drop_probability(1.0)
            .validate()
            .unwrap_err();
        assert!(err
            .to_string()
            .contains("drop probability must be in [0, 1)"));
    }

    #[test]
    fn validate_reports_the_first_violation_of_each_field() {
        let base = || SimConfig::new(ProtocolKind::Samo, TopologyMode::Static);
        let cases: Vec<(SimConfig, &str)> = vec![
            (base().with_ticks_per_round(0), "ticks_per_round"),
            (base().with_wake_distribution(0.0, 1.0), "wake mean"),
            (base().with_wake_distribution(100.0, -1.0), "wake std"),
            (base().with_drop_probability(f64::NAN), "drop probability"),
            (base().with_local_epochs(0), "local_epochs"),
            (base().with_batch_size(0), "batch_size"),
            (base().with_learning_rate(0.0), "learning rate"),
            (base().with_momentum(1.0), "momentum"),
            (base().with_weight_decay(-1.0), "weight decay"),
            (
                base().with_fault_plan(FaultPlan::none().with_link_drop(2.0)),
                "link drop",
            ),
        ];
        for (config, needle) in cases {
            let err = config.validate().unwrap_err().to_string();
            assert!(err.contains(needle), "{needle:?} missing from {err:?}");
        }
    }

    #[test]
    fn valid_configs_pass_validation() {
        assert!(SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
            .validate()
            .is_ok());
        assert!(
            SimConfig::new(ProtocolKind::BaseGossip, TopologyMode::Dynamic)
                .with_fault_plan(
                    FaultPlan::none()
                        .with_churn(ChurnConfig::new(0.1))
                        .with_latency(LatencyDist::Uniform { min: 1, max: 8 })
                        .with_link_drop(0.05)
                )
                .validate()
                .is_ok()
        );
    }

    #[test]
    fn fault_plan_round_trips_through_the_builder() {
        let plan = FaultPlan::none().with_churn(ChurnConfig::new(0.2));
        let c = SimConfig::new(ProtocolKind::Samo, TopologyMode::Static).with_fault_plan(plan);
        assert_eq!(c.fault_plan(), Some(&plan));
        assert!(SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
            .fault_plan()
            .is_none());
    }

    #[test]
    fn display_names() {
        assert_eq!(ProtocolKind::BaseGossip.to_string(), "base-gossip");
        assert_eq!(ProtocolKind::Samo.to_string(), "samo");
        assert_eq!(TopologyMode::Static.to_string(), "static");
        assert_eq!(TopologyMode::Dynamic.to_string(), "dynamic");
    }
}

//! Per-node simulation state.

use glmia_data::Dataset;
use glmia_nn::{Mlp, Sgd};
use rand::rngs::StdRng;

/// One gossip participant: its current model, optimizer state, SAMO buffer
/// and private randomness.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// The node's current model θᵢ.
    pub model: Mlp,
    /// Long-lived optimizer (momentum persists across merges).
    pub opt: Sgd,
    /// SAMO incoming-model buffer Θᵢ \ {θᵢ} — `(sender, flat params)`
    /// pairs awaiting the next wake-up merge. Keyed by sender so the merge
    /// can drain in sender order regardless of delivery interleaving.
    pub buffer: Vec<(usize, Vec<f32>)>,
    /// Fixed wake period Δᵢ in ticks (drawn once at startup, §3.1).
    pub wake_period: u64,
    /// The most recent outgoing model copy (post-defense); `None` until the
    /// node first sends.
    pub last_shared: Option<Vec<f32>>,
    /// Local training shard Dᵢ,train.
    pub train: Dataset,
    /// Node-private RNG: neighbor choice, shuffling, defense noise, drops.
    pub rng: StdRng,
}

impl Node {
    /// Runs `local_epochs` epochs of mini-batch SGD on the node's shard.
    /// Returns how many epochs ran (0 when the shard is empty).
    ///
    /// Takes the two scalar hyperparameters instead of a full
    /// [`SimConfig`](crate::SimConfig) so the caller's hot loop needs no
    /// config clone.
    pub fn local_update(&mut self, local_epochs: usize, batch_size: usize) -> u64 {
        if self.train.is_empty() {
            return 0;
        }
        for _ in 0..local_epochs {
            self.model.train_epoch(
                self.train.features(),
                self.train.labels(),
                batch_size,
                &mut self.opt,
                &mut self.rng,
            );
        }
        local_epochs as u64
    }

    /// Replaces the node's model parameters with the average of its buffer
    /// and its own model (SAMO line 4), clearing the buffer. No-op when the
    /// buffer is empty (|Θᵢ| = 1 in the paper's notation).
    ///
    /// The buffer is drained in ascending sender order (stable, so repeat
    /// sends from one sender keep arrival order). f32 addition is not
    /// associative, so summing in raw arrival order would make the merged
    /// model — and every downstream trace and λ₂ report — a function of
    /// event interleaving rather than of the delivered set. Sorted drain
    /// pins the reduction order to the data.
    ///
    /// Returns whether a merge happened.
    pub fn merge_buffer(&mut self) -> bool {
        if self.buffer.is_empty() {
            return false;
        }
        self.buffer.sort_by_key(|(sender, _)| *sender);
        let mut acc = self.model.flat_params();
        for (_, received) in &self.buffer {
            debug_assert_eq!(received.len(), acc.len());
            for (a, r) in acc.iter_mut().zip(received) {
                *a += r;
            }
        }
        let count = (self.buffer.len() + 1) as f32;
        for a in &mut acc {
            *a /= count;
        }
        self.model
            .load_flat(&acc)
            .expect("buffered models share the node's parameter count");
        self.buffer.clear();
        true
    }

    /// Pairwise-averages the node's model with one received model (Base
    /// Gossip line 7): `θᵢ ← (θᵢ + θⱼ) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if the received vector length mismatches the model.
    pub fn merge_pairwise(&mut self, received: &[f32]) {
        let mut acc = self.model.flat_params();
        assert_eq!(
            received.len(),
            acc.len(),
            "received model has wrong parameter count"
        );
        for (a, r) in acc.iter_mut().zip(received) {
            *a = (*a + r) / 2.0;
        }
        self.model.load_flat(&acc).expect("length checked above");
    }
}

#[cfg(test)]
mod tests {
    use super::Node;
    use glmia_data::Dataset;
    use glmia_nn::{Activation, Mlp, MlpSpec, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> MlpSpec {
        MlpSpec::new(4, &[4], 2, Activation::Relu).expect("valid spec")
    }

    fn node(seed: u64) -> Node {
        let mut rng = StdRng::seed_from_u64(seed);
        Node {
            model: Mlp::new(&spec(), &mut rng),
            opt: Sgd::new(0.05),
            buffer: Vec::new(),
            wake_period: 10,
            last_shared: None,
            train: Dataset::empty(4, 2).expect("valid dims"),
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9),
        }
    }

    /// f32 addition is not associative, so the SAMO merge must not depend
    /// on the arrival interleaving of buffered models — only on the
    /// delivered (sender, model) set. Regression test for the sorted
    /// drain in `merge_buffer`.
    #[test]
    fn merge_result_is_independent_of_arrival_order() {
        let incoming: Vec<(usize, Vec<f32>)> = (0..6u64)
            .map(|s| {
                let m = Mlp::new(&spec(), &mut StdRng::seed_from_u64(100 + s));
                (s as usize, m.flat_params())
            })
            .collect();

        let mut reversed = incoming.clone();
        reversed.reverse();
        let mut rotated = incoming.clone();
        rotated.rotate_left(2);
        let mut swapped = incoming.clone();
        swapped.swap(1, 4);

        let merged: Vec<Vec<f32>> = [incoming, reversed, rotated, swapped]
            .into_iter()
            .map(|order| {
                let mut n = node(7);
                n.buffer = order;
                assert!(n.merge_buffer(), "non-empty buffer must merge");
                assert!(n.buffer.is_empty(), "merge must drain the buffer");
                n.model.flat_params()
            })
            .collect();
        for other in &merged[1..] {
            assert_eq!(
                &merged[0], other,
                "merged parameters must be bit-identical across arrival orders"
            );
        }
    }

    /// Repeat sends from one sender keep their arrival order (stable sort),
    /// so a sender that transmits twice between wakes still merges its
    /// copies oldest-first, deterministically.
    #[test]
    fn merge_keeps_arrival_order_within_a_sender() {
        let a = Mlp::new(&spec(), &mut StdRng::seed_from_u64(201)).flat_params();
        let b = Mlp::new(&spec(), &mut StdRng::seed_from_u64(202)).flat_params();
        let mut first = node(11);
        first.buffer = vec![(3, a.clone()), (3, b.clone()), (0, b.clone())];
        assert!(first.merge_buffer());
        let mut second = node(11);
        second.buffer = vec![(0, b.clone()), (3, a), (3, b)];
        assert!(second.merge_buffer());
        assert_eq!(first.model.flat_params(), second.model.flat_params());
    }

    #[test]
    fn empty_buffer_is_a_noop() {
        let mut n = node(5);
        let before = n.model.flat_params();
        assert!(!n.merge_buffer());
        assert_eq!(n.model.flat_params(), before);
    }
}

//! Per-node simulation state.

use std::sync::Arc;

use glmia_data::Dataset;
use glmia_nn::{Mlp, Sgd};
use glmia_telemetry::{count, Instrument};
use rand::rngs::StdRng;

/// One gossip participant: its current model, optimizer state, SAMO buffer
/// and private randomness.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// The node's current model θᵢ.
    pub model: Mlp,
    /// Long-lived optimizer (momentum persists across merges).
    pub opt: Sgd,
    /// SAMO incoming-model buffer Θᵢ \ {θᵢ} — `(sender, flat params)`
    /// pairs awaiting the next wake-up merge. Keyed by sender so the merge
    /// can drain in sender order regardless of delivery interleaving.
    /// Payloads are shared (`Arc`) with the sender's outgoing copy, so
    /// buffering a delivery never clones a parameter vector.
    pub buffer: Vec<(usize, Arc<[f32]>)>,
    /// Fixed wake period Δᵢ in ticks (drawn once at startup, §3.1).
    pub wake_period: u64,
    /// The most recent outgoing model copy (post-defense); `None` until the
    /// node first sends. Shares storage with every in-flight copy of the
    /// same transmission.
    pub last_shared: Option<Arc<[f32]>>,
    /// Local training shard Dᵢ,train.
    pub train: Dataset,
    /// Node-private RNG: neighbor choice, shuffling, defense noise, drops.
    pub rng: StdRng,
    /// Monotone model version: bumped on every parameter mutation (local
    /// update, buffer merge, pairwise merge). Downstream consumers use it —
    /// via the [`flat_snapshot`](Node::flat_snapshot) cache's `Arc`
    /// identity — to skip re-processing models that have not changed.
    pub version: u64,
    /// Flat-parameter snapshot cache: `(version, params)` of the last
    /// [`flat_snapshot`](Node::flat_snapshot) call. While the version is
    /// unchanged every send and round snapshot reuses this one allocation.
    snapshot: Option<(u64, Arc<[f32]>)>,
    /// Pooled merge scratch: one long-lived buffer per node reused by every
    /// merge instead of allocating a parameter vector per merge.
    scratch: Vec<f32>,
}

impl Node {
    /// A fresh node around `model`; version 0, empty buffer, cold caches.
    pub fn new(model: Mlp, opt: Sgd, wake_period: u64, train: Dataset, rng: StdRng) -> Self {
        Self {
            model,
            opt,
            buffer: Vec::new(),
            wake_period,
            last_shared: None,
            train,
            rng,
            version: 0,
            snapshot: None,
            scratch: Vec::new(),
        }
    }

    /// Records a parameter mutation: bumps the version and drops the stale
    /// snapshot cache.
    fn touch(&mut self) {
        self.version += 1;
        self.snapshot = None;
    }

    /// The node's current flat parameters as a shared, immutable snapshot.
    ///
    /// Cached per [`version`](Node::version): repeated calls between
    /// mutations (the SAMO fan-out sends the same model to `k` neighbors;
    /// round snapshots capture idle nodes over and over) return clones of
    /// one `Arc` instead of copying the parameter vector each time.
    pub fn flat_snapshot(&mut self) -> Arc<[f32]> {
        if let Some((version, params)) = &self.snapshot {
            if *version == self.version {
                count(Instrument::GossipSnapshotHits, 1);
                return Arc::clone(params);
            }
        }
        count(Instrument::GossipSnapshotMisses, 1);
        let params: Arc<[f32]> = self.model.flat_params().into();
        self.snapshot = Some((self.version, Arc::clone(&params)));
        params
    }

    /// Runs `local_epochs` epochs of mini-batch SGD on the node's shard.
    /// Returns how many epochs ran (0 when the shard is empty).
    ///
    /// Takes the two scalar hyperparameters instead of a full
    /// [`SimConfig`](crate::SimConfig) so the caller's hot loop needs no
    /// config clone.
    pub fn local_update(&mut self, local_epochs: usize, batch_size: usize) -> u64 {
        if self.train.is_empty() {
            return 0;
        }
        for _ in 0..local_epochs {
            self.model.train_epoch(
                self.train.features(),
                self.train.labels(),
                batch_size,
                &mut self.opt,
                &mut self.rng,
            );
        }
        self.touch();
        local_epochs as u64
    }

    /// Replaces the node's model parameters with the average of its buffer
    /// and its own model (SAMO line 4), clearing the buffer. No-op when the
    /// buffer is empty (|Θᵢ| = 1 in the paper's notation).
    ///
    /// The buffer is drained in ascending sender order (stable, so repeat
    /// sends from one sender keep arrival order). f32 addition is not
    /// associative, so summing in raw arrival order would make the merged
    /// model — and every downstream trace and λ₂ report — a function of
    /// event interleaving rather than of the delivered set. Sorted drain
    /// pins the reduction order to the data.
    ///
    /// Returns whether a merge happened.
    pub fn merge_buffer(&mut self) -> bool {
        if self.buffer.is_empty() {
            return false;
        }
        self.buffer.sort_by_key(|(sender, _)| *sender);
        let mut acc = std::mem::take(&mut self.scratch);
        self.model.flat_params_into(&mut acc);
        for (_, received) in &self.buffer {
            debug_assert_eq!(received.len(), acc.len());
            for (a, r) in acc.iter_mut().zip(received.iter()) {
                *a += r;
            }
        }
        let count = (self.buffer.len() + 1) as f32;
        for a in &mut acc {
            *a /= count;
        }
        self.model
            .load_flat(&acc)
            .expect("buffered models share the node's parameter count");
        self.scratch = acc;
        self.buffer.clear();
        self.touch();
        true
    }

    /// Pairwise-averages the node's model with one received model (Base
    /// Gossip line 7): `θᵢ ← (θᵢ + θⱼ) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if the received vector length mismatches the model.
    pub fn merge_pairwise(&mut self, received: &[f32]) {
        let mut acc = std::mem::take(&mut self.scratch);
        self.model.flat_params_into(&mut acc);
        assert_eq!(
            received.len(),
            acc.len(),
            "received model has wrong parameter count"
        );
        for (a, r) in acc.iter_mut().zip(received) {
            *a = (*a + r) / 2.0;
        }
        self.model.load_flat(&acc).expect("length checked above");
        self.scratch = acc;
        self.touch();
    }
}

#[cfg(test)]
mod tests {
    use super::{Arc, Node};
    use glmia_data::Dataset;
    use glmia_nn::{Activation, Mlp, MlpSpec, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> MlpSpec {
        MlpSpec::new(4, &[4], 2, Activation::Relu).expect("valid spec")
    }

    fn node(seed: u64) -> Node {
        let mut rng = StdRng::seed_from_u64(seed);
        Node::new(
            Mlp::new(&spec(), &mut rng),
            Sgd::new(0.05),
            10,
            Dataset::empty(4, 2).expect("valid dims"),
            StdRng::seed_from_u64(seed ^ 0x9e37_79b9),
        )
    }

    /// f32 addition is not associative, so the SAMO merge must not depend
    /// on the arrival interleaving of buffered models — only on the
    /// delivered (sender, model) set. Regression test for the sorted
    /// drain in `merge_buffer`.
    #[test]
    fn merge_result_is_independent_of_arrival_order() {
        let incoming: Vec<(usize, Arc<[f32]>)> = (0..6u64)
            .map(|s| {
                let m = Mlp::new(&spec(), &mut StdRng::seed_from_u64(100 + s));
                (s as usize, m.flat_params().into())
            })
            .collect();

        let mut reversed = incoming.clone();
        reversed.reverse();
        let mut rotated = incoming.clone();
        rotated.rotate_left(2);
        let mut swapped = incoming.clone();
        swapped.swap(1, 4);

        let merged: Vec<Vec<f32>> = [incoming, reversed, rotated, swapped]
            .into_iter()
            .map(|order| {
                let mut n = node(7);
                n.buffer = order;
                assert!(n.merge_buffer(), "non-empty buffer must merge");
                assert!(n.buffer.is_empty(), "merge must drain the buffer");
                n.model.flat_params()
            })
            .collect();
        for other in &merged[1..] {
            assert_eq!(
                &merged[0], other,
                "merged parameters must be bit-identical across arrival orders"
            );
        }
    }

    /// Repeat sends from one sender keep their arrival order (stable sort),
    /// so a sender that transmits twice between wakes still merges its
    /// copies oldest-first, deterministically.
    #[test]
    fn merge_keeps_arrival_order_within_a_sender() {
        let a: Arc<[f32]> = Mlp::new(&spec(), &mut StdRng::seed_from_u64(201))
            .flat_params()
            .into();
        let b: Arc<[f32]> = Mlp::new(&spec(), &mut StdRng::seed_from_u64(202))
            .flat_params()
            .into();
        let mut first = node(11);
        first.buffer = vec![
            (3, Arc::clone(&a)),
            (3, Arc::clone(&b)),
            (0, Arc::clone(&b)),
        ];
        assert!(first.merge_buffer());
        let mut second = node(11);
        second.buffer = vec![(0, Arc::clone(&b)), (3, a), (3, b)];
        assert!(second.merge_buffer());
        assert_eq!(first.model.flat_params(), second.model.flat_params());
    }

    #[test]
    fn empty_buffer_is_a_noop() {
        let mut n = node(5);
        let before = n.model.flat_params();
        assert!(!n.merge_buffer());
        assert_eq!(n.model.flat_params(), before);
    }

    /// The flat-snapshot cache hands out one shared allocation until a
    /// mutation bumps the version, then refreshes.
    #[test]
    fn flat_snapshot_is_shared_until_a_mutation() {
        let mut n = node(9);
        let first = n.flat_snapshot();
        let second = n.flat_snapshot();
        assert!(
            Arc::ptr_eq(&first, &second),
            "unchanged model must reuse the snapshot allocation"
        );
        assert_eq!(&first[..], &n.model.flat_params()[..]);

        let peer: Arc<[f32]> = Mlp::new(&spec(), &mut StdRng::seed_from_u64(300))
            .flat_params()
            .into();
        let version_before = n.version;
        n.merge_pairwise(&peer);
        assert!(n.version > version_before, "merges must bump the version");
        let third = n.flat_snapshot();
        assert!(
            !Arc::ptr_eq(&first, &third),
            "mutation must invalidate the cached snapshot"
        );
        assert_eq!(&third[..], &n.model.flat_params()[..]);
    }

    /// Buffer merges bump the version exactly once, and no-op merges not
    /// at all — the monotone counter downstream dedup relies on.
    #[test]
    fn version_counts_mutations_monotonically() {
        let mut n = node(13);
        assert_eq!(n.version, 0);
        assert!(!n.merge_buffer());
        assert_eq!(n.version, 0, "no-op merge must not bump");
        let m: Arc<[f32]> = Mlp::new(&spec(), &mut StdRng::seed_from_u64(301))
            .flat_params()
            .into();
        n.buffer = vec![(1, m)];
        assert!(n.merge_buffer());
        assert_eq!(n.version, 1);
    }
}

//! Per-node simulation state.

use glmia_data::Dataset;
use glmia_nn::{Mlp, Sgd};
use rand::rngs::StdRng;

/// One gossip participant: its current model, optimizer state, SAMO buffer
/// and private randomness.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// The node's current model θᵢ.
    pub model: Mlp,
    /// Long-lived optimizer (momentum persists across merges).
    pub opt: Sgd,
    /// SAMO incoming-model buffer Θᵢ \ {θᵢ} — received flat parameter
    /// vectors awaiting the next wake-up merge.
    pub buffer: Vec<Vec<f32>>,
    /// Fixed wake period Δᵢ in ticks (drawn once at startup, §3.1).
    pub wake_period: u64,
    /// The most recent outgoing model copy (post-defense); `None` until the
    /// node first sends.
    pub last_shared: Option<Vec<f32>>,
    /// Local training shard Dᵢ,train.
    pub train: Dataset,
    /// Node-private RNG: neighbor choice, shuffling, defense noise, drops.
    pub rng: StdRng,
}

impl Node {
    /// Runs `local_epochs` epochs of mini-batch SGD on the node's shard.
    /// Returns how many epochs ran (0 when the shard is empty).
    ///
    /// Takes the two scalar hyperparameters instead of a full
    /// [`SimConfig`](crate::SimConfig) so the caller's hot loop needs no
    /// config clone.
    pub fn local_update(&mut self, local_epochs: usize, batch_size: usize) -> u64 {
        if self.train.is_empty() {
            return 0;
        }
        for _ in 0..local_epochs {
            self.model.train_epoch(
                self.train.features(),
                self.train.labels(),
                batch_size,
                &mut self.opt,
                &mut self.rng,
            );
        }
        local_epochs as u64
    }

    /// Replaces the node's model parameters with the average of its buffer
    /// and its own model (SAMO line 4), clearing the buffer. No-op when the
    /// buffer is empty (|Θᵢ| = 1 in the paper's notation).
    ///
    /// Returns whether a merge happened.
    pub fn merge_buffer(&mut self) -> bool {
        if self.buffer.is_empty() {
            return false;
        }
        let mut acc = self.model.flat_params();
        for received in &self.buffer {
            debug_assert_eq!(received.len(), acc.len());
            for (a, r) in acc.iter_mut().zip(received) {
                *a += r;
            }
        }
        let count = (self.buffer.len() + 1) as f32;
        for a in &mut acc {
            *a /= count;
        }
        self.model
            .load_flat(&acc)
            .expect("buffered models share the node's parameter count");
        self.buffer.clear();
        true
    }

    /// Pairwise-averages the node's model with one received model (Base
    /// Gossip line 7): `θᵢ ← (θᵢ + θⱼ) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if the received vector length mismatches the model.
    pub fn merge_pairwise(&mut self, received: &[f32]) {
        let mut acc = self.model.flat_params();
        assert_eq!(
            received.len(),
            acc.len(),
            "received model has wrong parameter count"
        );
        for (a, r) in acc.iter_mut().zip(received) {
            *a = (*a + r) / 2.0;
        }
        self.model.load_flat(&acc).expect("length checked above");
    }
}

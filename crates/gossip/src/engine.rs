//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use glmia_data::Federation;
use glmia_dist::Normal;
use glmia_graph::Topology;
use glmia_nn::{Mlp, MlpSpec, Sgd};
use glmia_telemetry::{count, gauge_set, observe, Gauge, Histogram, Instrument};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::FaultState;
use crate::node::Node;
use crate::observer::{
    DeliverEvent, FaultEvent, FaultKind, MergeEvent, SendEvent, SimObserver, UpdateEvent,
};
use crate::{
    GossipError, NodeStats, ProtocolKind, RoundSnapshot, SimConfig, SimResult, TopologyMode,
};

/// A scheduled event, ordered by `(tick, seq)` so simultaneous events
/// process in deterministic insertion order. `seq` is unique per event, so
/// comparing only `(tick, seq)` is a total order consistent with equality.
#[derive(Debug)]
struct Event {
    tick: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.tick, self.seq) == (other.tick, other.seq)
    }
}

impl Eq for Event {}

#[derive(Debug)]
enum EventKind {
    /// Node wakes up (Algorithm 1/2 wake branch).
    Wake { node: usize },
    /// A model arrives at `to` (receive branch), sent by `from`. The
    /// payload is shared (`Arc`) with the sender's `last_shared` copy and
    /// with every other in-flight delivery of the same transmission, so
    /// fan-out never clones a parameter vector.
    Deliver {
        from: usize,
        to: usize,
        model: Arc<[f32]>,
    },
    /// Fault injection: `node` goes down (churn schedule).
    Crash { node: usize },
    /// Fault injection: `node` silently rejoins with its pre-crash state.
    Recover { node: usize },
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.tick, self.seq).cmp(&(other.tick, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A runnable gossip-learning simulation.
///
/// Built from a [`SimConfig`], a shared model architecture, a
/// [`Federation`] of per-node datasets, and an initial [`Topology`]; every
/// source of randomness derives from the single `seed`, so runs are
/// bit-reproducible.
///
/// See the [crate docs](crate) for a full example.
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    topology: Topology,
    nodes: Vec<Node>,
    queue: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    messages_sent: u64,
    messages_dropped: u64,
    local_updates: u64,
    node_stats: Vec<NodeStats>,
    /// Compiled fault schedule; `None` when the config carries no plan or
    /// an inert one, in which case every fault code path is skipped and
    /// the run is byte-identical to the pre-fault engine.
    fault: Option<FaultState>,
}

impl Simulation {
    /// Creates a simulation.
    ///
    /// Every node starts from the *same* initial model `θ₀` (drawn once
    /// with Kaiming initialization from the master seed), as in Algorithm
    /// 1/2 line 1, and from its own wake period `Δᵢ ~ N(μ, σ²)`.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError`] if the config fails
    /// [`SimConfig::validate`], the topology size differs from the
    /// federation size, the federation is empty, or a node's training shard
    /// does not match the model input width.
    pub fn new(
        config: SimConfig,
        model_spec: &MlpSpec,
        federation: &Federation,
        topology: Topology,
        seed: u64,
    ) -> Result<Self, GossipError> {
        config.validate()?;
        let n = federation.len();
        if n == 0 {
            return Err(GossipError::new("federation has no nodes"));
        }
        if topology.len() != n {
            return Err(GossipError::new(format!(
                "topology has {} nodes but federation has {n}",
                topology.len()
            )));
        }
        let mut master = StdRng::seed_from_u64(seed);
        let theta0 = Mlp::new(model_spec, &mut master);
        let wake_dist = Normal::new(config.wake_mean(), config.wake_std())
            .expect("config validated wake distribution");

        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let data = federation.node(i);
            if !data.train.is_empty() && data.train.input_dim() != model_spec.input_dim() {
                return Err(GossipError::new(format!(
                    "node {i} data width {} does not match model input {}",
                    data.train.input_dim(),
                    model_spec.input_dim()
                )));
            }
            let period = wake_dist.sample(&mut master).round().max(1.0) as u64;
            nodes.push(Node::new(
                theta0.clone(),
                Sgd::new(config.learning_rate())
                    .with_momentum(config.momentum())
                    .with_weight_decay(config.weight_decay()),
                period,
                data.train.clone(),
                StdRng::seed_from_u64(master.gen()),
            ));
        }

        // Compile the fault plan (if any) from the same experiment seed,
        // via an independent SplitMix64-derived stream: building it draws
        // nothing from `master` or the node RNGs, and an absent or inert
        // plan leaves the event queue and every RNG stream untouched.
        let fault = config
            .fault_plan()
            .filter(|plan| !plan.is_inert())
            .map(|plan| {
                FaultState::build(plan, n, config.rounds(), config.ticks_per_round(), seed)
            });

        let mut sim = Self {
            config,
            topology,
            node_stats: vec![NodeStats::default(); nodes.len()],
            nodes,
            queue: BinaryHeap::new(),
            next_seq: 0,
            messages_sent: 0,
            messages_dropped: 0,
            local_updates: 0,
            fault,
        };
        // First wake of node i lands after one full period, staggering the
        // network naturally.
        for i in 0..n {
            let first = sim.nodes[i].wake_period;
            sim.schedule(first, EventKind::Wake { node: i });
        }
        // Churn transitions are ordinary queue events, totally ordered with
        // wakes and deliveries by (tick, seq).
        let churn: Vec<(u64, u64, usize)> = sim
            .fault
            .iter()
            .flat_map(|f| {
                f.schedules
                    .iter()
                    .enumerate()
                    .flat_map(|(i, iv)| iv.iter().map(move |&(c, r)| (c, r, i)))
            })
            .collect();
        for (crash, recover, i) in churn {
            sim.schedule(crash, EventKind::Crash { node: i });
            sim.schedule(recover, EventKind::Recover { node: i });
        }
        Ok(sim)
    }

    /// The simulation's configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The current communication topology (evolves under
    /// [`TopologyMode::Dynamic`]).
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the simulation has zero nodes (never true after successful
    /// construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total models sent so far.
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Models dropped by failure injection so far.
    #[must_use]
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Total local-update epochs run so far.
    #[must_use]
    pub fn local_updates(&self) -> u64 {
        self.local_updates
    }

    /// Models currently in transit (scheduled deliveries not yet
    /// processed). After a run this counts messages sent in the final
    /// ticks whose delivery falls past the horizon; together with the
    /// delivered and dropped counts it conserves `messages_sent` exactly.
    #[must_use]
    pub fn messages_in_flight(&self) -> u64 {
        self.queue
            .iter()
            .filter(|entry| matches!(entry.0.kind, EventKind::Deliver { .. }))
            .count() as u64
    }

    /// Per-node activity counters so far.
    #[must_use]
    pub fn node_stats(&self) -> &[NodeStats] {
        &self.node_stats
    }

    /// Node `i`'s current model.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn node_model(&self, i: usize) -> &Mlp {
        &self.nodes[i].model
    }

    /// Runs the configured number of rounds, recording one
    /// [`RoundSnapshot`] per round.
    ///
    /// The per-node counters are *moved* into the result (not cloned):
    /// after `run` returns, [`node_stats`](Self::node_stats) restarts from
    /// zero and counts activity since this run only.
    pub fn run(&mut self) -> SimResult {
        let mut snapshots = Vec::with_capacity(self.config.rounds());
        self.run_with(|snap| snapshots.push(snap));
        let node_stats = std::mem::replace(
            &mut self.node_stats,
            vec![NodeStats::default(); self.nodes.len()],
        );
        SimResult {
            snapshots,
            messages_sent: self.messages_sent,
            messages_dropped: self.messages_dropped,
            local_updates: self.local_updates,
            node_stats,
        }
    }

    /// Runs the configured number of rounds, invoking `observer` with each
    /// round's snapshot instead of accumulating them (constant-memory
    /// variant for long runs).
    ///
    /// Snapshots are handed over *by value*: the observer owns each one, so
    /// accumulating ([`Simulation::run`]) or shipping them to another thread
    /// costs no extra copy.
    ///
    /// This is closure sugar over [`Simulation::run_observed`]: the closure
    /// becomes the round-end sink of the [`SimObserver`] protocol. Use
    /// `run_observed` directly to watch individual sends, merges and local
    /// updates, or to compose several observers with
    /// [`Observers`](crate::Observers).
    pub fn run_with(&mut self, observer: impl FnMut(RoundSnapshot)) {
        self.run_observed(observer);
    }

    /// Runs the configured number of rounds, reporting every simulation
    /// event to `observer` (see [`SimObserver`] for the callback protocol).
    ///
    /// Returns the observer so recorders can be read back after the run:
    ///
    /// ```
    /// # use glmia_data::{DataPreset, Federation, Partition};
    /// # use glmia_gossip::{ProtocolKind, SimConfig, Simulation, TopologyMode};
    /// # use glmia_graph::Topology;
    /// # use glmia_nn::{Activation, MlpSpec};
    /// # use rand::SeedableRng;
    /// use glmia_gossip::{Observers, SimObserver};
    ///
    /// #[derive(Default)]
    /// struct SendCounter {
    ///     sent: u64,
    /// }
    /// impl SimObserver for SendCounter {
    ///     fn on_send(&mut self, _event: glmia_gossip::SendEvent) {
    ///         self.sent += 1;
    ///     }
    /// }
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// # let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    /// # let spec = DataPreset::FashionMnistLike.spec().with_num_classes(3).with_input_dim(8);
    /// # let fed = Federation::build(&spec, 6, 20, 10, Partition::Iid, &mut rng)?;
    /// # let topo = Topology::random_regular(6, 2, &mut rng)?;
    /// # let model_spec = MlpSpec::new(8, &[16], 3, Activation::Relu)?;
    /// # let config = SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
    /// #     .with_rounds(2).with_local_epochs(1);
    /// let mut sim = Simulation::new(config, &model_spec, &fed, topo, 42)?;
    /// let mut rounds = Vec::new();
    /// let sink = |s: glmia_gossip::RoundSnapshot| rounds.push(s.round);
    /// let observers = sim.run_observed(Observers::new(SendCounter::default(), sink));
    /// let (counter, _) = observers.into_inner();
    /// assert_eq!(counter.sent, sim.messages_sent());
    /// # drop(sim);
    /// assert_eq!(rounds, vec![1, 2]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn run_observed<O: SimObserver>(&mut self, mut observer: O) -> O {
        let ticks_per_round = self.config.ticks_per_round();
        for round in 1..=self.config.rounds() {
            let horizon = round as u64 * ticks_per_round;
            observer.on_round_start(round, horizon - ticks_per_round);
            self.process_until(horizon, &mut observer);
            // Snapshots share storage with the nodes' cached flat params:
            // a node whose model did not change since the last capture (or
            // last send) contributes the same `Arc` again instead of a
            // fresh copy, which also lets downstream evaluation dedup
            // unchanged models by pointer identity.
            let mut models = Vec::with_capacity(self.nodes.len());
            let mut shared_models = Vec::with_capacity(self.nodes.len());
            for node in &mut self.nodes {
                let current = node.flat_snapshot();
                shared_models.push(
                    node.last_shared
                        .clone()
                        .unwrap_or_else(|| Arc::clone(&current)),
                );
                models.push(current);
            }
            let snapshot = RoundSnapshot {
                round,
                tick: horizon,
                models,
                shared_models,
            };
            count(Instrument::RunnerRounds, 1);
            observer.on_snapshot(&snapshot);
            observer.on_round_end(snapshot);
        }
        observer
    }

    /// Processes every event with `tick <= horizon`.
    fn process_until<O: SimObserver>(&mut self, horizon: u64, observer: &mut O) {
        // Peek the tick by reference: cloning the whole event would deep-copy
        // every `Deliver` payload (a full parameter vector) once per event.
        while self
            .queue
            .peek()
            .is_some_and(|Reverse(event)| event.tick <= horizon)
        {
            let Reverse(event) = self.queue.pop().expect("peek returned an event");
            count(Instrument::RunnerEvents, 1);
            let depth = self.queue.len() as u64;
            gauge_set(Gauge::QueueDepth, depth);
            observe(Histogram::QueueDepth, depth);
            match event.kind {
                EventKind::Wake { node } => self.on_wake(node, event.tick, observer),
                EventKind::Deliver { from, to, model } => {
                    self.on_deliver(from, to, model, event.tick, observer)
                }
                EventKind::Crash { node } => self.on_crash(node, event.tick, observer),
                EventKind::Recover { node } => self.on_recover(node, event.tick, observer),
            }
        }
    }

    fn schedule(&mut self, tick: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Event { tick, seq, kind }));
    }

    /// Fault injection: `i` crashes. It keeps its model, optimizer state
    /// and buffer (silent-rejoin semantics) but stops waking, sending and
    /// merging until its recover event fires.
    fn on_crash<O: SimObserver>(&mut self, i: usize, tick: u64, observer: &mut O) {
        if let Some(fault) = self.fault.as_mut() {
            fault.down[i] = true;
        }
        observer.on_fault(FaultEvent {
            tick,
            node: i,
            kind: FaultKind::Crash,
            peer: None,
        });
    }

    /// Fault injection: `i` rejoins with its pre-crash state. If its wake
    /// chain was broken (a wake fired while it was down), restart it one
    /// wake period after the recovery.
    fn on_recover<O: SimObserver>(&mut self, i: usize, tick: u64, observer: &mut O) {
        let mut rearm = false;
        if let Some(fault) = self.fault.as_mut() {
            fault.down[i] = false;
            if !fault.wake_armed[i] {
                fault.wake_armed[i] = true;
                rearm = true;
            }
        }
        observer.on_fault(FaultEvent {
            tick,
            node: i,
            kind: FaultKind::Recover,
            peer: None,
        });
        if rearm {
            let next = tick + self.nodes[i].wake_period;
            self.schedule(next, EventKind::Wake { node: i });
        }
    }

    /// Wake branch of Algorithms 1 and 2.
    fn on_wake<O: SimObserver>(&mut self, i: usize, tick: u64, observer: &mut O) {
        // A downed node does not wake: swallow the event and disarm the
        // wake chain so recovery knows to restart it.
        if let Some(fault) = self.fault.as_mut() {
            if fault.down[i] {
                fault.wake_armed[i] = false;
                return;
            }
        }
        // Dynamic topologies: swap with a random neighbor before anything
        // else (§2.4).
        self.node_stats[i].wakes += 1;
        if self.config.topology_mode() == TopologyMode::Dynamic {
            self.topology
                .swap_with_random_neighbor(i, &mut self.nodes[i].rng);
        }
        let protocol: ProtocolKind = self.config.protocol();
        // Merge-once protocols aggregate their buffer and train at wake-up
        // (SAMO lines 3–7).
        let buffered = self.nodes[i].buffer.len();
        if protocol.merges_once() && self.nodes[i].merge_buffer() {
            self.node_stats[i].merges += 1;
            count(Instrument::GossipMerges, 1);
            observer.on_merge(MergeEvent {
                tick,
                node: i,
                models_merged: buffered,
            });
            self.run_local_update(i, tick, observer);
        }
        // Dissemination: all neighbors (send-all) or one uniformly random
        // neighbor (Base Gossip line 3).
        if protocol.sends_all() {
            // Re-fetch the view each iteration instead of cloning it; the
            // topology is only mutated at wake-up, never inside send_model.
            for idx in 0..self.topology.view(i).len() {
                let j = self.topology.view(i)[idx];
                self.send_model(i, j, tick, observer);
            }
        } else {
            let view = self.topology.view(i);
            if !view.is_empty() {
                let j = view[self.nodes[i].rng.gen_range(0..view.len())];
                self.send_model(i, j, tick, observer);
            }
        }
        // Schedule the next wake.
        let next = tick + self.nodes[i].wake_period;
        self.schedule(next, EventKind::Wake { node: i });
    }

    /// Receive branch of Algorithms 1 and 2. Takes the delivered parameter
    /// vector by value: SAMO buffers it without another copy.
    fn on_deliver<O: SimObserver>(
        &mut self,
        from: usize,
        i: usize,
        model: Arc<[f32]>,
        tick: u64,
        observer: &mut O,
    ) {
        // Models addressed to a downed node are discarded: the crashed
        // process is not there to receive them.
        if self.fault.as_ref().is_some_and(|f| f.down[i]) {
            self.messages_dropped += 1;
            count(Instrument::GossipDrops, 1);
            observer.on_fault(FaultEvent {
                tick,
                node: i,
                kind: FaultKind::DeliveryDropped,
                peer: Some(from),
            });
            return;
        }
        self.node_stats[i].received += 1;
        count(Instrument::GossipDelivers, 1);
        let buffered = self.config.protocol().merges_once();
        observer.on_deliver(DeliverEvent {
            tick,
            from,
            to: i,
            buffered,
        });
        if buffered {
            // Store for the next wake-up merge (SAMO line 11), keyed by
            // sender so the merge drains in sender order (see
            // `Node::merge_buffer`).
            self.nodes[i].buffer.push((from, model));
        } else {
            // Pairwise aggregate + immediate local update (Base GL lines
            // 7–8).
            self.nodes[i].merge_pairwise(&model);
            self.node_stats[i].merges += 1;
            count(Instrument::GossipMerges, 1);
            observer.on_merge(MergeEvent {
                tick,
                node: i,
                models_merged: 1,
            });
            self.run_local_update(i, tick, observer);
        }
    }

    /// Runs node `i`'s local update at `tick`, applying the learning-rate
    /// schedule for the current round. Only the scalar hyperparameters are
    /// read out of the config, keeping this hot path allocation-free.
    fn run_local_update<O: SimObserver>(&mut self, i: usize, tick: u64, observer: &mut O) {
        let round = (tick / self.config.ticks_per_round()) as usize;
        let factor = self
            .config
            .lr_schedule()
            .factor_at(round, self.config.rounds());
        let lr = self.config.learning_rate() * factor;
        let local_epochs = self.config.local_epochs();
        let batch_size = self.config.batch_size();
        let node = &mut self.nodes[i];
        node.opt.set_learning_rate(lr);
        let epochs = node.local_update(local_epochs, batch_size);
        self.local_updates += epochs;
        self.node_stats[i].update_epochs += epochs;
        observer.on_local_update(UpdateEvent {
            tick,
            node: i,
            epochs,
        });
    }

    /// Sends node `i`'s current model to `j`, applying the configured
    /// defense and failure injection.
    fn send_model<O: SimObserver>(&mut self, i: usize, j: usize, tick: u64, observer: &mut O) {
        self.messages_sent += 1;
        self.node_stats[i].sent += 1;
        count(Instrument::GossipSends, 1);
        let drop_probability = match &self.fault {
            Some(fault) => fault.link_drop_probability(i, j, self.config.drop_probability()),
            None => self.config.drop_probability(),
        };
        let drop = drop_probability > 0.0 && self.nodes[i].rng.gen_bool(drop_probability);
        observer.on_send(SendEvent {
            tick,
            from: i,
            to: j,
            dropped: drop,
        });
        if drop {
            self.messages_dropped += 1;
            count(Instrument::GossipDrops, 1);
            return;
        }
        let payload: Arc<[f32]> = match self.config.defense().copied() {
            Some(defense) => {
                // Defended sends stay per-transmission: each neighbor gets
                // an independently noised copy, matching the threat model
                // (an attacker never observes two identically-noised
                // copies) and the RNG draw sequence of the dense path.
                let mut params = self.nodes[i].model.flat_params();
                defense.apply(&mut params, &mut self.nodes[i].rng);
                Arc::from(params)
            }
            // Undefended fan-out shares one immutable snapshot across all
            // k sends of a wake (the model does not change between them),
            // so a send costs an `Arc` bump instead of a parameter copy.
            None => self.nodes[i].flat_snapshot(),
        };
        self.nodes[i].last_shared = Some(Arc::clone(&payload));
        let latency = match &self.fault {
            Some(fault) => fault.link_latency(i, j, self.config.message_latency()),
            None => self.config.message_latency(),
        };
        self.schedule(
            tick + latency,
            EventKind::Deliver {
                from: i,
                to: j,
                model: payload,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glmia_data::{FeatureKind, Partition, SyntheticSpec};
    use glmia_nn::Activation;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn small_setup(n: usize, k: usize, seed: u64) -> (MlpSpec, Federation, Topology) {
        let spec = SyntheticSpec::new(3, 6, FeatureKind::Gaussian)
            .unwrap()
            .with_class_separation(1.5);
        let fed = Federation::build(&spec, n, 12, 6, Partition::Iid, &mut rng(seed)).unwrap();
        let topo = Topology::random_regular(n, k, &mut rng(seed + 1)).unwrap();
        let model_spec = MlpSpec::new(6, &[8], 3, Activation::Relu).unwrap();
        (model_spec, fed, topo)
    }

    fn config(protocol: ProtocolKind, mode: TopologyMode) -> SimConfig {
        SimConfig::new(protocol, mode)
            .with_rounds(4)
            .with_local_epochs(1)
            .with_batch_size(4)
            .with_learning_rate(0.05)
    }

    #[test]
    fn construction_validates_sizes() {
        let (spec, fed, _) = small_setup(6, 2, 0);
        let wrong_topo = Topology::ring(5).unwrap();
        assert!(Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static),
            &spec,
            &fed,
            wrong_topo,
            0
        )
        .is_err());
    }

    #[test]
    fn construction_validates_input_width() {
        let (_, fed, topo) = small_setup(6, 2, 1);
        let wrong_spec = MlpSpec::new(7, &[8], 3, Activation::Relu).unwrap();
        assert!(Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static),
            &wrong_spec,
            &fed,
            topo,
            0
        )
        .is_err());
    }

    #[test]
    fn run_produces_one_snapshot_per_round() {
        let (spec, fed, topo) = small_setup(6, 2, 2);
        let mut sim = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static),
            &spec,
            &fed,
            topo,
            7,
        )
        .unwrap();
        let result = sim.run();
        assert_eq!(result.snapshots.len(), 4);
        for (idx, snap) in result.snapshots.iter().enumerate() {
            assert_eq!(snap.round, idx + 1);
            assert_eq!(snap.tick as usize, (idx + 1) * 100);
            assert_eq!(snap.models.len(), 6);
        }
        assert!(result.messages_sent > 0);
        assert!(result.local_updates > 0);
        assert_eq!(result.messages_dropped, 0);
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let (spec, fed, topo) = small_setup(6, 2, 3);
        let mk = || {
            Simulation::new(
                config(ProtocolKind::BaseGossip, TopologyMode::Dynamic),
                &spec,
                &fed,
                topo.clone(),
                99,
            )
            .unwrap()
        };
        let a = mk().run();
        let b = mk().run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let (spec, fed, topo) = small_setup(6, 2, 4);
        let a = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static),
            &spec,
            &fed,
            topo.clone(),
            1,
        )
        .unwrap()
        .run();
        let b = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static),
            &spec,
            &fed,
            topo,
            2,
        )
        .unwrap()
        .run();
        assert_ne!(a, b);
    }

    #[test]
    fn models_change_over_training() {
        let (spec, fed, topo) = small_setup(6, 2, 5);
        let mut sim = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static),
            &spec,
            &fed,
            topo,
            11,
        )
        .unwrap();
        let initial = sim.node_model(0).flat_params();
        let result = sim.run();
        assert_ne!(result.final_snapshot().models[0][..], initial[..]);
    }

    #[test]
    fn all_nodes_start_from_theta0() {
        let (spec, fed, topo) = small_setup(6, 2, 6);
        let sim = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static),
            &spec,
            &fed,
            topo,
            13,
        )
        .unwrap();
        let first = sim.node_model(0).flat_params();
        for i in 1..sim.len() {
            assert_eq!(sim.node_model(i).flat_params(), first, "node {i} differs");
        }
    }

    #[test]
    fn samo_sends_k_models_per_wake_base_sends_one() {
        let (spec, fed, topo) = small_setup(8, 4, 7);
        let base = Simulation::new(
            config(ProtocolKind::BaseGossip, TopologyMode::Static),
            &spec,
            &fed,
            topo.clone(),
            21,
        )
        .unwrap()
        .run();
        let samo = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static),
            &spec,
            &fed,
            topo,
            21,
        )
        .unwrap()
        .run();
        // SAMO's message volume is ~k times Base Gossip's.
        assert!(
            samo.messages_sent > base.messages_sent * 3,
            "samo {} vs base {}",
            samo.messages_sent,
            base.messages_sent
        );
    }

    #[test]
    fn dynamic_mode_mutates_topology() {
        let (spec, fed, topo) = small_setup(8, 2, 8);
        let mut sim = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Dynamic),
            &spec,
            &fed,
            topo.clone(),
            17,
        )
        .unwrap();
        sim.run();
        assert_ne!(*sim.topology(), topo, "PeerSwap never fired");
        assert!(sim.topology().is_regular(2), "dynamics must stay 2-regular");
    }

    #[test]
    fn static_mode_preserves_topology() {
        let (spec, fed, topo) = small_setup(8, 2, 9);
        let mut sim = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static),
            &spec,
            &fed,
            topo.clone(),
            19,
        )
        .unwrap();
        sim.run();
        assert_eq!(*sim.topology(), topo);
    }

    #[test]
    fn hybrid_protocols_run_and_split_mechanisms() {
        let (spec, fed, topo) = small_setup(8, 4, 20);
        let mut results = std::collections::BTreeMap::new();
        for protocol in ProtocolKind::ALL {
            let result = Simulation::new(
                config(protocol, TopologyMode::Static),
                &spec,
                &fed,
                topo.clone(),
                51,
            )
            .unwrap()
            .run();
            assert_eq!(result.snapshots.len(), 4, "{protocol}");
            results.insert(protocol.to_string(), result.messages_sent);
        }
        // send-all variants send ~k× more than send-one variants.
        assert!(results["samo"] > results["send-one-merge-once"] * 3);
        assert!(results["send-all-merge-each"] > results["base-gossip"] * 3);
    }

    #[test]
    fn protocol_mechanism_flags() {
        assert!(!ProtocolKind::BaseGossip.merges_once());
        assert!(!ProtocolKind::BaseGossip.sends_all());
        assert!(ProtocolKind::Samo.merges_once());
        assert!(ProtocolKind::Samo.sends_all());
        assert!(ProtocolKind::SendOneMergeOnce.merges_once());
        assert!(!ProtocolKind::SendOneMergeOnce.sends_all());
        assert!(!ProtocolKind::SendAllMergeEach.merges_once());
        assert!(ProtocolKind::SendAllMergeEach.sends_all());
    }

    #[test]
    fn message_drops_are_counted() {
        let (spec, fed, topo) = small_setup(6, 2, 10);
        let cfg = config(ProtocolKind::Samo, TopologyMode::Static).with_drop_probability(0.5);
        let result = Simulation::new(cfg, &spec, &fed, topo, 23).unwrap().run();
        assert!(result.messages_dropped > 0);
        assert!(result.messages_dropped < result.messages_sent);
    }

    #[test]
    fn training_under_message_loss_still_progresses() {
        let (spec, fed, topo) = small_setup(6, 2, 11);
        let cfg = SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
            .with_rounds(10)
            .with_local_epochs(1)
            .with_batch_size(4)
            .with_learning_rate(0.05)
            .with_drop_probability(0.3);
        let mut sim = Simulation::new(cfg, &spec, &fed, topo, 29).unwrap();
        let result = sim.run();
        // Average global-test accuracy of final models beats chance (1/3).
        let node0 = fed.node(0);
        let model = Mlp::from_flat(&spec, &result.final_snapshot().models[0]).unwrap();
        let acc = model.accuracy(node0.train.features(), node0.train.labels());
        assert!(acc > 0.4, "accuracy under loss was {acc}");
    }

    #[test]
    fn run_with_observer_streams_rounds() {
        let (spec, fed, topo) = small_setup(6, 2, 12);
        let mut sim = Simulation::new(
            config(ProtocolKind::BaseGossip, TopologyMode::Static),
            &spec,
            &fed,
            topo,
            31,
        )
        .unwrap();
        let mut rounds = Vec::new();
        sim.run_with(|s| rounds.push(s.round));
        assert_eq!(rounds, vec![1, 2, 3, 4]);
    }

    #[test]
    fn node_stats_are_consistent_with_global_counters() {
        let (spec, fed, topo) = small_setup(8, 4, 26);
        let mut sim = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static),
            &spec,
            &fed,
            topo,
            61,
        )
        .unwrap();
        let result = sim.run();
        assert_eq!(result.node_stats.len(), 8);
        let sent: u64 = result.node_stats.iter().map(|s| s.sent).sum();
        assert_eq!(sent, result.messages_sent);
        let epochs: u64 = result.node_stats.iter().map(|s| s.update_epochs).sum();
        assert_eq!(epochs, result.local_updates);
        let received: u64 = result.node_stats.iter().map(|s| s.received).sum();
        let undropped = result.messages_sent - result.messages_dropped;
        // Models sent in the final ticks may still be in flight at the
        // horizon; everything else must have been delivered.
        assert!(received <= undropped);
        assert!(
            received + 8 * 4 >= undropped,
            "at most one last volley per node may be in flight: {received} vs {undropped}"
        );
        // Every node woke roughly once per round.
        for (i, s) in result.node_stats.iter().enumerate() {
            assert!(s.wakes >= 2, "node {i} woke only {} times", s.wakes);
            assert!(s.merges <= s.wakes, "SAMO merges happen at wake-ups");
        }
    }

    #[test]
    fn zero_wake_std_still_staggers_via_distinct_rngs() {
        let (spec, fed, topo) = small_setup(6, 2, 22);
        let cfg = SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
            .with_rounds(3)
            .with_wake_distribution(100.0, 0.0)
            .with_local_epochs(1)
            .with_batch_size(4);
        let mut sim = Simulation::new(cfg, &spec, &fed, topo, 43).unwrap();
        let result = sim.run();
        assert_eq!(result.snapshots.len(), 3);
        assert!(result.messages_sent > 0);
    }

    #[test]
    fn large_message_latency_delays_learning() {
        // With latency beyond the horizon, no model is ever delivered:
        // SAMO nodes never merge, so no local updates happen.
        let (spec, fed, topo) = small_setup(6, 2, 23);
        let cfg = SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
            .with_rounds(3)
            .with_message_latency(10_000)
            .with_local_epochs(1)
            .with_batch_size(4);
        let mut sim = Simulation::new(cfg, &spec, &fed, topo, 47).unwrap();
        let result = sim.run();
        assert!(result.messages_sent > 0);
        assert_eq!(result.local_updates, 0, "nothing delivered, nothing merged");
        // All models still equal θ₀.
        let snap = result.final_snapshot();
        assert!(snap.models.iter().all(|m| *m == snap.models[0]));
    }

    #[test]
    fn shared_models_track_last_transmission() {
        use crate::Defense;
        let (spec, fed, topo) = small_setup(6, 2, 24);
        let cfg = config(ProtocolKind::Samo, TopologyMode::Static)
            .with_defense(Defense::GaussianNoise { std: 1.0 });
        let mut sim = Simulation::new(cfg, &spec, &fed, topo, 53).unwrap();
        let result = sim.run();
        let snap = result.final_snapshot();
        // With heavy noise, transmitted copies differ from internal models.
        let differs = snap
            .models
            .iter()
            .zip(&snap.shared_models)
            .filter(|(m, s)| m != s)
            .count();
        assert!(differs > 0, "defense must perturb the shared surface");
    }

    #[test]
    fn without_defense_shared_equals_a_past_model_shape() {
        let (spec, fed, topo) = small_setup(6, 2, 25);
        let mut sim = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static),
            &spec,
            &fed,
            topo,
            59,
        )
        .unwrap();
        let result = sim.run();
        let snap = result.final_snapshot();
        assert_eq!(snap.shared_models.len(), snap.models.len());
        for shared in &snap.shared_models {
            assert_eq!(shared.len(), snap.models[0].len());
        }
    }

    #[test]
    fn lr_schedule_changes_the_run() {
        use crate::LrSchedule;
        let (spec, fed, topo) = small_setup(6, 2, 21);
        let constant = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static),
            &spec,
            &fed,
            topo.clone(),
            41,
        )
        .unwrap()
        .run();
        let warmup = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static).with_lr_schedule(LrSchedule::Warmup {
                rounds: 3,
                start_factor: 0.1,
            }),
            &spec,
            &fed,
            topo,
            41,
        )
        .unwrap()
        .run();
        assert_ne!(constant, warmup, "schedule should alter the trajectory");
    }

    #[test]
    fn observer_event_counts_match_global_counters() {
        use crate::Observers;

        #[derive(Default)]
        struct Counter {
            sends: u64,
            drops: u64,
            delivers: u64,
            merged_models: u64,
            epochs: u64,
            round_starts: Vec<usize>,
            snapshots: usize,
        }

        impl SimObserver for Counter {
            fn on_round_start(&mut self, round: usize, _tick: u64) {
                self.round_starts.push(round);
            }
            fn on_send(&mut self, event: SendEvent) {
                self.sends += 1;
                self.drops += u64::from(event.dropped);
            }
            fn on_deliver(&mut self, _event: DeliverEvent) {
                self.delivers += 1;
            }
            fn on_merge(&mut self, event: MergeEvent) {
                self.merged_models += event.models_merged as u64;
            }
            fn on_local_update(&mut self, event: UpdateEvent) {
                self.epochs += event.epochs;
            }
            fn on_snapshot(&mut self, _snapshot: &RoundSnapshot) {
                self.snapshots += 1;
            }
        }

        let (spec, fed, topo) = small_setup(6, 2, 27);
        let cfg = config(ProtocolKind::Samo, TopologyMode::Static).with_drop_probability(0.3);
        let mut sim = Simulation::new(cfg, &spec, &fed, topo, 67).unwrap();
        // Two observers watch the same run: a counter plus a closure sink.
        let mut sink_rounds = Vec::new();
        let sink = |s: RoundSnapshot| sink_rounds.push(s.round);
        let observers = sim.run_observed(Observers::new(Counter::default(), sink));
        let (counter, _) = observers.into_inner();
        assert_eq!(counter.sends, sim.messages_sent());
        assert_eq!(counter.drops, sim.messages_dropped());
        assert_eq!(counter.epochs, sim.local_updates());
        let received: u64 = sim.node_stats().iter().map(|s| s.received).sum();
        assert_eq!(counter.delivers, received);
        assert_eq!(
            counter.merged_models,
            received - sim.nodes.iter().map(|n| n.buffer.len() as u64).sum::<u64>()
        );
        assert_eq!(counter.round_starts, vec![1, 2, 3, 4]);
        assert_eq!(counter.snapshots, 4);
        assert_eq!(sink_rounds, vec![1, 2, 3, 4]);
    }

    #[test]
    fn run_observed_and_run_with_agree() {
        let (spec, fed, topo) = small_setup(6, 2, 28);
        let mk = || {
            Simulation::new(
                config(ProtocolKind::BaseGossip, TopologyMode::Static),
                &spec,
                &fed,
                topo.clone(),
                71,
            )
            .unwrap()
        };
        let mut via_with = Vec::new();
        mk().run_with(|s| via_with.push(s));
        let mut via_observed = Vec::new();
        struct Sink<'a>(&'a mut Vec<RoundSnapshot>);
        impl SimObserver for Sink<'_> {
            fn on_round_end(&mut self, snapshot: RoundSnapshot) {
                self.0.push(snapshot);
            }
        }
        mk().run_observed(Sink(&mut via_observed));
        assert_eq!(via_with, via_observed);
    }

    #[test]
    fn inert_fault_plan_is_byte_identical_to_no_plan() {
        use crate::FaultPlan;
        let (spec, fed, topo) = small_setup(6, 2, 30);
        let plain = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Dynamic),
            &spec,
            &fed,
            topo.clone(),
            73,
        )
        .unwrap()
        .run();
        let with_inert_plan = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Dynamic).with_fault_plan(FaultPlan::none()),
            &spec,
            &fed,
            topo,
            73,
        )
        .unwrap()
        .run();
        assert_eq!(plain, with_inert_plan);
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let (spec, fed, topo) = small_setup(6, 2, 31);
        let bad = config(ProtocolKind::Samo, TopologyMode::Static).with_drop_probability(1.5);
        let err = Simulation::new(bad, &spec, &fed, topo, 0).unwrap_err();
        assert!(err.to_string().contains("drop probability"));
    }

    #[test]
    fn churn_suppresses_crashed_node_activity() {
        use crate::{ChurnConfig, FaultPlan};
        use std::collections::BTreeSet;

        /// Tracks down intervals from fault events and records any
        /// send/merge/update attributed to a currently-down node.
        #[derive(Default)]
        struct ChurnWatch {
            down: BTreeSet<usize>,
            crashes: u64,
            recovers: u64,
            offline_drops: u64,
            violations: Vec<String>,
        }
        impl SimObserver for ChurnWatch {
            fn on_send(&mut self, event: SendEvent) {
                if self.down.contains(&event.from) {
                    self.violations
                        .push(format!("send from down {}", event.from));
                }
            }
            fn on_merge(&mut self, event: MergeEvent) {
                if self.down.contains(&event.node) {
                    self.violations
                        .push(format!("merge at down {}", event.node));
                }
            }
            fn on_local_update(&mut self, event: UpdateEvent) {
                if self.down.contains(&event.node) {
                    self.violations
                        .push(format!("update at down {}", event.node));
                }
            }
            fn on_fault(&mut self, event: FaultEvent) {
                match event.kind {
                    FaultKind::Crash => {
                        self.crashes += 1;
                        self.down.insert(event.node);
                    }
                    FaultKind::Recover => {
                        self.recovers += 1;
                        self.down.remove(&event.node);
                    }
                    FaultKind::DeliveryDropped => {
                        self.offline_drops += 1;
                        assert!(
                            self.down.contains(&event.node),
                            "delivery dropped at an up node"
                        );
                        assert!(event.peer.is_some(), "offline drop must name the sender");
                    }
                }
            }
        }

        let (spec, fed, topo) = small_setup(8, 4, 32);
        let cfg = SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
            .with_rounds(8)
            .with_local_epochs(1)
            .with_batch_size(4)
            .with_fault_plan(
                FaultPlan::none().with_churn(ChurnConfig::new(0.5).with_downtime(60, 180)),
            );
        let mut sim = Simulation::new(cfg, &spec, &fed, topo, 79).unwrap();
        let watch = sim.run_observed(ChurnWatch::default());
        assert!(watch.crashes > 0, "rate 0.5 over 8 rounds must crash");
        assert!(watch.recovers <= watch.crashes);
        assert_eq!(watch.violations, Vec::<String>::new());
        assert!(
            watch.offline_drops > 0,
            "SAMO at this churn level should lose deliveries to downed nodes"
        );
        assert!(sim.messages_dropped() >= watch.offline_drops);
    }

    #[test]
    fn churn_runs_conserve_messages_exactly() {
        use crate::{ChurnConfig, FaultPlan};
        let (spec, fed, topo) = small_setup(8, 4, 33);
        let cfg = config(ProtocolKind::Samo, TopologyMode::Static).with_fault_plan(
            FaultPlan::none()
                .with_churn(ChurnConfig::new(0.4))
                .with_link_drop(0.1),
        );
        let mut sim = Simulation::new(cfg, &spec, &fed, topo, 83).unwrap();
        let result = sim.run();
        let received: u64 = result.node_stats.iter().map(|s| s.received).sum();
        assert_eq!(
            result.messages_sent,
            received + result.messages_dropped + sim.messages_in_flight(),
            "sent must equal delivered + dropped + in flight"
        );
    }

    #[test]
    fn crashed_nodes_freeze_and_rejoin_with_their_pre_crash_model() {
        use crate::{ChurnConfig, FaultPlan};

        /// Records every fault transition plus the full model snapshots, so
        /// the silent-rejoin freeze can be checked after the run.
        #[derive(Default)]
        struct FreezeWatch {
            faults: Vec<FaultEvent>,
            snaps: Vec<RoundSnapshot>,
        }
        impl SimObserver for FreezeWatch {
            fn on_fault(&mut self, event: FaultEvent) {
                self.faults.push(event);
            }
            fn on_snapshot(&mut self, snapshot: &RoundSnapshot) {
                self.snaps.push(snapshot.clone());
            }
        }

        let (spec, fed, topo) = small_setup(6, 2, 34);
        let rounds = 6u64;
        let cfg = SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
            .with_rounds(rounds as usize)
            .with_local_epochs(1)
            .with_batch_size(4)
            .with_fault_plan(FaultPlan::none().with_churn(
                // High crash rate with multi-round downtime, so down windows
                // span several round boundaries.
                ChurnConfig::new(0.9).with_downtime(350, 400),
            ));
        let mut sim = Simulation::new(cfg, &spec, &fed, topo, 89).unwrap();
        let watch = sim.run_observed(FreezeWatch::default());
        assert_eq!(watch.snaps.len(), rounds as usize);

        // Rebuild each node's down windows from the event stream; a missing
        // recover means the node stayed down to the horizon.
        let horizon = rounds * 100;
        let mut down_windows: Vec<(usize, u64, u64)> = Vec::new();
        let mut open: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
        for event in &watch.faults {
            match event.kind {
                FaultKind::Crash => {
                    open.insert(event.node, event.tick);
                }
                FaultKind::Recover => {
                    let crash = open.remove(&event.node).expect("recover without crash");
                    down_windows.push((event.node, crash, event.tick));
                }
                FaultKind::DeliveryDropped => {}
            }
        }
        for (node, crash) in open {
            down_windows.push((node, crash, horizon + 1));
        }
        assert!(!down_windows.is_empty(), "rate 0.9 must crash someone");

        // A downed node neither trains nor merges, so its model must be
        // bit-identical across any two snapshots falling inside one window.
        let mut frozen_pairs = 0;
        for &(node, crash, recover) in &down_windows {
            let inside: Vec<&RoundSnapshot> = watch
                .snaps
                .iter()
                .filter(|s| s.tick > crash && s.tick < recover)
                .collect();
            for pair in inside.windows(2) {
                frozen_pairs += 1;
                assert_eq!(
                    pair[0].models[node], pair[1].models[node],
                    "node {node} changed while down in ({crash}, {recover})"
                );
            }
        }
        assert!(
            frozen_pairs > 0,
            "downtime of 350+ ticks must span at least two snapshots"
        );
    }

    #[test]
    fn fixed_link_latency_overrides_the_global_value_in_runs() {
        use crate::{FaultPlan, LatencyDist};
        let (spec, fed, topo) = small_setup(6, 2, 35);
        let fast = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static),
            &spec,
            &fed,
            topo.clone(),
            97,
        )
        .unwrap()
        .run();
        // Every link beyond the horizon: nothing is ever delivered.
        let stalled = Simulation::new(
            config(ProtocolKind::Samo, TopologyMode::Static).with_fault_plan(
                FaultPlan::none().with_latency(LatencyDist::Fixed { ticks: 10_000 }),
            ),
            &spec,
            &fed,
            topo,
            97,
        )
        .unwrap()
        .run();
        assert!(fast.local_updates > 0);
        assert_eq!(
            stalled.local_updates, 0,
            "nothing delivered, nothing merged"
        );
        assert_eq!(stalled.messages_dropped, 0);
    }

    #[test]
    fn defense_noise_is_applied_to_sent_models() {
        use crate::Defense;
        let (spec, fed, topo) = small_setup(6, 2, 13);
        // With huge noise, received models destroy convergence; just check
        // the run completes and models move.
        let cfg = config(ProtocolKind::Samo, TopologyMode::Static)
            .with_defense(Defense::GaussianNoise { std: 0.01 });
        let result = Simulation::new(cfg, &spec, &fed, topo, 37).unwrap().run();
        assert_eq!(result.snapshots.len(), 4);
    }
}

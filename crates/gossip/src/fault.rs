//! Deterministic fault injection: node churn, heterogeneous link latency,
//! and per-link drop probabilities.
//!
//! A [`FaultPlan`] describes the *adverse network* a run should face. It is
//! attached to a [`SimConfig`](crate::SimConfig) via
//! [`with_fault_plan`](crate::SimConfig::with_fault_plan) and compiled at
//! simulation start into a fixed, seed-derived schedule:
//!
//! * **Churn** — each node carries its own crash/recover timeline, drawn
//!   from a per-node RNG derived from the experiment seed with the same
//!   SplitMix64 chain the evaluation layer uses. A downed node neither
//!   wakes, sends, nor merges; models addressed to it are dropped; it
//!   rejoins silently with its pre-crash model and buffer.
//! * **Link latency** — every directed link gets its *own* delivery
//!   latency drawn once from a [`LatencyDist`] (fixed, uniform jitter, or
//!   a straggler tail), replacing the single global `message_latency`.
//! * **Link drops** — every directed link gets its own drop probability,
//!   drawn uniformly from `[0, 2·mean)` so the configured mean is the
//!   network-wide average loss rate.
//!
//! Everything is a pure function of `(plan, seed)`: link parameters come
//! from a keyed SplitMix64 hash of the endpoints and consume no runtime
//! randomness, and churn timelines are precomputed before the first event
//! fires. A plan where every knob is off ([`FaultPlan::is_inert`]) draws
//! no random numbers and schedules no events, so runs with an inert plan
//! are byte-identical to runs with no plan at all.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::GossipError;

/// Domain-separation salt for the churn schedule RNG stream.
const CHURN_SALT: u64 = 0xC4A5_4E00_F417_0001;
/// Domain-separation salt for per-link latency hashing.
const LINK_LATENCY_SALT: u64 = 0xC4A5_4E00_F417_0002;
/// Domain-separation salt for per-link drop-probability hashing.
const LINK_DROP_SALT: u64 = 0xC4A5_4E00_F417_0003;

/// The SplitMix64 finalizer (same constants as the evaluation-RNG
/// derivation in `glmia-core`), used to key fault randomness off the
/// experiment seed without touching any simulation RNG stream.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform value in `[0, 1)` keyed by `(salt, from, to)`.
fn link_unit(salt: u64, from: usize, to: usize) -> f64 {
    let key = ((from as u64) << 32) ^ (to as u64) ^ salt;
    (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// Node churn: how often nodes crash and how long they stay down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Probability that an up node crashes during any given round.
    rate: f64,
    /// Shortest downtime in ticks (inclusive).
    min_down_ticks: u64,
    /// Longest downtime in ticks (inclusive).
    max_down_ticks: u64,
}

impl ChurnConfig {
    /// Churn at `rate` crashes per node per round, with downtime drawn
    /// uniformly from half a round to two rounds (50–200 ticks at the
    /// paper's 100-tick rounds).
    #[must_use]
    pub fn new(rate: f64) -> Self {
        Self {
            rate,
            min_down_ticks: 50,
            max_down_ticks: 200,
        }
    }

    /// Sets the downtime range in ticks (inclusive on both ends).
    #[must_use]
    pub fn with_downtime(mut self, min_ticks: u64, max_ticks: u64) -> Self {
        self.min_down_ticks = min_ticks;
        self.max_down_ticks = max_ticks;
        self
    }

    /// Per-round crash probability.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Shortest downtime in ticks.
    #[must_use]
    pub fn min_down_ticks(&self) -> u64 {
        self.min_down_ticks
    }

    /// Longest downtime in ticks.
    #[must_use]
    pub fn max_down_ticks(&self) -> u64 {
        self.max_down_ticks
    }
}

/// Per-link delivery-latency model. Each directed link draws its latency
/// *once* from the distribution (keyed off the experiment seed), so a slow
/// link is consistently slow — the heterogeneity real gossip deployments
/// see, rather than per-message noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyDist {
    /// Every link delivers in exactly `ticks` ticks.
    Fixed {
        /// Delivery latency in ticks.
        ticks: u64,
    },
    /// Link latency uniform in `[min, max]` ticks.
    Uniform {
        /// Fastest link latency (inclusive).
        min: u64,
        /// Slowest link latency (inclusive).
        max: u64,
    },
    /// Most links deliver in `base` ticks; a `tail_prob` fraction are
    /// stragglers delivering in `tail` ticks.
    Straggler {
        /// Latency of a normal link.
        base: u64,
        /// Latency of a straggler link.
        tail: u64,
        /// Fraction of links that are stragglers, in `[0, 1]`.
        tail_prob: f64,
    },
}

impl LatencyDist {
    /// The latency of the directed link `from → to` under this
    /// distribution, keyed by `salt` (a seed-derived value).
    fn link_latency(&self, salt: u64, from: usize, to: usize) -> u64 {
        match *self {
            LatencyDist::Fixed { ticks } => ticks,
            LatencyDist::Uniform { min, max } => {
                let span = max.saturating_sub(min).saturating_add(1);
                min + (link_unit(salt, from, to) * span as f64) as u64
            }
            LatencyDist::Straggler {
                base,
                tail,
                tail_prob,
            } => {
                if link_unit(salt, from, to) < tail_prob {
                    tail
                } else {
                    base
                }
            }
        }
    }
}

impl std::fmt::Display for LatencyDist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatencyDist::Fixed { ticks } => write!(f, "fixed:{ticks}"),
            LatencyDist::Uniform { min, max } => write!(f, "uniform:{min}:{max}"),
            LatencyDist::Straggler {
                base,
                tail,
                tail_prob,
            } => write!(f, "straggler:{base}:{tail}:{tail_prob}"),
        }
    }
}

/// Parses the compact colon-separated spec the CLI uses, the inverse of
/// [`Display`](std::fmt::Display): `fixed:TICKS`, `uniform:MIN:MAX`, or
/// `straggler:BASE:TAIL:PROB`.
impl std::str::FromStr for LatencyDist {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        fn num<T: std::str::FromStr>(part: &str, what: &str) -> Result<T, String> {
            part.parse()
                .map_err(|_| format!("invalid {what} '{part}' in latency spec"))
        }
        let parts: Vec<&str> = s.split(':').collect();
        match parts.as_slice() {
            ["fixed", ticks] => Ok(LatencyDist::Fixed {
                ticks: num(ticks, "tick count")?,
            }),
            ["uniform", min, max] => Ok(LatencyDist::Uniform {
                min: num(min, "minimum")?,
                max: num(max, "maximum")?,
            }),
            ["straggler", base, tail, prob] => Ok(LatencyDist::Straggler {
                base: num(base, "base latency")?,
                tail: num(tail, "tail latency")?,
                tail_prob: num(prob, "tail probability")?,
            }),
            _ => Err(format!(
                "invalid latency spec '{s}' (expected fixed:TICKS, uniform:MIN:MAX \
                 or straggler:BASE:TAIL:PROB)"
            )),
        }
    }
}

/// A declarative fault model for one run: churn, link latency, link drops.
///
/// The default plan ([`FaultPlan::none`]) is *inert*: attaching it changes
/// nothing about a run, byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    #[serde(default, skip_serializing_if = "Option::is_none")]
    churn: Option<ChurnConfig>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    latency: Option<LatencyDist>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    link_drop: Option<f64>,
}

impl FaultPlan {
    /// A plan with every fault knob off (inert).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Enables node churn.
    #[must_use]
    pub fn with_churn(mut self, churn: ChurnConfig) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Replaces the global message latency with a per-link distribution.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyDist) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Enables per-link drops with the given mean probability: each
    /// directed link's own probability is drawn uniformly from
    /// `[0, 2·mean)` (capped below 1).
    #[must_use]
    pub fn with_link_drop(mut self, mean_probability: f64) -> Self {
        self.link_drop = Some(mean_probability);
        self
    }

    /// The churn configuration, if any.
    #[must_use]
    pub fn churn(&self) -> Option<&ChurnConfig> {
        self.churn.as_ref()
    }

    /// The link-latency distribution, if any.
    #[must_use]
    pub fn latency(&self) -> Option<&LatencyDist> {
        self.latency.as_ref()
    }

    /// The mean per-link drop probability, if any.
    #[must_use]
    pub fn link_drop(&self) -> Option<f64> {
        self.link_drop
    }

    /// Whether every fault knob is off. An inert plan is a true no-op:
    /// the engine treats it exactly like no plan at all.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.churn.is_none() && self.latency.is_none() && self.link_drop.is_none()
    }

    /// Checks every knob against its documented constraint, returning the
    /// first violation.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError`] naming the offending knob.
    pub fn validate(&self) -> Result<(), GossipError> {
        if let Some(churn) = &self.churn {
            if !churn.rate.is_finite() || !(0.0..1.0).contains(&churn.rate) {
                return Err(GossipError::new("churn rate must be in [0, 1)"));
            }
            if churn.min_down_ticks == 0 {
                return Err(GossipError::new("churn downtime must be at least one tick"));
            }
            if churn.min_down_ticks > churn.max_down_ticks {
                return Err(GossipError::new(
                    "churn downtime range must satisfy min <= max",
                ));
            }
        }
        if let Some(LatencyDist::Uniform { min, max }) = &self.latency {
            if min > max {
                return Err(GossipError::new(
                    "uniform latency range must satisfy min <= max",
                ));
            }
        }
        if let Some(LatencyDist::Straggler { tail_prob, .. }) = &self.latency {
            if !tail_prob.is_finite() || !(0.0..=1.0).contains(tail_prob) {
                return Err(GossipError::new(
                    "straggler tail probability must be in [0, 1]",
                ));
            }
        }
        if let Some(p) = self.link_drop {
            if !p.is_finite() || !(0.0..1.0).contains(&p) {
                return Err(GossipError::new(
                    "mean link drop probability must be in [0, 1)",
                ));
            }
        }
        Ok(())
    }
}

/// The compiled, per-run form of a [`FaultPlan`]: fixed churn timelines
/// plus seed-derived link parameters. Built once at simulation start.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    /// Whether each node is currently crashed.
    pub down: Vec<bool>,
    /// Whether each node has a pending wake event in the queue. A wake
    /// that fires while its node is down is swallowed (disarming the
    /// chain); recovery re-arms it.
    pub wake_armed: Vec<bool>,
    /// Per-node `(crash_tick, recover_tick)` intervals, ascending and
    /// disjoint.
    pub schedules: Vec<Vec<(u64, u64)>>,
    latency: Option<LatencyDist>,
    link_drop: Option<f64>,
    latency_salt: u64,
    drop_salt: u64,
}

impl FaultState {
    /// Compiles `plan` for an `n`-node run of `rounds × ticks_per_round`
    /// ticks. Churn timelines come from per-node RNGs seeded by a
    /// SplitMix64 chain over `seed`, so they are independent of every
    /// other random stream in the simulation.
    pub fn build(
        plan: &FaultPlan,
        n: usize,
        rounds: usize,
        ticks_per_round: u64,
        seed: u64,
    ) -> Self {
        let horizon = rounds as u64 * ticks_per_round;
        let schedules = match plan.churn() {
            Some(churn) => (0..n)
                .map(|i| churn_schedule(churn, i, rounds, ticks_per_round, horizon, seed))
                .collect(),
            None => vec![Vec::new(); n],
        };
        Self {
            down: vec![false; n],
            wake_armed: vec![true; n],
            schedules,
            latency: plan.latency().copied(),
            link_drop: plan.link_drop(),
            latency_salt: splitmix64(seed ^ LINK_LATENCY_SALT),
            drop_salt: splitmix64(seed ^ LINK_DROP_SALT),
        }
    }

    /// Delivery latency of the directed link `from → to`; falls back to
    /// the global latency when no distribution is configured.
    pub fn link_latency(&self, from: usize, to: usize, global: u64) -> u64 {
        match &self.latency {
            Some(dist) => dist.link_latency(self.latency_salt, from, to),
            None => global,
        }
    }

    /// Drop probability of the directed link `from → to`; falls back to
    /// the global probability when per-link drops are not configured.
    pub fn link_drop_probability(&self, from: usize, to: usize, global: f64) -> f64 {
        match self.link_drop {
            Some(mean) => (2.0 * mean * link_unit(self.drop_salt, from, to)).min(0.999),
            None => global,
        }
    }
}

/// One node's crash/recover timeline: walk the rounds, crashing an up
/// node with probability `rate` at a uniform tick inside the round, for a
/// uniform downtime in `[min_down, max_down]` ticks.
fn churn_schedule(
    churn: &ChurnConfig,
    node: usize,
    rounds: usize,
    ticks_per_round: u64,
    horizon: u64,
    seed: u64,
) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(splitmix64(
        splitmix64(seed ^ CHURN_SALT).wrapping_add(node as u64),
    ));
    let mut intervals = Vec::new();
    let mut up_from = 0u64;
    for round in 0..rounds as u64 {
        let start = round * ticks_per_round;
        if start < up_from {
            // Still down when this round begins; no fresh crash roll.
            continue;
        }
        if rng.gen_bool(churn.rate) {
            let crash = start + rng.gen_range(0..ticks_per_round);
            let down = rng.gen_range(churn.min_down_ticks..=churn.max_down_ticks);
            let recover = crash.saturating_add(down);
            if crash >= horizon {
                break;
            }
            intervals.push((crash, recover));
            up_from = recover;
        }
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert_and_valid() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn any_knob_makes_the_plan_active() {
        assert!(!FaultPlan::none()
            .with_churn(ChurnConfig::new(0.1))
            .is_inert());
        assert!(!FaultPlan::none()
            .with_latency(LatencyDist::Fixed { ticks: 5 })
            .is_inert());
        assert!(!FaultPlan::none().with_link_drop(0.1).is_inert());
    }

    #[test]
    fn validate_names_each_violation() {
        let bad_rate = FaultPlan::none().with_churn(ChurnConfig::new(1.5));
        assert!(bad_rate
            .validate()
            .unwrap_err()
            .to_string()
            .contains("churn rate"));
        let bad_downtime = FaultPlan::none().with_churn(ChurnConfig::new(0.1).with_downtime(10, 5));
        assert!(bad_downtime
            .validate()
            .unwrap_err()
            .to_string()
            .contains("min <= max"));
        let zero_downtime = FaultPlan::none().with_churn(ChurnConfig::new(0.1).with_downtime(0, 5));
        assert!(zero_downtime
            .validate()
            .unwrap_err()
            .to_string()
            .contains("at least one tick"));
        let bad_uniform = FaultPlan::none().with_latency(LatencyDist::Uniform { min: 9, max: 2 });
        assert!(bad_uniform
            .validate()
            .unwrap_err()
            .to_string()
            .contains("uniform latency"));
        let bad_tail = FaultPlan::none().with_latency(LatencyDist::Straggler {
            base: 1,
            tail: 50,
            tail_prob: 1.5,
        });
        assert!(bad_tail
            .validate()
            .unwrap_err()
            .to_string()
            .contains("tail probability"));
        let bad_drop = FaultPlan::none().with_link_drop(1.0);
        assert!(bad_drop
            .validate()
            .unwrap_err()
            .to_string()
            .contains("link drop"));
    }

    #[test]
    fn churn_schedules_are_seed_deterministic_and_disjoint() {
        let churn = ChurnConfig::new(0.5).with_downtime(20, 120);
        let a = churn_schedule(&churn, 3, 20, 100, 2000, 77);
        let b = churn_schedule(&churn, 3, 20, 100, 2000, 77);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "rate 0.5 over 20 rounds should crash");
        for w in a.windows(2) {
            assert!(w[0].1 <= w[1].0, "intervals must be disjoint: {a:?}");
        }
        for &(crash, recover) in &a {
            assert!(crash < recover);
            assert!(recover - crash >= 20 && recover - crash <= 120);
        }
        let other_node = churn_schedule(&churn, 4, 20, 100, 2000, 77);
        let other_seed = churn_schedule(&churn, 3, 20, 100, 2000, 78);
        assert_ne!(a, other_node, "per-node streams must differ");
        assert_ne!(a, other_seed, "seeds must move the schedule");
    }

    #[test]
    fn link_latency_is_per_link_and_in_range() {
        let plan = FaultPlan::none().with_latency(LatencyDist::Uniform { min: 2, max: 9 });
        let state = FaultState::build(&plan, 16, 10, 100, 42);
        let mut seen = std::collections::BTreeSet::new();
        for from in 0..16 {
            for to in 0..16 {
                let l = state.link_latency(from, to, 1);
                assert!((2..=9).contains(&l), "latency {l} out of range");
                seen.insert(l);
                assert_eq!(l, state.link_latency(from, to, 1), "must be stable");
            }
        }
        assert!(seen.len() > 1, "links must be heterogeneous");
    }

    #[test]
    fn straggler_links_are_a_minority() {
        let plan = FaultPlan::none().with_latency(LatencyDist::Straggler {
            base: 1,
            tail: 80,
            tail_prob: 0.1,
        });
        let state = FaultState::build(&plan, 24, 10, 100, 7);
        let slow = (0..24)
            .flat_map(|i| (0..24).map(move |j| (i, j)))
            .filter(|&(i, j)| state.link_latency(i, j, 1) == 80)
            .count();
        assert!(slow > 0, "some links must straggle");
        assert!(slow < 24 * 24 / 3, "stragglers must be a minority: {slow}");
    }

    #[test]
    fn link_drop_probabilities_average_near_the_mean() {
        let plan = FaultPlan::none().with_link_drop(0.2);
        let state = FaultState::build(&plan, 24, 10, 100, 9);
        let probs: Vec<f64> = (0..24)
            .flat_map(|i| (0..24).map(move |j| (i, j)))
            .map(|(i, j)| state.link_drop_probability(i, j, 0.0))
            .collect();
        for &p in &probs {
            assert!((0.0..1.0).contains(&p));
        }
        let mean = probs.iter().sum::<f64>() / probs.len() as f64;
        assert!((mean - 0.2).abs() < 0.05, "mean link drop was {mean}");
    }

    #[test]
    fn fixed_latency_overrides_the_global_value() {
        let plan = FaultPlan::none().with_latency(LatencyDist::Fixed { ticks: 7 });
        let state = FaultState::build(&plan, 4, 10, 100, 3);
        assert_eq!(state.link_latency(0, 1, 1), 7);
        let no_latency = FaultPlan::none().with_link_drop(0.1);
        let state = FaultState::build(&no_latency, 4, 10, 100, 3);
        assert_eq!(state.link_latency(0, 1, 5), 5, "falls back to global");
    }

    #[test]
    fn latency_dist_display_round_trips_the_cli_syntax() {
        assert_eq!(LatencyDist::Fixed { ticks: 3 }.to_string(), "fixed:3");
        assert_eq!(
            LatencyDist::Uniform { min: 1, max: 9 }.to_string(),
            "uniform:1:9"
        );
        assert_eq!(
            LatencyDist::Straggler {
                base: 1,
                tail: 50,
                tail_prob: 0.05
            }
            .to_string(),
            "straggler:1:50:0.05"
        );
    }

    #[test]
    fn latency_dist_parses_its_own_display_form() {
        for dist in [
            LatencyDist::Fixed { ticks: 3 },
            LatencyDist::Uniform { min: 1, max: 9 },
            LatencyDist::Straggler {
                base: 1,
                tail: 50,
                tail_prob: 0.05,
            },
        ] {
            let parsed: LatencyDist = dist.to_string().parse().expect("display form parses");
            assert_eq!(parsed, dist);
        }
        for bad in [
            "fixed",
            "fixed:x",
            "uniform:3",
            "straggler:1:2",
            "poisson:4",
            "",
        ] {
            assert!(
                bad.parse::<LatencyDist>().is_err(),
                "'{bad}' must not parse"
            );
        }
    }
}

//! Model-perturbation defenses applied to outgoing models.

use glmia_dist::Normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A perturbation applied to every model a node *sends* (its own stored
/// model is untouched).
///
/// These are lightweight instances of the mitigation directions the paper
/// surveys in §6.2 (local-DP-style noise injection); they let the benchmark
/// harness quantify the privacy/utility shift a defense buys on top of the
/// architectural factors the paper studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Defense {
    /// Adds IID Gaussian noise `N(0, std²)` to every shared parameter — the
    /// core randomizer of local-DP approaches (Cyffers & Bellet 2022).
    GaussianNoise {
        /// Noise standard deviation.
        std: f64,
    },
    /// Zeroes a uniformly random fraction of shared parameters (sparsifying
    /// share-masking).
    RandomMask {
        /// Fraction of parameters zeroed, in `[0, 1)`.
        fraction: f64,
    },
}

impl Defense {
    /// Applies the defense in place to an outgoing flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if parameters are invalid (negative noise std, fraction
    /// outside `[0, 1)`).
    pub fn apply<R: Rng + ?Sized>(&self, params: &mut [f32], rng: &mut R) {
        match *self {
            Defense::GaussianNoise { std } => {
                assert!(
                    std >= 0.0 && std.is_finite(),
                    "noise std must be non-negative"
                );
                if std == 0.0 {
                    return;
                }
                let normal = Normal::new(0.0, std).expect("validated std");
                for p in params {
                    *p += normal.sample(rng) as f32;
                }
            }
            Defense::RandomMask { fraction } => {
                assert!(
                    (0.0..1.0).contains(&fraction),
                    "mask fraction must be in [0, 1)"
                );
                for p in params {
                    if rng.gen_bool(fraction) {
                        *p = 0.0;
                    }
                }
            }
        }
    }
}

impl std::fmt::Display for Defense {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Defense::GaussianNoise { std } => write!(f, "gaussian-noise(σ={std})"),
            Defense::RandomMask { fraction } => write!(f, "random-mask({fraction})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gaussian_noise_perturbs() {
        let mut params = vec![1.0f32; 100];
        Defense::GaussianNoise { std: 0.5 }.apply(&mut params, &mut rng(0));
        assert!(params.iter().any(|&p| p != 1.0));
        // Mean stays near 1.
        let mean: f32 = params.iter().sum::<f32>() / 100.0;
        assert!((mean - 1.0).abs() < 0.3);
    }

    #[test]
    fn zero_noise_is_noop() {
        let mut params = vec![1.0f32; 10];
        Defense::GaussianNoise { std: 0.0 }.apply(&mut params, &mut rng(1));
        assert!(params.iter().all(|&p| p == 1.0));
    }

    #[test]
    fn mask_zeroes_expected_fraction() {
        let mut params = vec![1.0f32; 10_000];
        Defense::RandomMask { fraction: 0.3 }.apply(&mut params, &mut rng(2));
        let zeroed = params.iter().filter(|&&p| p == 0.0).count();
        assert!((2700..3300).contains(&zeroed), "zeroed {zeroed}");
    }

    #[test]
    #[should_panic(expected = "mask fraction must be in [0, 1)")]
    fn bad_mask_fraction_panics() {
        Defense::RandomMask { fraction: 1.0 }.apply(&mut [1.0], &mut rng(3));
    }

    #[test]
    fn display_names() {
        assert_eq!(
            Defense::GaussianNoise { std: 0.1 }.to_string(),
            "gaussian-noise(σ=0.1)"
        );
        assert_eq!(
            Defense::RandomMask { fraction: 0.5 }.to_string(),
            "random-mask(0.5)"
        );
    }
}

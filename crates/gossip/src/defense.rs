//! Model-perturbation defenses applied to outgoing models.

use glmia_dist::Normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::GossipError;

/// A perturbation applied to every model a node *sends* (its own stored
/// model is untouched).
///
/// These are lightweight instances of the mitigation directions the paper
/// surveys in §6.2 (local-DP-style noise injection); they let the benchmark
/// harness quantify the privacy/utility shift a defense buys on top of the
/// architectural factors the paper studies.
///
/// Each defense has a compact colon-separated spec used by the CLI and
/// trace records: `gaussian:STD`, `mask:FRAC`, or `clip:LIMIT`.
/// [`Display`](std::fmt::Display) emits it and [`FromStr`](std::str::FromStr)
/// parses it back:
///
/// ```
/// use glmia_gossip::Defense;
///
/// let defense: Defense = "gaussian:0.1".parse()?;
/// assert_eq!(defense, Defense::GaussianNoise { std: 0.1 });
/// assert_eq!(defense.to_string(), "gaussian:0.1");
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Defense {
    /// Adds IID Gaussian noise `N(0, std²)` to every shared parameter — the
    /// core randomizer of local-DP approaches (Cyffers & Bellet 2022).
    GaussianNoise {
        /// Noise standard deviation.
        std: f64,
    },
    /// Zeroes a uniformly random fraction of shared parameters (sparsifying
    /// share-masking).
    RandomMask {
        /// Fraction of parameters zeroed, in `[0, 1)`.
        fraction: f64,
    },
    /// Clamps every shared parameter to `[-limit, limit]` — the norm-bounding
    /// step of DP-SGD-style pipelines, here applied per-coordinate to the
    /// outgoing model. Deterministic: draws no randomness.
    Clipping {
        /// Per-coordinate magnitude bound, strictly positive.
        limit: f64,
    },
}

impl Defense {
    /// Checks the defense parameters without applying anything, for config
    /// validation paths that must not panic.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError`] naming the offending parameter when the noise
    /// std is negative or non-finite, the mask fraction is outside `[0, 1)`,
    /// or the clipping limit is not strictly positive and finite.
    pub fn validate(&self) -> Result<(), GossipError> {
        match *self {
            Defense::GaussianNoise { std } => {
                if !(std >= 0.0 && std.is_finite()) {
                    return Err(GossipError::new(format!(
                        "noise std must be non-negative and finite, got {std}"
                    )));
                }
            }
            Defense::RandomMask { fraction } => {
                if !(0.0..1.0).contains(&fraction) {
                    return Err(GossipError::new(format!(
                        "mask fraction must be in [0, 1), got {fraction}"
                    )));
                }
            }
            Defense::Clipping { limit } => {
                if !(limit > 0.0 && limit.is_finite()) {
                    return Err(GossipError::new(format!(
                        "clipping limit must be positive and finite, got {limit}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Applies the defense in place to an outgoing flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if parameters are invalid (negative noise std, fraction
    /// outside `[0, 1)`, non-positive clipping limit); [`Defense::validate`]
    /// checks the same conditions without panicking.
    pub fn apply<R: Rng + ?Sized>(&self, params: &mut [f32], rng: &mut R) {
        match *self {
            Defense::GaussianNoise { std } => {
                assert!(
                    std >= 0.0 && std.is_finite(),
                    "noise std must be non-negative"
                );
                if std == 0.0 {
                    return;
                }
                let normal = Normal::new(0.0, std).expect("validated std");
                for p in params {
                    *p += normal.sample(rng) as f32;
                }
            }
            Defense::RandomMask { fraction } => {
                assert!(
                    (0.0..1.0).contains(&fraction),
                    "mask fraction must be in [0, 1)"
                );
                for p in params {
                    if rng.gen_bool(fraction) {
                        *p = 0.0;
                    }
                }
            }
            Defense::Clipping { limit } => {
                assert!(
                    limit > 0.0 && limit.is_finite(),
                    "clipping limit must be positive"
                );
                let bound = limit as f32;
                for p in params {
                    *p = p.clamp(-bound, bound);
                }
            }
        }
    }
}

impl std::fmt::Display for Defense {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Defense::GaussianNoise { std } => write!(f, "gaussian:{std}"),
            Defense::RandomMask { fraction } => write!(f, "mask:{fraction}"),
            Defense::Clipping { limit } => write!(f, "clip:{limit}"),
        }
    }
}

/// Parses the compact colon-separated spec the CLI uses, the inverse of
/// [`Display`](std::fmt::Display): `gaussian:STD`, `mask:FRAC`, or
/// `clip:LIMIT`. Parsed values are validated, so a successfully parsed
/// defense never panics in [`Defense::apply`].
impl std::str::FromStr for Defense {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        fn num(part: &str, what: &str) -> Result<f64, String> {
            part.parse()
                .map_err(|_| format!("invalid {what} '{part}' in defense spec"))
        }
        let defense = match s.split_once(':') {
            Some(("gaussian", std)) => Defense::GaussianNoise {
                std: num(std, "noise std")?,
            },
            Some(("mask", fraction)) => Defense::RandomMask {
                fraction: num(fraction, "mask fraction")?,
            },
            Some(("clip", limit)) => Defense::Clipping {
                limit: num(limit, "clipping limit")?,
            },
            _ => {
                return Err(format!(
                    "invalid defense spec '{s}' (expected gaussian:STD, mask:FRAC or clip:LIMIT)"
                ))
            }
        };
        defense.validate().map_err(|e| e.to_string())?;
        Ok(defense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gaussian_noise_perturbs() {
        let mut params = vec![1.0f32; 100];
        Defense::GaussianNoise { std: 0.5 }.apply(&mut params, &mut rng(0));
        assert!(params.iter().any(|&p| p != 1.0));
        // Mean stays near 1.
        let mean: f32 = params.iter().sum::<f32>() / 100.0;
        assert!((mean - 1.0).abs() < 0.3);
    }

    #[test]
    fn zero_noise_is_noop() {
        let mut params = vec![1.0f32; 10];
        Defense::GaussianNoise { std: 0.0 }.apply(&mut params, &mut rng(1));
        assert!(params.iter().all(|&p| p == 1.0));
    }

    #[test]
    fn mask_zeroes_expected_fraction() {
        let mut params = vec![1.0f32; 10_000];
        Defense::RandomMask { fraction: 0.3 }.apply(&mut params, &mut rng(2));
        let zeroed = params.iter().filter(|&&p| p == 0.0).count();
        assert!((2700..3300).contains(&zeroed), "zeroed {zeroed}");
    }

    #[test]
    fn clipping_clamps_and_draws_no_randomness() {
        let mut params = vec![-3.0f32, -0.5, 0.0, 0.5, 3.0];
        let mut r = rng(4);
        let before = r.clone();
        Defense::Clipping { limit: 1.0 }.apply(&mut params, &mut r);
        assert_eq!(params, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
        // The RNG is untouched: clipping must not shift downstream draws.
        assert_eq!(r.gen::<u64>(), before.clone().gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "mask fraction must be in [0, 1)")]
    fn bad_mask_fraction_panics() {
        Defense::RandomMask { fraction: 1.0 }.apply(&mut [1.0], &mut rng(3));
    }

    #[test]
    #[should_panic(expected = "clipping limit must be positive")]
    fn bad_clip_limit_panics() {
        Defense::Clipping { limit: 0.0 }.apply(&mut [1.0], &mut rng(5));
    }

    #[test]
    fn validate_mirrors_the_apply_preconditions() {
        assert!(Defense::GaussianNoise { std: 0.0 }.validate().is_ok());
        assert!(Defense::RandomMask { fraction: 0.99 }.validate().is_ok());
        assert!(Defense::Clipping { limit: 0.5 }.validate().is_ok());
        for bad in [
            Defense::GaussianNoise { std: -1.0 },
            Defense::GaussianNoise { std: f64::NAN },
            Defense::RandomMask { fraction: 1.0 },
            Defense::RandomMask { fraction: -0.1 },
            Defense::Clipping { limit: 0.0 },
            Defense::Clipping {
                limit: f64::INFINITY,
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should fail validation");
        }
    }

    #[test]
    fn display_emits_the_cli_grammar() {
        assert_eq!(
            Defense::GaussianNoise { std: 0.1 }.to_string(),
            "gaussian:0.1"
        );
        assert_eq!(
            Defense::RandomMask { fraction: 0.5 }.to_string(),
            "mask:0.5"
        );
        assert_eq!(Defense::Clipping { limit: 2.5 }.to_string(), "clip:2.5");
    }

    #[test]
    fn display_round_trips_through_fromstr() {
        for defense in [
            Defense::GaussianNoise { std: 0.25 },
            Defense::RandomMask { fraction: 0.125 },
            Defense::Clipping { limit: 1.5 },
        ] {
            let reparsed: Defense = defense.to_string().parse().unwrap();
            assert_eq!(reparsed, defense);
        }
    }

    #[test]
    fn fromstr_rejects_malformed_and_invalid_specs() {
        for bad in [
            "",
            "gaussian",
            "gaussian:",
            "gaussian:x",
            "gaussian:-1",
            "mask:1.0",
            "clip:0",
            "clip:abc",
            "laplace:0.1",
        ] {
            assert!(bad.parse::<Defense>().is_err(), "'{bad}' should not parse");
        }
    }
}

//! Empirical per-round mixing-matrix reconstruction.
//!
//! The paper explains membership-inference vulnerability through the
//! spectral gap of the gossip *mixing matrix* `W_t` — the row-stochastic
//! operator that maps round-start models to round-end models. The analytic
//! value `(A + I) / (k + 1)` only holds for an idealized synchronous round;
//! a real asynchronous run merges different subsets at different ticks.
//! [`MixingMatrixObserver`] reconstructs the matrix each round actually
//! applied, straight from the engine's deliver/merge events.
//!
//! # Reconstruction model
//!
//! Each delivered model is attributed to its *sender's round-start state*
//! (a one-hop approximation: intra-round recursion through a sender's own
//! earlier merges is not expanded). A merge of `m` received models at node
//! `i` is then the elementary row operation
//!
//! ```text
//! row_i ← (row_i + Σ_{j ∈ sources} e_j) / (m + 1)
//! ```
//!
//! starting from the identity at the top of the round. Rows stay
//! stochastic by construction, so the finished matrix is a valid mixing
//! operator whose second-largest singular value is directly comparable to
//! the analytic λ₂. Models still in flight (buffered but not yet merged)
//! carry over to the round in which they are actually merged, exactly like
//! the underlying buffers.
//!
//! # Sparsity
//!
//! Row `i` only ever gains a column for a node whose model `i` merged, so a
//! round's matrix has O(merges) nonzeros, not `n²`. The observer therefore
//! keeps each row as a sorted `(column, value)` list and finishes rounds
//! into [`SparseMixingMatrix`] (CSR), which the spectral pipeline consumes
//! without ever materializing a dense `n × n` buffer — the change that
//! lets mixing capture scale to tens of thousands of nodes.

use std::collections::VecDeque;

use glmia_spectral::SparseMixingMatrix;

use crate::observer::{DeliverEvent, MergeEvent, SimObserver};
use crate::RoundSnapshot;

/// Reconstructs the empirical mixing matrix `W_t` of every round from
/// deliver/merge events (see the module docs for the model).
///
/// Attach it to a run via
/// [`Simulation::run_observed`](crate::Simulation::run_observed) (compose
/// with [`Observers`](crate::Observers) to keep other observers), then read
/// the per-round matrices back with [`matrices`](Self::matrices). A
/// [`disabled`](Self::disabled) observer ignores every event, so callers
/// can keep one code path whether or not mixing capture is wanted.
#[derive(Debug, Clone)]
pub struct MixingMatrixObserver {
    n: usize,
    /// Current round's matrix as sorted sparse rows: `current[i]` holds the
    /// `(column, value)` entries of row `i`, columns strictly increasing.
    current: Vec<Vec<(usize, f64)>>,
    /// Sender ids of buffered (not yet merged) deliveries, per node, FIFO.
    pending: Vec<VecDeque<usize>>,
    /// Sender id of an unbuffered delivery about to be merged pairwise.
    immediate: Vec<Option<usize>>,
    finished: Vec<SparseMixingMatrix>,
}

impl MixingMatrixObserver {
    /// An observer for an `n`-node simulation, starting from the identity.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            current: identity_rows(n),
            pending: vec![VecDeque::new(); n],
            immediate: vec![None; n],
            finished: Vec::new(),
        }
    }

    /// An observer that records nothing (zero nodes, every hook a no-op).
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Whether this observer captures anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.n > 0
    }

    /// The finished per-round matrices (CSR), in round order.
    #[must_use]
    pub fn matrices(&self) -> &[SparseMixingMatrix] {
        &self.finished
    }

    /// Consumes the observer, returning the per-round matrices.
    #[must_use]
    pub fn into_matrices(self) -> Vec<SparseMixingMatrix> {
        self.finished
    }

    /// Node count the observer was built for.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.n
    }
}

/// Identity as sparse rows: `row_i = [(i, 1.0)]`.
fn identity_rows(n: usize) -> Vec<Vec<(usize, f64)>> {
    (0..n).map(|i| vec![(i, 1.0)]).collect()
}

impl SimObserver for MixingMatrixObserver {
    fn on_deliver(&mut self, event: DeliverEvent) {
        if self.n == 0 {
            return;
        }
        if event.buffered {
            self.pending[event.to].push_back(event.from);
        } else {
            self.immediate[event.to] = Some(event.from);
        }
    }

    fn on_merge(&mut self, event: MergeEvent) {
        if self.n == 0 {
            return;
        }
        let i = event.node;
        let mut sources = Vec::with_capacity(event.models_merged);
        if let Some(src) = self.immediate[i].take() {
            sources.push(src);
        } else {
            for _ in 0..event.models_merged {
                match self.pending[i].pop_front() {
                    Some(src) => sources.push(src),
                    None => break,
                }
            }
        }
        if sources.is_empty() {
            return;
        }
        let denom = (sources.len() + 1) as f64;
        let row = &mut self.current[i];
        for (_, v) in row.iter_mut() {
            *v /= denom;
        }
        // Repeat senders accumulate, new senders insert at their sorted
        // position — rows stay sorted so finishing into CSR is a move.
        for src in sources {
            match row.binary_search_by_key(&src, |&(j, _)| j) {
                Ok(pos) => row[pos].1 += 1.0 / denom,
                Err(pos) => row.insert(pos, (src, 1.0 / denom)),
            }
        }
    }

    fn on_snapshot(&mut self, _snapshot: &RoundSnapshot) {
        if self.n == 0 {
            return;
        }
        let rows = std::mem::replace(&mut self.current, identity_rows(self.n));
        let finished = SparseMixingMatrix::from_sorted_rows(self.n, rows)
            .expect("observer rows are sorted, in range and duplicate-free by construction");
        self.finished.push(finished);
        // `pending` deliberately survives the round boundary: buffered
        // models merge in the round their wake-up actually happens.
    }
}

/// Lets a borrowed observer ride along in an observer chain while the
/// caller keeps ownership for post-run readout.
impl SimObserver for &mut MixingMatrixObserver {
    fn on_deliver(&mut self, event: DeliverEvent) {
        (**self).on_deliver(event);
    }

    fn on_merge(&mut self, event: MergeEvent) {
        (**self).on_merge(event);
    }

    fn on_snapshot(&mut self, snapshot: &RoundSnapshot) {
        (**self).on_snapshot(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(round: usize) -> RoundSnapshot {
        RoundSnapshot {
            round,
            tick: round as u64 * 100,
            models: Vec::new(),
            shared_models: Vec::new(),
        }
    }

    fn deliver(from: usize, to: usize, buffered: bool) -> DeliverEvent {
        DeliverEvent {
            tick: 1,
            from,
            to,
            buffered,
        }
    }

    fn merge(node: usize, models_merged: usize) -> MergeEvent {
        MergeEvent {
            tick: 2,
            node,
            models_merged,
        }
    }

    /// Dense row-major copy of a finished matrix, for assertions.
    fn dense(w: &SparseMixingMatrix) -> Vec<f64> {
        let n = w.n();
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for (j, v) in w.row(i) {
                out[i * n + j] = v;
            }
        }
        out
    }

    fn identity(n: usize) -> Vec<f64> {
        let mut m = vec![0.0; n * n];
        for i in 0..n {
            m[i * n + i] = 1.0;
        }
        m
    }

    #[test]
    fn no_merges_yields_identity() {
        let mut obs = MixingMatrixObserver::new(3);
        obs.on_snapshot(&snapshot(1));
        assert_eq!(dense(&obs.matrices()[0]), identity(3));
        assert_eq!(obs.matrices()[0].nnz(), 3, "identity stores n entries");
    }

    #[test]
    fn buffered_merge_averages_sources_with_self() {
        let mut obs = MixingMatrixObserver::new(3);
        obs.on_deliver(deliver(1, 0, true));
        obs.on_deliver(deliver(2, 0, true));
        obs.on_merge(merge(0, 2));
        obs.on_snapshot(&snapshot(1));
        let w = dense(&obs.matrices()[0]);
        let third = 1.0 / 3.0;
        assert_eq!(&w[0..3], &[third, third, third]);
        assert_eq!(&w[3..6], &[0.0, 1.0, 0.0]);
        assert_eq!(&w[6..9], &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn pairwise_merge_uses_immediate_source() {
        let mut obs = MixingMatrixObserver::new(2);
        obs.on_deliver(deliver(1, 0, false));
        obs.on_merge(merge(0, 1));
        obs.on_snapshot(&snapshot(1));
        let w = dense(&obs.matrices()[0]);
        assert_eq!(&w[0..2], &[0.5, 0.5]);
        assert_eq!(&w[2..4], &[0.0, 1.0]);
    }

    #[test]
    fn rows_stay_stochastic_through_chained_merges() {
        let mut obs = MixingMatrixObserver::new(4);
        obs.on_deliver(deliver(1, 0, false));
        obs.on_merge(merge(0, 1));
        obs.on_deliver(deliver(2, 0, false));
        obs.on_merge(merge(0, 1));
        obs.on_deliver(deliver(3, 2, true));
        obs.on_merge(merge(2, 1));
        obs.on_snapshot(&snapshot(1));
        let w = dense(&obs.matrices()[0]);
        for i in 0..4 {
            let sum: f64 = w[i * 4..(i + 1) * 4].iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
        }
        // Node 0 merged twice pairwise: (e0/2 + e1/2)/2 + e2/2.
        assert_eq!(&w[0..4], &[0.25, 0.25, 0.5, 0.0]);
    }

    #[test]
    fn repeat_sender_in_one_merge_accumulates() {
        // Two buffered copies from the same sender merged at once must
        // accumulate into a single column entry, not a duplicate.
        let mut obs = MixingMatrixObserver::new(2);
        obs.on_deliver(deliver(1, 0, true));
        obs.on_deliver(deliver(1, 0, true));
        obs.on_merge(merge(0, 2));
        obs.on_snapshot(&snapshot(1));
        let w = &obs.matrices()[0];
        let third = 1.0 / 3.0;
        assert!((w.get(0, 0) - third).abs() < 1e-15);
        assert!((w.get(0, 1) - 2.0 * third).abs() < 1e-15);
        assert_eq!(w.nnz(), 3);
    }

    #[test]
    fn pending_deliveries_carry_across_rounds() {
        let mut obs = MixingMatrixObserver::new(2);
        obs.on_deliver(deliver(1, 0, true));
        obs.on_snapshot(&snapshot(1));
        obs.on_merge(merge(0, 1));
        obs.on_snapshot(&snapshot(2));
        assert_eq!(dense(&obs.matrices()[0]), identity(2));
        let w = dense(&obs.matrices()[1]);
        assert_eq!(&w[0..2], &[0.5, 0.5]);
    }

    #[test]
    fn matrices_stay_sparse_under_sparse_activity() {
        // 100 nodes, one pairwise merge: nnz must be n + 1, not n².
        let mut obs = MixingMatrixObserver::new(100);
        obs.on_deliver(deliver(7, 3, false));
        obs.on_merge(merge(3, 1));
        obs.on_snapshot(&snapshot(1));
        assert_eq!(obs.matrices()[0].nnz(), 101);
    }

    #[test]
    fn disabled_observer_records_nothing() {
        let mut obs = MixingMatrixObserver::disabled();
        assert!(!obs.is_enabled());
        obs.on_deliver(deliver(0, 0, true));
        obs.on_merge(merge(0, 1));
        obs.on_snapshot(&snapshot(1));
        assert!(obs.matrices().is_empty());
    }
}

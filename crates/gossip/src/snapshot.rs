//! Round snapshots: the omniscient attacker's observations.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// All node models captured at one round boundary — what the paper's
/// omniscient observer (§2.6) records: "at regular time intervals recover
/// the current models of all nodes".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundSnapshot {
    /// The 1-based communication round this snapshot closes.
    pub round: usize,
    /// The simulation tick at capture time.
    pub tick: u64,
    /// Flat parameter vectors, one per node (index = node id) — each
    /// node's *internal* current model θᵢ. Shared (`Arc`) with the engine's
    /// per-node snapshot cache: a node that did not change between rounds
    /// contributes the same allocation to consecutive snapshots, and
    /// pointer equality certifies the model is byte-identical.
    pub models: Vec<Arc<[f32]>>,
    /// The most recent model each node *transmitted*, after any
    /// [`Defense`](crate::Defense) was applied; equals the internal model
    /// for nodes that have not sent yet. This is the surface a
    /// network-eavesdropping attacker actually observes, and the only one a
    /// share-perturbation defense can protect.
    pub shared_models: Vec<Arc<[f32]>>,
}

/// Per-node activity counters over a whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeStats {
    /// Times the node woke up.
    pub wakes: u64,
    /// Models the node sent (before failure injection).
    pub sent: u64,
    /// Models delivered to the node.
    pub received: u64,
    /// Local-update epochs the node ran.
    pub update_epochs: u64,
    /// Buffer merges (SAMO-family) or pairwise merges (Base-family) the
    /// node performed.
    pub merges: u64,
}

/// The full outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// One snapshot per round, in order.
    pub snapshots: Vec<RoundSnapshot>,
    /// Total models sent over the run (SAMO sends `k` per wake, Base Gossip
    /// sends 1 — the communication-cost axis of RQ3).
    pub messages_sent: u64,
    /// Models silently dropped by failure injection.
    pub messages_dropped: u64,
    /// Total local-update invocations across nodes.
    pub local_updates: u64,
    /// Per-node activity counters (index = node id).
    pub node_stats: Vec<NodeStats>,
}

impl SimResult {
    /// The final round's snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the run produced no snapshots (never happens for a
    /// successfully constructed simulation, which validates `rounds > 0`).
    #[must_use]
    pub fn final_snapshot(&self) -> &RoundSnapshot {
        self.snapshots
            .last()
            .expect("simulations run at least one round")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_snapshot_is_last() {
        let result = SimResult {
            snapshots: vec![
                RoundSnapshot {
                    round: 1,
                    tick: 100,
                    models: vec![],
                    shared_models: vec![],
                },
                RoundSnapshot {
                    round: 2,
                    tick: 200,
                    models: vec![],
                    shared_models: vec![],
                },
            ],
            messages_sent: 0,
            messages_dropped: 0,
            local_updates: 0,
            node_stats: vec![],
        };
        assert_eq!(result.final_snapshot().round, 2);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn empty_final_snapshot_panics() {
        let result = SimResult {
            snapshots: vec![],
            messages_sent: 0,
            messages_dropped: 0,
            local_updates: 0,
            node_stats: vec![],
        };
        let _ = result.final_snapshot();
    }
}

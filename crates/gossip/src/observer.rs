//! Structured observation of a running simulation.
//!
//! [`SimObserver`] is the engine's callback surface: a trait of per-event
//! hooks (sends, deliveries, merges, local updates, round boundaries) with
//! no-op defaults, so an observer implements only what it cares about.
//! [`Simulation::run_observed`](crate::Simulation::run_observed) drives any
//! observer; [`Observers`] composes two (or, nested, any number) so an
//! attacker, a progress reporter and a metrics recorder can all watch the
//! same run without the engine knowing about any of them.
//!
//! Closures stay first-class: every `FnMut(RoundSnapshot)` *is* a
//! [`SimObserver`] via a blanket impl that maps the closure to
//! [`on_round_end`](SimObserver::on_round_end), so pre-trait callers of
//! [`run_with`](crate::Simulation::run_with) compile unchanged.
//!
//! # Ownership protocol
//!
//! Round snapshots are handed out in two steps so that composition never
//! clones a parameter vector:
//!
//! 1. [`on_snapshot`](SimObserver::on_snapshot) passes the snapshot *by
//!    reference* to every observer in a chain;
//! 2. [`on_round_end`](SimObserver::on_round_end) then passes it *by value*
//!    to exactly one sink — the **last** observer of an [`Observers`] chain.
//!
//! An observer that only needs to look at rounds implements `on_snapshot`;
//! an accumulator that wants to keep them implements `on_round_end` (or is
//! simply a closure).
//!
//! # Examples
//!
//! ```
//! use glmia_gossip::{Observers, SendEvent, SimObserver};
//!
//! #[derive(Default)]
//! struct SendCounter {
//!     sent: u64,
//! }
//!
//! impl SimObserver for SendCounter {
//!     fn on_send(&mut self, event: SendEvent) {
//!         self.sent += u64::from(!event.dropped);
//!     }
//! }
//!
//! // Compose the counter with a closure sink; the closure receives each
//! // round snapshot by value, the counter sees every send event.
//! let sink = |snapshot: glmia_gossip::RoundSnapshot| {
//!     let _ = snapshot.round;
//! };
//! let observers = Observers::new(SendCounter::default(), sink);
//! let (counter, _sink) = observers.into_inner();
//! assert_eq!(counter.sent, 0);
//! ```

use crate::RoundSnapshot;

/// A model transmission attempt: node `from` sent its (post-defense) model
/// toward `to` at `tick`. `dropped` marks failure injection — dropped
/// messages count as sent but are never delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendEvent {
    /// Simulation tick of the send.
    pub tick: u64,
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// Whether failure injection dropped the message in transit.
    pub dropped: bool,
}

/// A model arrival at node `to` after message latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliverEvent {
    /// Simulation tick of the delivery.
    pub tick: u64,
    /// Sending node (origin of the delivered model).
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// `true` under merge-once protocols (the model was buffered for the
    /// next wake-up), `false` when it was merged pairwise on the spot.
    pub buffered: bool,
}

/// A model aggregation at `node`: pairwise (`models_merged == 1`) or a
/// buffer merge of `models_merged` received models at wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeEvent {
    /// Simulation tick of the merge.
    pub tick: u64,
    /// Merging node.
    pub node: usize,
    /// How many received models were folded into the node's own.
    pub models_merged: usize,
}

/// A fault-injection transition at `node` (see
/// [`FaultPlan`](crate::FaultPlan)): a crash, a recovery, or a model
/// dropped because its destination was down when it arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation tick of the transition.
    pub tick: u64,
    /// The node that crashed, recovered, or lost an incoming model.
    pub node: usize,
    /// What happened.
    pub kind: FaultKind,
    /// The sender of the lost model for
    /// [`FaultKind::DeliveryDropped`]; `None` otherwise.
    pub peer: Option<usize>,
}

/// The kind of a [`FaultEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node went down: it stops waking, sending, and merging.
    Crash,
    /// The node came back up with its pre-crash model (silent rejoin).
    Recover,
    /// A model arrived at a downed node and was discarded. Counts toward
    /// the run's dropped-message total alongside in-transit drops.
    DeliveryDropped,
}

/// A local SGD update at `node` (post-merge training).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateEvent {
    /// Simulation tick of the update.
    pub tick: u64,
    /// Training node.
    pub node: usize,
    /// Epochs actually run (0 when the node's shard is empty).
    pub epochs: u64,
}

/// Callbacks into a running [`Simulation`](crate::Simulation).
///
/// Every hook has a no-op default; implement only what you observe. The
/// snapshot ownership protocol: `on_snapshot` shares each round's snapshot
/// by reference with every observer in a chain, then `on_round_end` hands
/// it by value to the last chain member. Compose observers with
/// [`Observers`].
pub trait SimObserver {
    /// A communication round begins (`tick` is the round's first tick).
    fn on_round_start(&mut self, round: usize, tick: u64) {
        let _ = (round, tick);
    }

    /// A node attempted to send its model (possibly dropped in transit).
    fn on_send(&mut self, event: SendEvent) {
        let _ = event;
    }

    /// A model arrived at its destination.
    fn on_deliver(&mut self, event: DeliverEvent) {
        let _ = event;
    }

    /// A node aggregated received models into its own.
    fn on_merge(&mut self, event: MergeEvent) {
        let _ = event;
    }

    /// A node ran local SGD epochs.
    fn on_local_update(&mut self, event: UpdateEvent) {
        let _ = event;
    }

    /// A fault-injection transition fired (crash, recovery, or a delivery
    /// discarded at a downed node). Never called when the run has no
    /// active [`FaultPlan`](crate::FaultPlan).
    fn on_fault(&mut self, event: FaultEvent) {
        let _ = event;
    }

    /// A round completed; the snapshot is shared with *every* observer in a
    /// chain before [`on_round_end`](SimObserver::on_round_end) consumes it.
    fn on_snapshot(&mut self, snapshot: &RoundSnapshot) {
        let _ = snapshot;
    }

    /// A round completed; receives the snapshot *by value*. In an
    /// [`Observers`] chain only the last member is called — accumulate or
    /// ship snapshots here, observe them in `on_snapshot`.
    fn on_round_end(&mut self, snapshot: RoundSnapshot) {
        let _ = snapshot;
    }
}

/// Every `FnMut(RoundSnapshot)` is an observer: the closure becomes the
/// round-end sink, exactly matching the pre-trait `run_with` contract.
impl<F: FnMut(RoundSnapshot)> SimObserver for F {
    fn on_round_end(&mut self, snapshot: RoundSnapshot) {
        self(snapshot);
    }
}

/// An observer that ignores everything.
///
/// Useful as a placeholder slot in an [`Observers`] chain (a plain `()`
/// cannot implement [`SimObserver`] because the `FnMut(RoundSnapshot)`
/// blanket impl would conflict).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {}

/// Two observers watching one simulation.
///
/// Event hooks and [`on_snapshot`](SimObserver::on_snapshot) fan out to
/// both members in order; [`on_round_end`](SimObserver::on_round_end) hands
/// the snapshot to the *second* member only (the ownership sink). Nest
/// pairs — `Observers::new(a, Observers::new(b, sink))` — for longer
/// chains; the innermost second member is the sink.
#[derive(Debug, Clone)]
pub struct Observers<A, B> {
    first: A,
    second: B,
}

impl<A: SimObserver, B: SimObserver> Observers<A, B> {
    /// Composes `first` and `second`; `second` is the round-end sink.
    pub fn new(first: A, second: B) -> Self {
        Self { first, second }
    }

    /// Recovers both observers (e.g. after
    /// [`run_observed`](crate::Simulation::run_observed) returns the
    /// composite).
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: SimObserver, B: SimObserver> SimObserver for Observers<A, B> {
    fn on_round_start(&mut self, round: usize, tick: u64) {
        self.first.on_round_start(round, tick);
        self.second.on_round_start(round, tick);
    }

    fn on_send(&mut self, event: SendEvent) {
        self.first.on_send(event);
        self.second.on_send(event);
    }

    fn on_deliver(&mut self, event: DeliverEvent) {
        self.first.on_deliver(event);
        self.second.on_deliver(event);
    }

    fn on_merge(&mut self, event: MergeEvent) {
        self.first.on_merge(event);
        self.second.on_merge(event);
    }

    fn on_local_update(&mut self, event: UpdateEvent) {
        self.first.on_local_update(event);
        self.second.on_local_update(event);
    }

    fn on_fault(&mut self, event: FaultEvent) {
        self.first.on_fault(event);
        self.second.on_fault(event);
    }

    fn on_snapshot(&mut self, snapshot: &RoundSnapshot) {
        self.first.on_snapshot(snapshot);
        self.second.on_snapshot(snapshot);
    }

    fn on_round_end(&mut self, snapshot: RoundSnapshot) {
        self.second.on_round_end(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default, Debug, PartialEq, Eq)]
    struct Recorder {
        starts: Vec<usize>,
        sends: u64,
        drops: u64,
        delivers: u64,
        merges: u64,
        epochs: u64,
        faults: u64,
        snapshots_seen: usize,
    }

    impl SimObserver for Recorder {
        fn on_round_start(&mut self, round: usize, _tick: u64) {
            self.starts.push(round);
        }
        fn on_send(&mut self, event: SendEvent) {
            self.sends += 1;
            self.drops += u64::from(event.dropped);
        }
        fn on_deliver(&mut self, _event: DeliverEvent) {
            self.delivers += 1;
        }
        fn on_merge(&mut self, event: MergeEvent) {
            self.merges += event.models_merged as u64;
        }
        fn on_local_update(&mut self, event: UpdateEvent) {
            self.epochs += event.epochs;
        }
        fn on_fault(&mut self, _event: FaultEvent) {
            self.faults += 1;
        }
        fn on_snapshot(&mut self, _snapshot: &RoundSnapshot) {
            self.snapshots_seen += 1;
        }
    }

    fn snapshot(round: usize) -> RoundSnapshot {
        RoundSnapshot {
            round,
            tick: round as u64 * 100,
            models: vec![vec![0.0].into()],
            shared_models: vec![vec![0.0].into()],
        }
    }

    #[test]
    fn defaults_are_no_ops() {
        struct Inert;
        impl SimObserver for Inert {}
        let mut o = Inert;
        o.on_round_start(1, 0);
        o.on_send(SendEvent {
            tick: 1,
            from: 0,
            to: 1,
            dropped: false,
        });
        o.on_snapshot(&snapshot(1));
        o.on_round_end(snapshot(1));
    }

    #[test]
    fn closures_are_observers_via_round_end() {
        let mut rounds = Vec::new();
        {
            let mut sink = |s: RoundSnapshot| rounds.push(s.round);
            sink.on_snapshot(&snapshot(5));
            sink.on_round_end(snapshot(1));
            sink.on_round_end(snapshot(2));
        }
        assert_eq!(rounds, vec![1, 2]);
    }

    #[test]
    fn pair_fans_out_events_and_sinks_round_end_to_second() {
        let mut rounds = Vec::new();
        {
            let sink = |s: RoundSnapshot| rounds.push(s.round);
            let mut pair = Observers::new(Recorder::default(), sink);
            pair.on_round_start(1, 0);
            pair.on_send(SendEvent {
                tick: 3,
                from: 0,
                to: 1,
                dropped: true,
            });
            pair.on_fault(FaultEvent {
                tick: 4,
                node: 0,
                kind: FaultKind::Crash,
                peer: None,
            });
            pair.on_snapshot(&snapshot(1));
            pair.on_round_end(snapshot(1));
            let (recorder, _) = pair.into_inner();
            assert_eq!(recorder.starts, vec![1]);
            assert_eq!(recorder.sends, 1);
            assert_eq!(recorder.drops, 1);
            assert_eq!(recorder.faults, 1);
            assert_eq!(recorder.snapshots_seen, 1);
        }
        assert_eq!(rounds, vec![1]);
    }

    #[test]
    fn nested_chain_shares_snapshots_with_all_members() {
        let mut inner_rounds = Vec::new();
        {
            let sink = |s: RoundSnapshot| inner_rounds.push(s.round);
            let mut chain = Observers::new(
                Recorder::default(),
                Observers::new(Recorder::default(), sink),
            );
            chain.on_snapshot(&snapshot(1));
            chain.on_round_end(snapshot(1));
            let (a, rest) = chain.into_inner();
            let (b, _) = rest.into_inner();
            assert_eq!(a.snapshots_seen, 1);
            assert_eq!(b.snapshots_seen, 1);
        }
        assert_eq!(inner_rounds, vec![1]);
    }
}

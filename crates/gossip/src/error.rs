//! Error type for simulation construction.

use std::error::Error;
use std::fmt;

/// Error returned when a simulation is configured inconsistently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipError {
    message: String,
}

impl GossipError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for GossipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for GossipError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<GossipError>();
    }

    #[test]
    fn display_matches_message() {
        assert_eq!(GossipError::new("bad").to_string(), "bad");
    }
}

//! Discrete-event gossip-learning simulator.
//!
//! Reproduces the paper's execution model (§3.1): time advances in discrete
//! *ticks*, a communication round is 100 ticks, and each node `i` wakes up
//! every `Δᵢ` ticks with `Δᵢ ~ N(μ = 100, σ² = 100)` drawn once at startup —
//! nodes are therefore asynchronous and drift apart over the run.
//!
//! Two protocols are implemented exactly as in Algorithms 1 and 2:
//!
//! * [`ProtocolKind::BaseGossip`] — on wake, send the current model to *one*
//!   random neighbor; on receive, average pairwise
//!   (`θᵢ ← (θᵢ + θⱼ)/2`) and run local SGD;
//! * [`ProtocolKind::Samo`] — *send-all-merge-once*: received models are
//!   buffered; on wake the node averages its buffer (own model included),
//!   runs local SGD, then sends the result to **all** neighbors.
//!
//! Topology dynamics follow §2.4: in [`TopologyMode::Dynamic`] a waking node
//! first performs a PeerSwap with a random neighbor; in
//! [`TopologyMode::Static`] the initial k-regular graph never changes.
//!
//! The simulator records a [`RoundSnapshot`] of every node's model at each
//! round boundary — the observation stream of the paper's omniscient
//! attacker (§2.6) — and supports message-drop failure injection, a
//! Gaussian model-perturbation [`Defense`] (an extension toward the DP-style
//! mitigations discussed in §6.2), and a deterministic [`FaultPlan`] for
//! adverse networks: node churn with silent rejoin, heterogeneous per-link
//! latency, and per-link drop probabilities (see [`fault`](crate::FaultPlan)).
//!
//! # Examples
//!
//! ```
//! use glmia_data::{DataPreset, Federation, Partition};
//! use glmia_gossip::{ProtocolKind, SimConfig, Simulation, TopologyMode};
//! use glmia_graph::Topology;
//! use glmia_nn::{Activation, MlpSpec};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let data_spec = DataPreset::FashionMnistLike.spec().with_num_classes(3).with_input_dim(8);
//! let fed = Federation::build(&data_spec, 6, 20, 10, Partition::Iid, &mut rng)?;
//! let topo = Topology::random_regular(6, 2, &mut rng)?;
//! let model_spec = MlpSpec::new(8, &[16], 3, Activation::Relu)?;
//!
//! let config = SimConfig::new(ProtocolKind::Samo, TopologyMode::Dynamic)
//!     .with_rounds(3)
//!     .with_local_epochs(1);
//! let mut sim = Simulation::new(config, &model_spec, &fed, topo, 42)?;
//! let result = sim.run();
//! assert_eq!(result.snapshots.len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod defense;
mod engine;
mod error;
mod fault;
mod mixing;
mod node;
mod observer;
mod schedule;
mod snapshot;

pub use config::{ProtocolKind, SimConfig, TopologyMode};
pub use defense::Defense;
pub use engine::Simulation;
pub use error::GossipError;
pub use fault::{ChurnConfig, FaultPlan, LatencyDist};
pub use mixing::MixingMatrixObserver;
pub use observer::{
    DeliverEvent, FaultEvent, FaultKind, MergeEvent, NoopObserver, Observers, SendEvent,
    SimObserver, UpdateEvent,
};
pub use schedule::LrSchedule;
pub use snapshot::{NodeStats, RoundSnapshot, SimResult};

//! Learning-rate schedules over communication rounds.
//!
//! The paper's recommendations (§5) call out *dynamic learning rates* and
//! *warmup-style damping* as levers against early overfitting — the phase
//! that creates persistent MIA vulnerability (RQ5). A schedule maps the
//! current communication round to a multiplier on the base learning rate.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule evaluated per communication round.
///
/// # Examples
///
/// ```
/// use glmia_gossip::LrSchedule;
///
/// let warmup = LrSchedule::Warmup { rounds: 10, start_factor: 0.1 };
/// assert!((warmup.factor_at(0, 100) - 0.1).abs() < 1e-6);
/// assert!((warmup.factor_at(10, 100) - 1.0).abs() < 1e-6);
///
/// let decay = LrSchedule::StepDecay { every_rounds: 50, factor: 0.5 };
/// assert_eq!(decay.factor_at(100, 250), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LrSchedule {
    /// The base learning rate throughout (the paper's setup).
    #[default]
    Constant,
    /// Linear ramp from `start_factor · lr` to `lr` over the first
    /// `rounds` rounds — damps the early steps that create persistent
    /// leakage.
    Warmup {
        /// Rounds the ramp spans.
        rounds: usize,
        /// Initial multiplier in `(0, 1]`.
        start_factor: f32,
    },
    /// Multiplies the rate by `factor` every `every_rounds` rounds.
    StepDecay {
        /// Decay period in rounds.
        every_rounds: usize,
        /// Multiplier per period, in `(0, 1]`.
        factor: f32,
    },
    /// Cosine annealing from the base rate to `min_factor · lr` across the
    /// whole run.
    Cosine {
        /// Final multiplier in `[0, 1]`.
        min_factor: f32,
    },
}

impl LrSchedule {
    /// The learning-rate multiplier at `round` (0-based) of a
    /// `total_rounds`-round run. Always positive.
    ///
    /// # Panics
    ///
    /// Panics if schedule parameters are invalid (zero periods, factors
    /// outside their documented ranges).
    #[must_use]
    pub fn factor_at(self, round: usize, total_rounds: usize) -> f32 {
        match self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Warmup {
                rounds,
                start_factor,
            } => {
                assert!(rounds > 0, "warmup rounds must be positive");
                assert!(
                    start_factor > 0.0 && start_factor <= 1.0,
                    "warmup start factor must be in (0, 1]"
                );
                if round >= rounds {
                    1.0
                } else {
                    let progress = round as f32 / rounds as f32;
                    start_factor + (1.0 - start_factor) * progress
                }
            }
            LrSchedule::StepDecay {
                every_rounds,
                factor,
            } => {
                assert!(every_rounds > 0, "decay period must be positive");
                assert!(
                    factor > 0.0 && factor <= 1.0,
                    "decay factor must be in (0, 1]"
                );
                // Floor against f32 underflow on very long runs: the
                // learning rate must stay strictly positive.
                factor.powi((round / every_rounds) as i32).max(1e-12)
            }
            LrSchedule::Cosine { min_factor } => {
                assert!(
                    (0.0..=1.0).contains(&min_factor),
                    "cosine min factor must be in [0, 1]"
                );
                if total_rounds <= 1 {
                    return 1.0;
                }
                let progress = (round.min(total_rounds - 1)) as f32 / (total_rounds - 1) as f32;
                let cos = (std::f32::consts::PI * progress).cos();
                (min_factor + (1.0 - min_factor) * 0.5 * (1.0 + cos)).max(min_factor.max(1e-6))
            }
        }
    }
}

impl std::fmt::Display for LrSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LrSchedule::Constant => f.write_str("constant"),
            LrSchedule::Warmup {
                rounds,
                start_factor,
            } => write!(f, "warmup({rounds}r from {start_factor})"),
            LrSchedule::StepDecay {
                every_rounds,
                factor,
            } => write!(f, "step-decay(×{factor} every {every_rounds}r)"),
            LrSchedule::Cosine { min_factor } => write!(f, "cosine(to {min_factor})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one_everywhere() {
        for round in [0, 10, 1000] {
            assert_eq!(LrSchedule::Constant.factor_at(round, 100), 1.0);
        }
    }

    #[test]
    fn warmup_ramps_linearly_then_saturates() {
        let s = LrSchedule::Warmup {
            rounds: 4,
            start_factor: 0.2,
        };
        assert!((s.factor_at(0, 10) - 0.2).abs() < 1e-6);
        assert!((s.factor_at(2, 10) - 0.6).abs() < 1e-6);
        assert_eq!(s.factor_at(4, 10), 1.0);
        assert_eq!(s.factor_at(9, 10), 1.0);
    }

    #[test]
    fn step_decay_compounds() {
        let s = LrSchedule::StepDecay {
            every_rounds: 10,
            factor: 0.5,
        };
        assert_eq!(s.factor_at(0, 100), 1.0);
        assert_eq!(s.factor_at(9, 100), 1.0);
        assert_eq!(s.factor_at(10, 100), 0.5);
        assert_eq!(s.factor_at(35, 100), 0.125);
    }

    #[test]
    fn cosine_is_monotone_decreasing_and_positive() {
        let s = LrSchedule::Cosine { min_factor: 0.1 };
        let mut prev = f32::INFINITY;
        for round in 0..50 {
            let f = s.factor_at(round, 50);
            assert!(f > 0.0);
            assert!(f <= prev + 1e-6);
            prev = f;
        }
        assert!((s.factor_at(0, 50) - 1.0).abs() < 1e-6);
        assert!((s.factor_at(49, 50) - 0.1).abs() < 1e-5);
    }

    #[test]
    fn cosine_single_round_is_one() {
        assert_eq!(LrSchedule::Cosine { min_factor: 0.5 }.factor_at(0, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "warmup rounds must be positive")]
    fn warmup_zero_rounds_panics() {
        let _ = LrSchedule::Warmup {
            rounds: 0,
            start_factor: 0.5,
        }
        .factor_at(0, 10);
    }

    #[test]
    fn display_names() {
        assert_eq!(LrSchedule::Constant.to_string(), "constant");
        assert!(LrSchedule::Cosine { min_factor: 0.1 }
            .to_string()
            .contains("cosine"));
    }
}

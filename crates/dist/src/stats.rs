//! Summary statistics used throughout experiment reporting.

/// Arithmetic mean of a slice; `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(glmia_dist::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(glmia_dist::mean(&[]), 0.0);
/// ```
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice; `0.0` for slices shorter than 2.
///
/// # Examples
///
/// ```
/// let s = glmia_dist::std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert!((s - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Mean and population standard deviation computed in one pass.
#[must_use]
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    (mean(xs), std_dev(xs))
}

/// Linear-interpolated percentile (`p` in `[0, 100]`) of a slice.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
///
/// # Examples
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(glmia_dist::percentile(&xs, 50.0), 2.5);
/// assert_eq!(glmia_dist::percentile(&xs, 0.0), 1.0);
/// assert_eq!(glmia_dist::percentile(&xs, 100.0), 4.0);
/// ```
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0, 100]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A compact summary of a sample: count, mean, standard deviation, min, max.
///
/// # Examples
///
/// ```
/// use glmia_dist::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0]);
/// assert_eq!(s.count, 3);
/// assert_eq!(s.mean, 2.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when fewer than 2 observations).
    pub std_dev: f64,
    /// Minimum observation (0 when empty).
    pub min: f64,
    /// Maximum observation (0 when empty).
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice of observations.
    #[must_use]
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self::default();
        }
        let (mean, std_dev) = mean_std(xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self {
            count: xs.len(),
            mean,
            std_dev,
            min,
            max,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn summary_of_empty_is_default() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[4.0, 2.0, 6.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert!(s.std_dev > 0.0);
    }

    #[test]
    fn summary_display_nonempty() {
        let s = Summary::of(&[1.0]);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile of empty slice")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "out of [0, 100]")]
    fn percentile_out_of_range_panics() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&xs, 25.0), 15.0);
        assert_eq!(percentile(&xs, 75.0), 25.0);
    }

    #[test]
    fn percentile_sorts_input() {
        let xs = [30.0, 10.0, 20.0];
        assert_eq!(percentile(&xs, 50.0), 20.0);
    }
}

//! Error type for invalid distribution parameters.

use std::error::Error;
use std::fmt;

/// Error returned when a distribution is constructed with invalid parameters.
///
/// # Examples
///
/// ```
/// use glmia_dist::Normal;
///
/// let err = Normal::new(0.0, -1.0).unwrap_err();
/// assert!(err.to_string().contains("standard deviation"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistError {
    message: String,
}

impl DistError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for DistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_message() {
        let e = DistError::new("bad parameter");
        assert_eq!(e.to_string(), "bad parameter");
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<DistError>();
    }
}

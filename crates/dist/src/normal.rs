//! Normal distribution sampled via the Box–Muller transform.

use rand::Rng;

use crate::DistError;

/// A normal (Gaussian) distribution `N(mean, std_dev²)`.
///
/// Sampling uses the polar variant of the Box–Muller transform; one spare
/// variate is *not* cached so that sampling is a pure function of the RNG
/// stream, which keeps interleaved multi-component simulations reproducible
/// regardless of call order within a component.
///
/// # Examples
///
/// ```
/// use glmia_dist::Normal;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let n = Normal::new(0.0, 1.0).unwrap();
/// let xs: Vec<f64> = (0..1000).map(|_| n.sample(&mut rng)).collect();
/// let mean = xs.iter().sum::<f64>() / xs.len() as f64;
/// assert!(mean.abs() < 0.15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if `std_dev` is negative or not finite, or if
    /// `mean` is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistError> {
        if !mean.is_finite() {
            return Err(DistError::new(format!("mean must be finite, got {mean}")));
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(DistError::new(format!(
                "standard deviation must be finite and non-negative, got {std_dev}"
            )));
        }
        Ok(Self { mean, std_dev })
    }

    /// Creates the standard normal distribution `N(0, 1)`.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// The mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }

    /// Draws `n` samples into a fresh vector.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

impl Default for Normal {
    fn default() -> Self {
        Self::standard()
    }
}

/// Draws one standard-normal variate using the polar Box–Muller method.
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_negative_std_dev() {
        assert!(Normal::new(0.0, -0.1).is_err());
    }

    #[test]
    fn rejects_non_finite_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn zero_std_dev_is_constant() {
        let n = Normal::new(3.5, 0.0).unwrap();
        let mut r = rng(1);
        for _ in 0..10 {
            assert_eq!(n.sample(&mut r), 3.5);
        }
    }

    #[test]
    fn sample_statistics_match_parameters() {
        let n = Normal::new(10.0, 2.0).unwrap();
        let mut r = rng(2);
        let xs = n.sample_n(&mut r, 20_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.2, "variance was {var}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let n = Normal::standard();
        let a = n.sample_n(&mut rng(7), 16);
        let b = n.sample_n(&mut rng(7), 16);
        assert_eq!(a, b);
    }

    #[test]
    fn default_is_standard() {
        assert_eq!(Normal::default(), Normal::standard());
    }

    #[test]
    fn accessors_roundtrip() {
        let n = Normal::new(1.5, 0.5).unwrap();
        assert_eq!(n.mean(), 1.5);
        assert_eq!(n.std_dev(), 0.5);
    }
}

//! Gamma distribution via the Marsaglia–Tsang squeeze method.

use rand::Rng;

use crate::normal::standard_normal;
use crate::DistError;

/// A gamma distribution with shape `alpha` and scale `theta`.
///
/// Used as the building block for [`crate::Dirichlet`] sampling (label-skew
/// partitioning of training data across nodes). Sampling follows Marsaglia &
/// Tsang (2000); shapes below 1 use the standard boosting identity
/// `Gamma(α) = Gamma(α + 1) · U^{1/α}`.
///
/// # Examples
///
/// ```
/// use glmia_dist::Gamma;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let g = Gamma::new(2.0, 1.0).unwrap();
/// assert!(g.sample(&mut rng) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    alpha: f64,
    theta: f64,
}

impl Gamma {
    /// Creates a gamma distribution with shape `alpha` and scale `theta`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if either parameter is non-positive or not
    /// finite.
    pub fn new(alpha: f64, theta: f64) -> Result<Self, DistError> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(DistError::new(format!(
                "gamma shape must be finite and positive, got {alpha}"
            )));
        }
        if !theta.is_finite() || theta <= 0.0 {
            return Err(DistError::new(format!(
                "gamma scale must be finite and positive, got {theta}"
            )));
        }
        Ok(Self { alpha, theta })
    }

    /// The shape parameter.
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.alpha
    }

    /// The scale parameter.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.theta
    }

    /// Draws one sample. The result is strictly positive.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.theta * sample_standard(rng, self.alpha)
    }
}

/// Samples `Gamma(alpha, 1)`.
fn sample_standard<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> f64 {
    if alpha < 1.0 {
        // Boosting: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        return sample_standard(rng, alpha + 1.0) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v;
        }
        if u > 0.0 && u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
        assert!(Gamma::new(1.0, f64::NAN).is_err());
    }

    #[test]
    fn samples_are_positive() {
        let mut r = rng(11);
        for &alpha in &[0.1, 0.5, 1.0, 2.0, 10.0] {
            let g = Gamma::new(alpha, 1.0).unwrap();
            for _ in 0..200 {
                let x = g.sample(&mut r);
                assert!(x > 0.0, "alpha={alpha} produced {x}");
            }
        }
    }

    #[test]
    fn mean_matches_alpha_theta() {
        // E[Gamma(alpha, theta)] = alpha * theta.
        let mut r = rng(5);
        let g = Gamma::new(3.0, 2.0).unwrap();
        let n = 40_000;
        let mean = (0..n).map(|_| g.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 6.0).abs() < 0.15, "mean was {mean}");
    }

    #[test]
    fn small_shape_mean_matches() {
        let mut r = rng(6);
        let g = Gamma::new(0.2, 1.0).unwrap();
        let n = 60_000;
        let mean = (0..n).map(|_| g.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 0.2).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn accessors_roundtrip() {
        let g = Gamma::new(1.5, 2.5).unwrap();
        assert_eq!(g.shape(), 1.5);
        assert_eq!(g.scale(), 2.5);
    }
}

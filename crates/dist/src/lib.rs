//! Seeded probability distributions and summary statistics.
//!
//! The `glmia` workspace implements every stochastic component against a
//! caller-supplied [`rand::Rng`] so that whole experiments are reproducible
//! from a single master seed. This crate provides the handful of
//! distributions the paper's pipeline needs — normal (model initialization,
//! wake-up jitter, Gaussian-mixture data), gamma and Dirichlet (non-IID label
//! skew), categorical (label sampling) — plus the summary statistics used by
//! the experiment reports.
//!
//! Samplers are implemented from first principles (Box–Muller,
//! Marsaglia–Tsang) instead of pulling in `rand_distr`, keeping the
//! dependency set to the workspace's allowed crates.
//!
//! # Examples
//!
//! ```
//! use glmia_dist::{Normal, Dirichlet};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let n = Normal::new(100.0, 10.0).unwrap();
//! let wait = n.sample(&mut rng);
//! assert!(wait.is_finite());
//!
//! let d = Dirichlet::symmetric(0.5, 3).unwrap();
//! let p = d.sample(&mut rng);
//! assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod categorical;
mod dirichlet;
mod error;
mod gamma;
mod normal;
mod stats;

pub use categorical::Categorical;
pub use dirichlet::Dirichlet;
pub use error::DistError;
pub use gamma::Gamma;
pub use normal::Normal;
pub use stats::{mean, mean_std, percentile, std_dev, Summary};

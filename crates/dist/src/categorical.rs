//! Categorical distribution over `0..k` with arbitrary non-negative weights.

use rand::Rng;

use crate::DistError;

/// A categorical distribution over indices `0..k`.
///
/// Used when sampling labels according to a (possibly Dirichlet-drawn)
/// proportion vector. Sampling is `O(log k)` via a precomputed cumulative
/// weight table.
///
/// # Examples
///
/// ```
/// use glmia_dist::Categorical;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let c = Categorical::new(&[0.1, 0.0, 0.9]).unwrap();
/// let i = c.sample(&mut rng);
/// assert!(i == 0 || i == 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cumulative: Vec<f64>,
    total: f64,
}

impl Categorical {
    /// Creates a categorical distribution from unnormalized weights.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if `weights` is empty, contains a negative or
    /// non-finite weight, or all weights are zero.
    pub fn new(weights: &[f64]) -> Result<Self, DistError> {
        if weights.is_empty() {
            return Err(DistError::new("categorical requires at least one weight"));
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(DistError::new(format!(
                    "categorical weights must be finite and non-negative, got {w}"
                )));
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(DistError::new("categorical weights must not all be zero"));
        }
        Ok(Self { cumulative, total })
    }

    /// The number of categories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution has zero categories (never true for a
    /// successfully constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen::<f64>() * self.total;
        // partition_point returns the first index whose cumulative weight
        // exceeds u; zero-weight categories are skipped because their
        // cumulative value equals their predecessor's.
        let idx = self.cumulative.partition_point(|&c| c <= u);
        idx.min(self.cumulative.len() - 1)
    }

    /// Draws `n` category indices.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<usize> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[-1.0, 2.0]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn zero_weight_categories_are_never_drawn() {
        let c = Categorical::new(&[0.0, 1.0, 0.0, 1.0, 0.0]).unwrap();
        let mut r = rng(3);
        for _ in 0..1000 {
            let i = c.sample(&mut r);
            assert!(i == 1 || i == 3, "drew zero-weight category {i}");
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let c = Categorical::new(&[1.0, 3.0]).unwrap();
        let mut r = rng(4);
        let n = 40_000;
        let ones = c.sample_n(&mut r, n).iter().filter(|&&i| i == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac was {frac}");
    }

    #[test]
    fn single_category_always_zero() {
        let c = Categorical::new(&[2.5]).unwrap();
        let mut r = rng(5);
        assert!(c.sample_n(&mut r, 100).iter().all(|&i| i == 0));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }
}

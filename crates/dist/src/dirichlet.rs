//! Dirichlet distribution built from independent gamma variates.

use rand::Rng;

use crate::{DistError, Gamma};

/// A Dirichlet distribution over the probability simplex.
///
/// The paper uses `Dir_N(β)` to skew label proportions across nodes
/// (Section 3.6): lower `β` concentrates each label's mass on fewer nodes,
/// yielding a more heterogeneous (non-IID) partition.
///
/// # Examples
///
/// ```
/// use glmia_dist::Dirichlet;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let d = Dirichlet::symmetric(0.1, 8).unwrap();
/// let p = d.sample(&mut rng);
/// assert_eq!(p.len(), 8);
/// assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dirichlet {
    alphas: Vec<f64>,
}

impl Dirichlet {
    /// Creates a Dirichlet distribution with the given concentration vector.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if fewer than two concentrations are given or
    /// any concentration is non-positive or not finite.
    pub fn new(alphas: Vec<f64>) -> Result<Self, DistError> {
        if alphas.len() < 2 {
            return Err(DistError::new(
                "dirichlet requires at least two concentration parameters",
            ));
        }
        for &a in &alphas {
            if !a.is_finite() || a <= 0.0 {
                return Err(DistError::new(format!(
                    "dirichlet concentrations must be finite and positive, got {a}"
                )));
            }
        }
        Ok(Self { alphas })
    }

    /// Creates a symmetric Dirichlet with concentration `beta` in `dim`
    /// dimensions — the `Dir_N(β)` of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if `dim < 2` or `beta` is invalid.
    pub fn symmetric(beta: f64, dim: usize) -> Result<Self, DistError> {
        Self::new(vec![beta; dim])
    }

    /// The number of dimensions of the simplex.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.alphas.len()
    }

    /// The concentration parameters.
    #[must_use]
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Draws one probability vector. The result sums to 1 and every entry is
    /// non-negative (entries can underflow to exactly zero for tiny
    /// concentrations; the vector is renormalized defensively).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut draws: Vec<f64> = self
            .alphas
            .iter()
            .map(|&a| {
                // Constructor validated alpha > 0, so Gamma::new cannot fail.
                Gamma::new(a, 1.0).expect("validated alpha").sample(rng)
            })
            .collect();
        let mut total: f64 = draws.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            // Pathological underflow (possible only for extremely small
            // alphas): fall back to a uniform vector rather than NaN.
            let uniform = 1.0 / draws.len() as f64;
            draws.fill(uniform);
            total = 1.0;
        }
        for d in &mut draws {
            *d /= total;
        }
        draws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Dirichlet::new(vec![1.0]).is_err());
        assert!(Dirichlet::new(vec![1.0, 0.0]).is_err());
        assert!(Dirichlet::new(vec![1.0, -1.0]).is_err());
        assert!(Dirichlet::new(vec![1.0, f64::NAN]).is_err());
        assert!(Dirichlet::symmetric(0.5, 1).is_err());
    }

    #[test]
    fn samples_live_on_the_simplex() {
        let mut r = rng(9);
        for &beta in &[0.05, 0.1, 0.5, 1.0, 10.0] {
            let d = Dirichlet::symmetric(beta, 6).unwrap();
            for _ in 0..100 {
                let p = d.sample(&mut r);
                assert_eq!(p.len(), 6);
                assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
            }
        }
    }

    #[test]
    fn low_beta_concentrates_mass() {
        // With beta = 0.05 most of the mass should sit on one coordinate;
        // with beta = 50 the vector should be close to uniform.
        let mut r = rng(10);
        let sharp = Dirichlet::symmetric(0.05, 10).unwrap();
        let flat = Dirichlet::symmetric(50.0, 10).unwrap();
        let mut sharp_max = 0.0;
        let mut flat_max = 0.0;
        let runs = 200;
        for _ in 0..runs {
            sharp_max += sharp.sample(&mut r).iter().cloned().fold(0.0, f64::max);
            flat_max += flat.sample(&mut r).iter().cloned().fold(0.0, f64::max);
        }
        sharp_max /= runs as f64;
        flat_max /= runs as f64;
        assert!(
            sharp_max > 0.6,
            "expected concentrated mass, max avg was {sharp_max}"
        );
        assert!(
            flat_max < 0.25,
            "expected near-uniform mass, max avg was {flat_max}"
        );
    }

    #[test]
    fn asymmetric_mean_matches_alphas() {
        // E[p_i] = alpha_i / sum(alpha).
        let mut r = rng(12);
        let d = Dirichlet::new(vec![1.0, 2.0, 7.0]).unwrap();
        let runs = 20_000;
        let mut acc = [0.0f64; 3];
        for _ in 0..runs {
            let p = d.sample(&mut r);
            for (a, x) in acc.iter_mut().zip(&p) {
                *a += x;
            }
        }
        for a in &mut acc {
            *a /= runs as f64;
        }
        assert!((acc[0] - 0.1).abs() < 0.01, "{acc:?}");
        assert!((acc[1] - 0.2).abs() < 0.01, "{acc:?}");
        assert!((acc[2] - 0.7).abs() < 0.01, "{acc:?}");
    }

    #[test]
    fn accessors_roundtrip() {
        let d = Dirichlet::symmetric(0.3, 4).unwrap();
        assert_eq!(d.dim(), 4);
        assert_eq!(d.alphas(), &[0.3, 0.3, 0.3, 0.3]);
    }
}

//! Canonical grid expansion: scenario → duplicate-free, ordered cells.
//!
//! The cell order is a pure function of the scenario *content*, not its
//! file layout: axes iterate in sorted-name order (the odometer's most
//! significant digit is the alphabetically first axis), values in file
//! order within each axis, and seeds (sorted ascending) innermost.
//! Reordering `[axes]` declarations or whole tables in the file therefore
//! changes nothing — the property the sweep proptests pin.
//!
//! Every cell carries a validated [`ExperimentConfig`] plus its
//! fingerprint; cells whose `(fingerprint, seed)` collide with an earlier
//! cell (e.g. two spellings of the same attacker spec) are dropped,
//! keeping the first occurrence, so the grid is duplicate-free by
//! construction. The grid hash — FNV-1a over the scenario name and every
//! surviving cell's `(position, fingerprint, seed)` — is what a resumed
//! checkpoint must match.

use std::collections::BTreeMap;

use glmia_core::ExperimentConfig;
use glmia_trace::fnv1a;

use crate::scenario::{Scenario, ScenarioError};

/// One cell of the expanded grid.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Position in canonical grid order (0-based, after dedup).
    pub index: usize,
    /// The seed this cell runs under.
    pub seed: u64,
    /// Axis name → canonical value label.
    pub axes: BTreeMap<String, String>,
    /// The fully resolved, validated config.
    pub config: ExperimentConfig,
    /// `config.fingerprint()`, cached.
    pub config_hash: u64,
}

/// The expanded grid.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Scenario name.
    pub scenario: String,
    /// FNV-1a hash binding checkpoints to this exact grid.
    pub scenario_hash: u64,
    /// Axis names in canonical (sorted) order.
    pub axis_names: Vec<String>,
    /// Cells in canonical order.
    pub cells: Vec<SweepCell>,
}

impl SweepGrid {
    /// Expands a scenario into its grid, building and validating every
    /// cell config up front (so a sweep never fails halfway through on a
    /// bad corner of the grid).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Invalid`] naming the first cell whose config
    /// fails validation.
    pub fn expand(scenario: &Scenario) -> Result<Self, ScenarioError> {
        let axes = scenario.axes();
        let mut cells: Vec<SweepCell> = Vec::new();
        let mut seen: Vec<(u64, u64)> = Vec::new();
        // Odometer over axis value indices; empty axes list = one combo.
        let mut digits = vec![0usize; axes.len()];
        loop {
            let assignment: BTreeMap<String, crate::scenario::Knob> = axes
                .iter()
                .zip(&digits)
                .map(|(axis, &i)| (axis.name.clone(), axis.values[i].clone()))
                .collect();
            let labels: BTreeMap<String, String> = assignment
                .iter()
                .map(|(name, knob)| (name.clone(), knob.label()))
                .collect();
            for &seed in scenario.seeds() {
                let config = scenario.config_for(&assignment, seed).map_err(|message| {
                    ScenarioError::Invalid {
                        cell: cell_label(&labels, seed),
                        message,
                    }
                })?;
                let config_hash = config.fingerprint();
                if seen.contains(&(config_hash, seed)) {
                    continue; // duplicate spelling of an existing cell
                }
                seen.push((config_hash, seed));
                cells.push(SweepCell {
                    index: cells.len(),
                    seed,
                    axes: labels.clone(),
                    config,
                    config_hash,
                });
            }
            // Advance the odometer: last axis (alphabetically greatest)
            // is the fastest digit.
            let mut pos = digits.len();
            loop {
                if pos == 0 {
                    return Ok(Self::assemble(scenario, cells));
                }
                pos -= 1;
                digits[pos] += 1;
                if digits[pos] < axes[pos].values.len() {
                    break;
                }
                digits[pos] = 0;
            }
        }
    }

    fn assemble(scenario: &Scenario, cells: Vec<SweepCell>) -> Self {
        let mut descriptor = String::new();
        descriptor.push_str(scenario.name());
        descriptor.push('\n');
        for cell in &cells {
            descriptor.push_str(&format!(
                "{}:{:016x}:{}\n",
                cell.index, cell.config_hash, cell.seed
            ));
        }
        Self {
            scenario: scenario.name().to_string(),
            scenario_hash: fnv1a(descriptor.as_bytes()),
            axis_names: scenario.axis_names(),
            cells,
        }
    }

    /// The grid hash as the 16-hex-digit string checkpoints store.
    #[must_use]
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.scenario_hash)
    }
}

/// Human label for a cell: `protocol=samo,seed=42`.
fn cell_label(labels: &BTreeMap<String, String>, seed: u64) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(name, value)| format!("{name}={value}"))
        .collect();
    parts.push(format!("seed={seed}"));
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    const TWO_AXES: &str = "[scenario]\nname = \"g\"\npreset = \"quick\"\nnodes = 6\nk = 2\nrounds = 2\neval-every = 1\n\n[seeds]\nlist = [1, 2]\n\n[axes]\nprotocol = [\"base\", \"samo\"]\ntopology = [\"static\", \"dynamic\"]\n";

    #[test]
    fn expansion_is_odometer_ordered_with_seeds_innermost() {
        let grid = SweepGrid::expand(&Scenario::parse(TWO_AXES).unwrap()).unwrap();
        assert_eq!(grid.cells.len(), 8);
        assert_eq!(grid.axis_names, vec!["protocol", "topology"]);
        let first: Vec<(String, String, u64)> = grid
            .cells
            .iter()
            .map(|c| {
                (
                    c.axes["protocol"].clone(),
                    c.axes["topology"].clone(),
                    c.seed,
                )
            })
            .collect();
        assert_eq!(first[0], ("base".into(), "static".into(), 1));
        assert_eq!(first[1], ("base".into(), "static".into(), 2));
        assert_eq!(first[2], ("base".into(), "dynamic".into(), 1));
        assert_eq!(first[4], ("samo".into(), "static".into(), 1));
        // Indices are dense and in order.
        for (i, cell) in grid.cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
    }

    #[test]
    fn axis_declaration_order_does_not_change_the_grid() {
        let reordered = TWO_AXES.replace(
            "protocol = [\"base\", \"samo\"]\ntopology = [\"static\", \"dynamic\"]",
            "topology = [\"static\", \"dynamic\"]\nprotocol = [\"base\", \"samo\"]",
        );
        let a = SweepGrid::expand(&Scenario::parse(TWO_AXES).unwrap()).unwrap();
        let b = SweepGrid::expand(&Scenario::parse(&reordered).unwrap()).unwrap();
        assert_eq!(a.scenario_hash, b.scenario_hash);
        let pairs = |g: &SweepGrid| -> Vec<(u64, u64)> {
            g.cells.iter().map(|c| (c.config_hash, c.seed)).collect()
        };
        assert_eq!(pairs(&a), pairs(&b));
    }

    #[test]
    fn equivalent_spellings_deduplicate() {
        let text = "[scenario]\nname = \"g\"\npreset = \"quick\"\nnodes = 6\nk = 2\nrounds = 2\neval-every = 1\n\n[seeds]\nlist = [1]\n\n[axes]\nattacker = [\"neighbors:0,1,2\", \"neighbors:0..3\"]\n";
        let grid = SweepGrid::expand(&Scenario::parse(text).unwrap()).unwrap();
        assert_eq!(grid.cells.len(), 1, "same attacker spelled twice");
    }

    #[test]
    fn invalid_cells_name_their_coordinates() {
        let text = "[scenario]\nname = \"g\"\npreset = \"quick\"\nnodes = 4\nrounds = 2\neval-every = 1\n\n[seeds]\nlist = [1]\n\n[axes]\nk = [2, 9]\n";
        let err = SweepGrid::expand(&Scenario::parse(text).unwrap()).unwrap_err();
        match err {
            ScenarioError::Invalid { cell, .. } => {
                assert!(cell.contains("k=9"), "{cell}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }
}

//! Dependency-free parser for the scenario files' TOML subset.
//!
//! The workspace takes no external TOML dependency (the same stance as
//! `xtask`'s `lint.toml` reader), so scenarios use a deliberately small,
//! strictly validated subset:
//!
//! * `[section]` headers (no dotted or repeated sections);
//! * `key = value` pairs where a value is a double-quoted string (with
//!   `\"` and `\\` escapes), an integer, a float, a boolean, or an array
//!   of those (arrays may span multiple lines, trailing commas allowed);
//! * `#` comments anywhere, including inside arrays (a `#` inside quotes
//!   is content).
//!
//! Everything else — duplicate keys, bare words, unterminated strings or
//! arrays, non-finite floats — is a [`TomlError`] with a 1-based line
//! number, so a typo fails the parse instead of silently changing a grid.

use std::collections::BTreeMap;
use std::fmt;

/// A scalar or array value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A double-quoted string.
    Str(String),
    /// A signed integer.
    Int(i64),
    /// A finite float.
    Float(f64),
    /// `true` or `false`.
    Bool(bool),
    /// A (possibly heterogeneous) array; homogeneity is enforced by the
    /// scenario layer where the expected element type is known.
    Array(Vec<TomlValue>),
}

impl TomlValue {
    /// Human-readable type name for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Array(_) => "array",
        }
    }
}

/// One `key = value` entry with the line its key appeared on.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlEntry {
    /// The parsed value.
    pub value: TomlValue,
    /// 1-based line of the key.
    pub line: usize,
}

/// One `[section]` with the line of its header.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TomlSection {
    /// 1-based line of the `[section]` header.
    pub line: usize,
    /// Entries keyed by name.
    pub entries: BTreeMap<String, TomlEntry>,
}

/// A parsed scenario document: section name → section.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TomlDoc {
    sections: BTreeMap<String, TomlSection>,
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

impl TomlDoc {
    /// Parses the subset described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a line-numbered [`TomlError`] on any construct outside the
    /// subset.
    pub fn parse(text: &str) -> Result<Self, TomlError> {
        let mut sections: BTreeMap<String, TomlSection> = BTreeMap::new();
        let mut current: Option<String> = None;
        let mut lines = text.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
                let name = name.trim();
                if name.is_empty() {
                    return Err(TomlError {
                        line: line_no,
                        message: "empty section name".to_string(),
                    });
                }
                if !name
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
                {
                    return Err(TomlError {
                        line: line_no,
                        message: format!("invalid section name `{name}`"),
                    });
                }
                if sections.contains_key(name) {
                    return Err(TomlError {
                        line: line_no,
                        message: format!("duplicate section `[{name}]`"),
                    });
                }
                sections.insert(
                    name.to_string(),
                    TomlSection {
                        line: line_no,
                        entries: BTreeMap::new(),
                    },
                );
                current = Some(name.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(TomlError {
                    line: line_no,
                    message: format!("expected `key = value` or `[section]`, got `{line}`"),
                });
            };
            let key = key.trim();
            if key.is_empty() {
                return Err(TomlError {
                    line: line_no,
                    message: "empty key".to_string(),
                });
            }
            let Some(section) = current.clone() else {
                return Err(TomlError {
                    line: line_no,
                    message: format!("key `{key}` outside any [section]"),
                });
            };
            // Multi-line arrays: accumulate until brackets balance outside
            // strings, exactly like lint.toml's reader.
            let mut buf = value.trim().to_string();
            while buf.starts_with('[') && !array_is_closed(&buf) {
                let Some((_, next_raw)) = lines.next() else {
                    return Err(TomlError {
                        line: line_no,
                        message: format!("unterminated array for key `{key}`"),
                    });
                };
                buf.push(' ');
                buf.push_str(strip_comment(next_raw).trim());
            }
            let value = parse_value(&buf).map_err(|message| TomlError {
                line: line_no,
                message,
            })?;
            // `current` is only ever set right after inserting its
            // section, so this never actually creates a default entry.
            let entries = &mut sections.entry(section.clone()).or_default().entries;
            if entries.contains_key(key) {
                return Err(TomlError {
                    line: line_no,
                    message: format!("duplicate key `{key}` in section `[{section}]`"),
                });
            }
            entries.insert(
                key.to_string(),
                TomlEntry {
                    value,
                    line: line_no,
                },
            );
        }
        Ok(Self { sections })
    }

    /// The section named `name`, when present.
    #[must_use]
    pub fn section(&self, name: &str) -> Option<&TomlSection> {
        self.sections.get(name)
    }

    /// The entry at `[section] key`, when present.
    #[must_use]
    pub fn get(&self, section: &str, key: &str) -> Option<&TomlEntry> {
        self.sections.get(section).and_then(|s| s.entries.get(key))
    }

    /// Every section, sorted by name.
    pub fn sections(&self) -> impl Iterator<Item = (&str, &TomlSection)> {
        self.sections.iter().map(|(name, s)| (name.as_str(), s))
    }
}

/// Drops a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            _ if escaped => escaped = false,
            b'\\' if in_string => escaped = true,
            b'"' => in_string = !in_string,
            b'#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Whether `buf` (comment-stripped) closes the `[` array it opens.
fn array_is_closed(buf: &str) -> bool {
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    for b in buf.bytes() {
        match b {
            _ if escaped => escaped = false,
            b'\\' if in_string => escaped = true,
            b'"' => in_string = !in_string,
            b'[' if !in_string => depth += 1,
            b']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

/// Parses one complete value (scalar or array collapsed onto one line).
fn parse_value(text: &str) -> Result<TomlValue, String> {
    let mut cursor = Cursor {
        bytes: text.as_bytes(),
        pos: 0,
    };
    cursor.skip_ws();
    let value = cursor.value()?;
    cursor.skip_ws();
    if cursor.pos != cursor.bytes.len() {
        return Err(format!(
            "trailing characters after value: `{}`",
            &text[cursor.pos..]
        ));
    }
    Ok(value)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<TomlValue, String> {
        match self.bytes.get(self.pos) {
            None => Err("expected a value".to_string()),
            Some(b'"') => self.string(),
            Some(b'[') => self.array(),
            Some(_) => self.scalar(),
        }
    }

    fn string(&mut self) -> Result<TomlValue, String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(TomlValue::Str(out));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        other => {
                            return Err(format!(
                                "unsupported escape `\\{}`",
                                other.map_or(String::new(), |b| (*b as char).to_string())
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<TomlValue, String> {
        self.pos += 1; // opening bracket
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                None => return Err("unterminated array".to_string()),
                Some(b']') => {
                    self.pos += 1;
                    return Ok(TomlValue::Array(items));
                }
                Some(_) => {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {}
                        _ => return Err("expected `,` or `]` in array".to_string()),
                    }
                }
            }
        }
    }

    fn scalar(&mut self) -> Result<TomlValue, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| !b.is_ascii_whitespace() && b != b',' && b != b']')
        {
            self.pos += 1;
        }
        let word = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 value".to_string())?;
        match word {
            "true" => return Ok(TomlValue::Bool(true)),
            "false" => return Ok(TomlValue::Bool(false)),
            _ => {}
        }
        if let Ok(int) = word.parse::<i64>() {
            return Ok(TomlValue::Int(int));
        }
        if let Ok(float) = word.parse::<f64>() {
            if !float.is_finite() {
                return Err(format!("non-finite float `{word}`"));
            }
            return Ok(TomlValue::Float(float));
        }
        Err(format!(
            "expected a string, number, boolean or array, got `{word}` \
             (strings must be double-quoted)"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_scalar_types_and_arrays() {
        let doc = TomlDoc::parse(
            "[scenario]\nname = \"demo\" # trailing comment\nnodes = 16\nbeta = 0.1\nfast = true\n\n[axes]\nchurn = [0.0, 0.1, 0.3]\nattacker = [\n  \"omniscient\",  # full vantage\n  \"coalition:0..4\",\n]\n",
        )
        .unwrap();
        assert_eq!(
            doc.get("scenario", "name").unwrap().value,
            TomlValue::Str("demo".to_string())
        );
        assert_eq!(
            doc.get("scenario", "nodes").unwrap().value,
            TomlValue::Int(16)
        );
        assert_eq!(
            doc.get("scenario", "beta").unwrap().value,
            TomlValue::Float(0.1)
        );
        assert_eq!(
            doc.get("scenario", "fast").unwrap().value,
            TomlValue::Bool(true)
        );
        assert_eq!(
            doc.get("axes", "churn").unwrap().value,
            TomlValue::Array(vec![
                TomlValue::Float(0.0),
                TomlValue::Float(0.1),
                TomlValue::Float(0.3)
            ])
        );
        assert_eq!(
            doc.get("axes", "attacker").unwrap().value,
            TomlValue::Array(vec![
                TomlValue::Str("omniscient".to_string()),
                TomlValue::Str("coalition:0..4".to_string())
            ])
        );
        assert_eq!(doc.get("axes", "attacker").unwrap().line, 9);
    }

    #[test]
    fn rejects_duplicates_with_line_numbers() {
        let err = TomlDoc::parse("[a]\nx = 1\nx = 2\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("duplicate key"));
        let err = TomlDoc::parse("[a]\n[a]\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("duplicate section"));
    }

    #[test]
    fn rejects_bare_words_and_syntax_errors() {
        let err = TomlDoc::parse("[a]\nx = yes\n").unwrap_err();
        assert!(err.message.contains("double-quoted"), "{}", err.message);
        let err = TomlDoc::parse("x = 1\n").unwrap_err();
        assert!(err.message.contains("outside any"));
        let err = TomlDoc::parse("[a]\njust words\n").unwrap_err();
        assert!(err.message.contains("expected `key = value`"));
        let err = TomlDoc::parse("[a]\nx = \"open\n").unwrap_err();
        assert!(err.message.contains("unterminated string"));
        let err = TomlDoc::parse("[a]\nx = [1, 2\n").unwrap_err();
        assert!(err.message.contains("unterminated array"));
        let err = TomlDoc::parse("[a]\nx = 1 2\n").unwrap_err();
        assert!(err.message.contains("trailing characters"));
        let err = TomlDoc::parse("[a]\nx = inf\n").unwrap_err();
        assert!(err.message.contains("non-finite"));
    }

    #[test]
    fn hash_and_escapes_inside_strings_are_content() {
        let doc = TomlDoc::parse("[a]\nx = \"a#b\"\ny = \"q\\\"q\"\n").unwrap();
        assert_eq!(
            doc.get("a", "x").unwrap().value,
            TomlValue::Str("a#b".into())
        );
        assert_eq!(
            doc.get("a", "y").unwrap().value,
            TomlValue::Str("q\"q".into())
        );
    }

    #[test]
    fn negative_numbers_and_exponents_parse() {
        let doc = TomlDoc::parse("[a]\nx = -3\ny = 1e-3\n").unwrap();
        assert_eq!(doc.get("a", "x").unwrap().value, TomlValue::Int(-3));
        assert_eq!(doc.get("a", "y").unwrap().value, TomlValue::Float(1e-3));
    }
}

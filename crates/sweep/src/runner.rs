//! Checkpointed worker pool: run the grid, survive kills, aggregate.
//!
//! Cells are claimed from a shared counter by `N` workers; each cell runs
//! single-threaded through [`run_experiment_traced`], so results are
//! independent of which worker ran it and of `N` (the per-(seed, round,
//! node) derived-RNG contract). The coordinating thread is the only
//! writer of `checkpoint.jsonl`: it appends and flushes one record per
//! completed cell, in completion order — the one artifact whose byte
//! order may vary with worker count. The final `sweep.json` / `report.md`
//! are rendered from records sorted by cell index, so they are
//! byte-identical at any worker count and across any kill/resume split.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

use glmia_core::{run_experiment_traced, Parallelism};
use glmia_trace::{
    read_checkpoint, CellRecord, CellSummary, CheckpointReadError, CheckpointWriter,
    SweepHeaderRecord, TraceEvent, SWEEP_SCHEMA_VERSION,
};

use crate::grid::{SweepCell, SweepGrid};
use crate::scenario::{Scenario, ScenarioError};

/// Why a sweep failed, partitioned by the CLI exit-code contract.
#[derive(Debug)]
pub enum SweepError {
    /// Scenario parse/validation problem → exit 1.
    Scenario(ScenarioError),
    /// The checkpoint in the output directory is corrupt, has the wrong
    /// schema, or belongs to a different scenario → exit 2.
    Checkpoint(String),
    /// A cell failed at runtime, or artifacts could not be written →
    /// exit 1.
    Runtime(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Scenario(err) => write!(f, "{err}"),
            SweepError::Checkpoint(message) => write!(f, "{message}"),
            SweepError::Runtime(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<ScenarioError> for SweepError {
    fn from(err: ScenarioError) -> Self {
        SweepError::Scenario(err)
    }
}

/// What a finished sweep did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Cells in the grid.
    pub total: usize,
    /// Cells executed by this invocation.
    pub ran: usize,
    /// Cells reused from the checkpoint.
    pub resumed: usize,
    /// Path of the columnar aggregate.
    pub sweep_json: PathBuf,
    /// Path of the markdown report.
    pub report_md: PathBuf,
}

/// Runs (or resumes) a sweep into `out_dir` with `workers` cell workers.
///
/// Existing progress in `out_dir/checkpoint.jsonl` is validated against
/// the expanded grid and reused; only unfinished cells execute. Progress
/// lines go to stderr when `progress` is set.
///
/// # Errors
///
/// [`SweepError::Scenario`] on grid expansion failures,
/// [`SweepError::Checkpoint`] on corrupt or stale checkpoints,
/// [`SweepError::Runtime`] on cell or I/O failures.
pub fn run_sweep(
    scenario: &Scenario,
    out_dir: &Path,
    workers: Parallelism,
    progress: bool,
) -> Result<SweepOutcome, SweepError> {
    let grid = SweepGrid::expand(scenario)?;
    std::fs::create_dir_all(out_dir)
        .map_err(|e| SweepError::Runtime(format!("creating {}: {e}", out_dir.display())))?;
    let checkpoint_path = out_dir.join("checkpoint.jsonl");
    let header = SweepHeaderRecord {
        schema: SWEEP_SCHEMA_VERSION,
        scenario: grid.scenario.clone(),
        scenario_hash: grid.hash_hex(),
        cells: grid.cells.len(),
    };

    // Load prior progress, if any, and bind it to this grid.
    let mut completed: BTreeMap<usize, CellRecord> = BTreeMap::new();
    if checkpoint_path.exists() {
        let file = read_checkpoint(&checkpoint_path).map_err(|err| match err {
            CheckpointReadError::Io(e) => SweepError::Runtime(format!("reading checkpoint: {e}")),
            other => SweepError::Checkpoint(format!("{}: {other}", checkpoint_path.display())),
        })?;
        if file.header.scenario_hash != header.scenario_hash {
            return Err(SweepError::Checkpoint(format!(
                "{}: checkpoint belongs to scenario `{}` (grid hash {}), but this \
                 scenario expands to grid hash {} — remove the output directory or \
                 fix the scenario",
                checkpoint_path.display(),
                file.header.scenario,
                file.header.scenario_hash,
                header.scenario_hash,
            )));
        }
        for record in file.cells {
            let stale = grid.cells.get(record.cell).is_none_or(|cell| {
                record.config_hash != format!("{:016x}", cell.config_hash)
                    || record.seed != cell.seed
            });
            if stale {
                return Err(SweepError::Checkpoint(format!(
                    "{}: cell {} does not match the expanded grid (stale config hash)",
                    checkpoint_path.display(),
                    record.cell,
                )));
            }
            completed.insert(record.cell, record);
        }
    }
    let resumed = completed.len();

    let pending: Vec<usize> = grid
        .cells
        .iter()
        .map(|c| c.index)
        .filter(|i| !completed.contains_key(i))
        .collect();

    let records: Vec<CellRecord> = completed.values().cloned().collect();
    let mut writer = if resumed > 0 {
        CheckpointWriter::resume(&checkpoint_path, &header, &records)
    } else {
        CheckpointWriter::create(&checkpoint_path, &header)
    }
    .map_err(|e| SweepError::Runtime(format!("writing checkpoint: {e}")))?;

    if progress && resumed > 0 {
        eprintln!(
            "[sweep] resuming {}: {resumed}/{} cells already complete",
            grid.scenario,
            grid.cells.len()
        );
    }

    // Fan the pending cells across workers; the coordinator owns the
    // checkpoint and appends records in completion order.
    let worker_count = workers.threads().clamp(1, pending.len().max(1));
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<Result<CellRecord, String>>();
    let mut first_error: Option<String> = None;
    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            let tx = tx.clone();
            let grid = &grid;
            let pending = &pending;
            let next = &next;
            let abort = &abort;
            scope.spawn(move || loop {
                if abort.load(Ordering::SeqCst) {
                    break;
                }
                let slot = next.fetch_add(1, Ordering::SeqCst);
                let Some(&index) = pending.get(slot) else {
                    break;
                };
                let outcome = run_cell(&grid.cells[index]);
                if tx.send(outcome).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut done = resumed;
        for outcome in rx {
            match outcome {
                Ok(record) => {
                    if let Err(e) = writer.append(&record) {
                        abort.store(true, Ordering::SeqCst);
                        first_error.get_or_insert(format!("writing checkpoint: {e}"));
                        continue;
                    }
                    done += 1;
                    if progress {
                        eprintln!(
                            "[sweep] cell {}/{} done ({})",
                            done,
                            grid.cells.len(),
                            describe(&grid.cells[record.cell]),
                        );
                    }
                    completed.insert(record.cell, record);
                }
                Err(message) => {
                    abort.store(true, Ordering::SeqCst);
                    first_error.get_or_insert(message);
                }
            }
        }
    });
    if let Some(message) = first_error {
        return Err(SweepError::Runtime(message));
    }

    // Aggregate in cell order — byte-identical at any worker count and
    // across any kill/resume split.
    let ordered: Vec<CellRecord> = completed.values().cloned().collect();
    let sweep_json = out_dir.join("sweep.json");
    let report_md = out_dir.join("report.md");
    std::fs::write(
        &sweep_json,
        glmia_metrics::render_sweep_json(&header, &grid.axis_names, &ordered),
    )
    .map_err(|e| SweepError::Runtime(format!("writing sweep.json: {e}")))?;
    std::fs::write(
        &report_md,
        glmia_metrics::render_sweep_report(&header, &grid.axis_names, &ordered),
    )
    .map_err(|e| SweepError::Runtime(format!("writing report.md: {e}")))?;

    Ok(SweepOutcome {
        total: grid.cells.len(),
        ran: grid.cells.len() - resumed,
        resumed,
        sweep_json,
        report_md,
    })
}

/// Runs one cell and folds its result into a checkpoint record. Public
/// so benches can execute scenario-defined grids cell by cell.
///
/// # Errors
///
/// The experiment's error, stringified.
pub fn run_cell(cell: &SweepCell) -> Result<CellRecord, String> {
    let (result, trace) = run_experiment_traced(&cell.config)
        .map_err(|e| format!("cell {} ({}): {e}", cell.index, describe(cell)))?;
    let final_round = result.rounds.last();
    let best = result.best_point();
    let mut lambda2_analytic = 0.0;
    let mut lambda2_cumulative = None;
    let mut crashes = 0u64;
    let mut observed_nodes = None;
    for event in trace.events() {
        match event {
            TraceEvent::Topology(t) => lambda2_analytic = t.lambda2_analytic,
            TraceEvent::Mixing(m) => lambda2_cumulative = Some(m.lambda2_cumulative),
            TraceEvent::Threat(t) => observed_nodes = Some(t.observed_nodes),
            TraceEvent::Fault(f) if matches!(f.kind, glmia_trace::FaultRecordKind::Crash) => {
                crashes += 1;
            }
            _ => {}
        }
    }
    let totals = trace.totals();
    let summary = CellSummary {
        final_test_accuracy: final_round.map_or(0.0, |r| r.test_accuracy.mean),
        final_train_accuracy: final_round.map_or(0.0, |r| r.train_accuracy.mean),
        final_gen_error: final_round.map_or(0.0, |r| r.gen_error.mean),
        final_mia_vulnerability: final_round.map_or(0.0, |r| r.mia_vulnerability.mean),
        final_mia_auc: final_round.map_or(0.0, |r| r.mia_auc.mean),
        best_round: best.as_ref().map_or(0, |p| p.round),
        best_test_accuracy: best.as_ref().map_or(0.0, |p| p.utility),
        mia_vulnerability_at_best: best.as_ref().map_or(0.0, |p| p.vulnerability),
        lambda2_analytic,
        lambda2_cumulative,
        messages_sent: result.messages_sent,
        messages_dropped: result.messages_dropped,
        crashes,
        observed_nodes: observed_nodes.unwrap_or(cell.config.nodes()),
        attacker: cell
            .config
            .attacker()
            .map_or_else(|| "omniscient".to_string(), ToString::to_string),
        defense: cell
            .config
            .defense()
            .map_or_else(|| "none".to_string(), ToString::to_string),
        local_updates: totals.local_updates,
        evals: totals.evals,
    };
    Ok(CellRecord {
        cell: cell.index,
        config_hash: format!("{:016x}", cell.config_hash),
        seed: cell.seed,
        axes: cell.axes.clone(),
        summary,
    })
}

/// `axis=value,…,seed=N` — the progress/error label for a cell.
fn describe(cell: &SweepCell) -> String {
    let mut parts: Vec<String> = cell
        .axes
        .iter()
        .map(|(name, value)| format!("{name}={value}"))
        .collect();
    parts.push(format!("seed={}", cell.seed));
    parts.join(",")
}

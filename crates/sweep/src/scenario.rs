//! Scenario schema: the validated bridge from a TOML file to a cell grid.
//!
//! A scenario has five tables, all but `[scenario]` and `[seeds]`
//! optional:
//!
//! ```toml
//! [scenario]              # base experiment (CLI `run` knobs)
//! name = "threat_matrix"  # required; names the sweep's artifacts
//! preset = "quick"        # quick | bench | paper (default bench)
//! dataset = "fashion"     # cifar10 | cifar100 | fashion | purchase100
//! protocol = "samo"       # base | samo | somo | same
//! topology = "static"     # static | dynamic
//! nodes = 16
//! k = 4
//! rounds = 20
//! eval-every = 5
//! # also: beta (Dirichlet non-IID), wake-std, local-epochs, lr
//!
//! [fault]                 # fault plan, composed exactly like `glmia run`
//! latency = "straggler:1:20:0.1"
//! downtime = [40, 160]    # churn downtime window, ticks
//! # also: churn, drop (zero means "component absent")
//!
//! [threat]
//! attacker = "omniscient" # omniscient | neighbors:IDS | coalition:A..B
//! defense = "none"        # none | gaussian:STD | mask:FRAC | clip:LIMIT
//!
//! [seeds]                 # exactly one of:
//! list = [41, 42, 43]
//! # range = "1..9"        # inclusive start, exclusive end
//!
//! [axes]                  # each key overrides the base per cell
//! attacker = ["omniscient", "neighbors:0,1,2", "coalition:0..4"]
//! defense = ["none", "gaussian:0.05", "mask:0.25", "clip:0.5"]
//! topology = ["static", "dynamic"]
//! # integer axes may also be a range string: nodes = "8..12"
//! ```
//!
//! Every string knob is validated *at parse time* with the CLI's own
//! grammars (so errors carry the file line), and every expanded cell's
//! config passes [`ExperimentConfig::validate`] before any cell runs.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use glmia_core::{ExperimentConfig, Parallelism};
use glmia_data::{DataPreset, Partition};
use glmia_gossip::{ChurnConfig, Defense, FaultPlan, LatencyDist, ProtocolKind, TopologyMode};
use glmia_mia::AttackerModel;

use crate::toml::{TomlDoc, TomlError, TomlValue};

/// Why a scenario could not be loaded. All variants map to CLI exit
/// code 1 (a scenario problem is a user-input problem, not corruption).
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The file could not be read.
    Io {
        /// Path as given.
        path: String,
        /// The underlying I/O error.
        message: String,
    },
    /// TOML-subset syntax error.
    Toml(TomlError),
    /// A required table or key is absent.
    Missing {
        /// What was expected, e.g. ``[scenario] name``.
        what: String,
    },
    /// A section outside the schema.
    UnknownSection {
        /// The section name.
        name: String,
        /// 1-based line of its header.
        line: usize,
    },
    /// A key outside its section's schema.
    UnknownKey {
        /// The section it appeared in.
        section: String,
        /// The offending key.
        key: String,
        /// 1-based line of the key.
        line: usize,
    },
    /// A key whose value has the wrong type or fails its grammar.
    BadValue {
        /// The section it appeared in.
        section: String,
        /// The offending key.
        key: String,
        /// 1-based line of the key.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// `[seeds]` sets both `list` and `range`.
    ConflictingSeeds {
        /// 1-based line of the second spec.
        line: usize,
    },
    /// The expanded grid would contain no cells.
    EmptyGrid {
        /// 1-based line of the empty list.
        line: usize,
        /// What is empty.
        message: String,
    },
    /// A fully expanded cell failed [`ExperimentConfig::validate`].
    Invalid {
        /// The cell's axis assignment, for the error message.
        cell: String,
        /// The validation failure.
        message: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io { path, message } => write!(f, "{path}: {message}"),
            ScenarioError::Toml(err) => write!(f, "{err}"),
            ScenarioError::Missing { what } => write!(f, "missing {what}"),
            ScenarioError::UnknownSection { name, line } => write!(
                f,
                "line {line}: unknown section `[{name}]` \
                 (expected scenario|fault|threat|seeds|axes)"
            ),
            ScenarioError::UnknownKey { section, key, line } => {
                write!(f, "line {line}: unknown key `{key}` in `[{section}]`")
            }
            ScenarioError::BadValue {
                section,
                key,
                line,
                message,
            } => write!(f, "line {line}: `[{section}] {key}`: {message}"),
            ScenarioError::ConflictingSeeds { line } => write!(
                f,
                "line {line}: `[seeds]` must set exactly one of `list` or `range`"
            ),
            ScenarioError::EmptyGrid { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ScenarioError::Invalid { cell, message } => {
                write!(f, "cell {cell}: {message}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<TomlError> for ScenarioError {
    fn from(err: TomlError) -> Self {
        ScenarioError::Toml(err)
    }
}

/// One resolved knob value: the scalar types a sweep axis can take.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Knob {
    /// A string knob (protocol, attacker spec, …).
    Str(String),
    /// A non-negative integer knob (nodes, rounds, …).
    Int(i64),
    /// A float knob (churn, beta, …).
    Float(f64),
}

impl Knob {
    /// Canonical label: exactly the value a report column shows, and the
    /// dedup key for axis values.
    pub(crate) fn label(&self) -> String {
        match self {
            Knob::Str(s) => s.clone(),
            Knob::Int(v) => v.to_string(),
            Knob::Float(v) => v.to_string(),
        }
    }
}

/// One sweep axis: the knob it overrides and its deduplicated values in
/// file order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Axis {
    /// The knob key (one of [`AXIS_KEYS`]).
    pub name: String,
    /// Values, deduplicated by label, in file order.
    pub values: Vec<Knob>,
}

/// What scalar type each sweepable knob expects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Str,
    Int,
    Float,
}

/// Every key that may appear in `[axes]`, with its expected type.
/// Sorted by name; also the vocabulary of the `[scenario]`/`[fault]`/
/// `[threat]` scalar keys (minus `name`, `preset`, `downtime`).
const AXIS_KEYS: &[(&str, Kind)] = &[
    ("attacker", Kind::Str),
    ("beta", Kind::Float),
    ("churn", Kind::Float),
    ("dataset", Kind::Str),
    ("defense", Kind::Str),
    ("drop", Kind::Float),
    ("eval-every", Kind::Int),
    ("k", Kind::Int),
    ("latency", Kind::Str),
    ("local-epochs", Kind::Int),
    ("lr", Kind::Float),
    ("nodes", Kind::Int),
    ("protocol", Kind::Str),
    ("rounds", Kind::Int),
    ("topology", Kind::Str),
    ("wake-std", Kind::Float),
];

const SCENARIO_KEYS: &[&str] = &[
    "beta",
    "dataset",
    "eval-every",
    "k",
    "local-epochs",
    "lr",
    "name",
    "nodes",
    "preset",
    "protocol",
    "rounds",
    "topology",
    "wake-std",
];
const FAULT_KEYS: &[&str] = &["churn", "downtime", "drop", "latency"];
const THREAT_KEYS: &[&str] = &["attacker", "defense"];
const SEEDS_KEYS: &[&str] = &["list", "range"];

fn kind_of(key: &str) -> Option<Kind> {
    AXIS_KEYS
        .iter()
        .find(|(name, _)| *name == key)
        .map(|(_, kind)| *kind)
}

/// A parsed, validated scenario: the base experiment, the sweep axes
/// (sorted by name) and the seed set (sorted, deduplicated).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    preset: String,
    base: BTreeMap<String, Knob>,
    downtime: Option<(u64, u64)>,
    seeds: Vec<u64>,
    axes: Vec<Axis>,
}

impl Scenario {
    /// Reads and parses a scenario file.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Io`] when the file cannot be read, otherwise
    /// whatever [`Scenario::parse`] reports.
    pub fn from_path(path: &Path) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(|err| ScenarioError::Io {
            path: path.display().to_string(),
            message: err.to_string(),
        })?;
        Self::parse(&text)
    }

    /// Parses and validates scenario text.
    ///
    /// # Errors
    ///
    /// A line-numbered [`ScenarioError`] on any syntax, schema, type,
    /// grammar or emptiness problem.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let doc = TomlDoc::parse(text)?;
        for (name, section) in doc.sections() {
            if !matches!(name, "scenario" | "fault" | "threat" | "seeds" | "axes") {
                return Err(ScenarioError::UnknownSection {
                    name: name.to_string(),
                    line: section.line,
                });
            }
        }
        let Some(scenario) = doc.section("scenario") else {
            return Err(ScenarioError::Missing {
                what: "`[scenario]` table".to_string(),
            });
        };
        let mut base: BTreeMap<String, Knob> = BTreeMap::new();
        let mut name = None;
        let mut preset = "bench".to_string();
        for (key, entry) in &scenario.entries {
            if !SCENARIO_KEYS.contains(&key.as_str()) {
                return Err(ScenarioError::UnknownKey {
                    section: "scenario".to_string(),
                    key: key.clone(),
                    line: entry.line,
                });
            }
            match key.as_str() {
                "name" => match &entry.value {
                    TomlValue::Str(s) if !s.is_empty() => name = Some(s.clone()),
                    other => {
                        return Err(bad(
                            "scenario",
                            key,
                            entry.line,
                            &format!("expected a non-empty string, got {}", other.type_name()),
                        ))
                    }
                },
                "preset" => match &entry.value {
                    TomlValue::Str(s) => preset = s.clone(),
                    other => {
                        return Err(bad(
                            "scenario",
                            key,
                            entry.line,
                            &format!("expected a string, got {}", other.type_name()),
                        ))
                    }
                },
                _ => {
                    let knob = scalar_knob("scenario", key, entry.line, &entry.value)?;
                    base.insert(key.clone(), knob);
                }
            }
        }
        let Some(name) = name else {
            return Err(ScenarioError::Missing {
                what: "`[scenario] name`".to_string(),
            });
        };
        if !matches!(preset.as_str(), "quick" | "bench" | "paper") {
            let line = scenario
                .entries
                .get("preset")
                .map_or(scenario.line, |e| e.line);
            return Err(bad(
                "scenario",
                "preset",
                line,
                &format!("unknown preset `{preset}` (expected quick|bench|paper)"),
            ));
        }

        let mut downtime = None;
        if let Some(fault) = doc.section("fault") {
            for (key, entry) in &fault.entries {
                if !FAULT_KEYS.contains(&key.as_str()) {
                    return Err(ScenarioError::UnknownKey {
                        section: "fault".to_string(),
                        key: key.clone(),
                        line: entry.line,
                    });
                }
                if key == "downtime" {
                    downtime = Some(parse_downtime(entry.line, &entry.value)?);
                } else {
                    let knob = scalar_knob("fault", key, entry.line, &entry.value)?;
                    base.insert(key.clone(), knob);
                }
            }
        }
        if let Some(threat) = doc.section("threat") {
            for (key, entry) in &threat.entries {
                if !THREAT_KEYS.contains(&key.as_str()) {
                    return Err(ScenarioError::UnknownKey {
                        section: "threat".to_string(),
                        key: key.clone(),
                        line: entry.line,
                    });
                }
                let knob = scalar_knob("threat", key, entry.line, &entry.value)?;
                base.insert(key.clone(), knob);
            }
        }

        let seeds = parse_seeds(&doc)?;

        let mut axes = Vec::new();
        if let Some(section) = doc.section("axes") {
            // BTreeMap iteration — axes come out sorted by name, which is
            // exactly the canonical grid order.
            for (key, entry) in &section.entries {
                let Some(kind) = kind_of(key) else {
                    return Err(ScenarioError::UnknownKey {
                        section: "axes".to_string(),
                        key: key.clone(),
                        line: entry.line,
                    });
                };
                let values = axis_values(key, kind, entry.line, &entry.value)?;
                if values.is_empty() {
                    return Err(ScenarioError::EmptyGrid {
                        line: entry.line,
                        message: format!("axis `{key}` has no values"),
                    });
                }
                axes.push(Axis {
                    name: key.clone(),
                    values,
                });
            }
        }

        let parsed = Self {
            name,
            preset,
            base,
            downtime,
            seeds,
            axes,
        };
        parsed.validate_grammars(&doc)?;
        Ok(parsed)
    }

    /// The scenario's name (labels its artifacts).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorted, deduplicated seed set.
    #[must_use]
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Axis names in canonical (sorted) order.
    #[must_use]
    pub fn axis_names(&self) -> Vec<String> {
        self.axes.iter().map(|a| a.name.clone()).collect()
    }

    /// Overrides the training-scale preset (`quick`/`bench`/`paper`) —
    /// benches use this to honor `GLMIA_PAPER_SCALE` on a committed
    /// scenario file.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::BadValue`] on an unknown preset name.
    pub fn set_preset(&mut self, preset: &str) -> Result<(), ScenarioError> {
        if !matches!(preset, "quick" | "bench" | "paper") {
            return Err(bad(
                "scenario",
                "preset",
                0,
                &format!("unknown preset `{preset}` (expected quick|bench|paper)"),
            ));
        }
        self.preset = preset.to_string();
        Ok(())
    }

    pub(crate) fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Builds the fully resolved config for one cell: base knobs,
    /// overridden by `assignment`, pinned to `seed`, single-threaded and
    /// silent (cell-level parallelism belongs to the worker pool; neither
    /// knob is identity-bearing).
    pub(crate) fn config_for(
        &self,
        assignment: &BTreeMap<String, Knob>,
        seed: u64,
    ) -> Result<ExperimentConfig, String> {
        let mut merged: BTreeMap<&str, &Knob> =
            self.base.iter().map(|(k, v)| (k.as_str(), v)).collect();
        for (key, knob) in assignment {
            merged.insert(key.as_str(), knob);
        }
        let dataset: DataPreset = str_knob(&merged, "dataset").unwrap_or("cifar10").parse()?;
        let mut config = ExperimentConfig::preset(&self.preset, dataset)
            .ok_or_else(|| format!("unknown preset `{}`", self.preset))?;
        if let Some(raw) = str_knob(&merged, "protocol") {
            let protocol: ProtocolKind = raw.parse()?;
            config = config.with_protocol(protocol);
        }
        if let Some(raw) = str_knob(&merged, "topology") {
            let mode: TopologyMode = raw.parse()?;
            config = config.with_topology_mode(mode);
        }
        if let Some(n) = int_knob(&merged, "nodes")? {
            config = config.with_nodes(n);
        }
        if let Some(k) = int_knob(&merged, "k")? {
            config = config.with_view_size(k);
        }
        if let Some(rounds) = int_knob(&merged, "rounds")? {
            config = config.with_rounds(rounds);
        }
        if let Some(every) = int_knob(&merged, "eval-every")? {
            config = config.with_eval_every(every);
        }
        if let Some(epochs) = int_knob(&merged, "local-epochs")? {
            config = config.with_local_epochs(epochs);
        }
        if let Some(lr) = float_knob(&merged, "lr") {
            config = config.with_learning_rate(lr as f32);
        }
        if let Some(beta) = float_knob(&merged, "beta") {
            config = config.with_partition(Partition::Dirichlet { beta });
        }
        if let Some(std) = float_knob(&merged, "wake-std") {
            config = config.with_wake_std(std);
        }
        let mut fault = FaultPlan::none();
        if let Some(spec) = str_knob(&merged, "latency") {
            if spec != "none" {
                let dist: LatencyDist = spec
                    .parse()
                    .map_err(|_| format!("invalid latency spec `{spec}`"))?;
                fault = fault.with_latency(dist);
            }
        }
        if let Some(rate) = float_knob(&merged, "churn") {
            // Zero means "component absent", matching the fault-sweep
            // bench's grid semantics (an inert plan is normalized away).
            if rate > 0.0 {
                let mut churn = ChurnConfig::new(rate);
                if let Some((lo, hi)) = self.downtime {
                    churn = churn.with_downtime(lo, hi);
                }
                fault = fault.with_churn(churn);
            }
        }
        if let Some(p) = float_knob(&merged, "drop") {
            if p > 0.0 {
                fault = fault.with_link_drop(p);
            }
        }
        config = config.with_fault_plan(fault);
        if let Some(spec) = str_knob(&merged, "attacker") {
            let attacker: AttackerModel = spec
                .parse()
                .map_err(|e| format!("invalid attacker spec `{spec}`: {e}"))?;
            config = config.with_attacker(attacker);
        }
        if let Some(spec) = str_knob(&merged, "defense") {
            if spec != "none" {
                let defense: Defense = spec.parse()?;
                config = config.with_defense(defense);
            }
        }
        config = config
            .with_seed(seed)
            .with_parallelism(Parallelism::Fixed(1))
            .with_progress(false);
        config.validate().map_err(|e| e.to_string())?;
        Ok(config)
    }

    /// Eagerly checks every string knob against its grammar so errors
    /// carry file lines instead of surfacing at grid expansion.
    fn validate_grammars(&self, doc: &TomlDoc) -> Result<(), ScenarioError> {
        let check = |section: &str, key: &str, raw: &str| -> Result<(), ScenarioError> {
            let line = doc.get(section, key).map_or(0, |e| e.line);
            string_grammar(key, raw).map_err(|message| bad(section, key, line, &message))
        };
        for (key, knob) in &self.base {
            if let Knob::Str(raw) = knob {
                let section = if FAULT_KEYS.contains(&key.as_str()) {
                    "fault"
                } else if THREAT_KEYS.contains(&key.as_str()) {
                    "threat"
                } else {
                    "scenario"
                };
                check(section, key, raw)?;
            }
        }
        for axis in &self.axes {
            for knob in &axis.values {
                if let Knob::Str(raw) = knob {
                    check("axes", &axis.name, raw)?;
                }
            }
        }
        Ok(())
    }
}

/// The merged string knob for `key`, if set.
fn str_knob<'a>(merged: &BTreeMap<&str, &'a Knob>, key: &str) -> Option<&'a str> {
    match merged.get(key) {
        Some(Knob::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// The merged integer knob for `key`, if set, as a `usize`.
fn int_knob(merged: &BTreeMap<&str, &Knob>, key: &str) -> Result<Option<usize>, String> {
    match merged.get(key) {
        Some(Knob::Int(v)) => usize::try_from(*v)
            .map(Some)
            .map_err(|_| format!("`{key}` must be non-negative, got {v}")),
        _ => Ok(None),
    }
}

/// The merged float knob for `key`, if set (integers coerce).
fn float_knob(merged: &BTreeMap<&str, &Knob>, key: &str) -> Option<f64> {
    match merged.get(key) {
        Some(Knob::Float(v)) => Some(*v),
        Some(Knob::Int(v)) => Some(*v as f64),
        _ => None,
    }
}

/// Validates one string knob value against the CLI grammar for its key.
fn string_grammar(key: &str, raw: &str) -> Result<(), String> {
    match key {
        "dataset" => raw.parse::<DataPreset>().map(|_| ()),
        "protocol" => raw.parse::<ProtocolKind>().map(|_| ()),
        "topology" => raw.parse::<TopologyMode>().map(|_| ()),
        "latency" if raw == "none" => Ok(()),
        "latency" => raw
            .parse::<LatencyDist>()
            .map(|_| ())
            .map_err(|_| format!("invalid latency spec `{raw}`")),
        "attacker" => raw
            .parse::<AttackerModel>()
            .map(|_| ())
            .map_err(|e| format!("invalid attacker spec `{raw}`: {e}")),
        "defense" if raw == "none" => Ok(()),
        "defense" => raw.parse::<Defense>().map(|_| ()),
        _ => Ok(()),
    }
}

fn bad(section: &str, key: &str, line: usize, message: &str) -> ScenarioError {
    ScenarioError::BadValue {
        section: section.to_string(),
        key: key.to_string(),
        line,
        message: message.to_string(),
    }
}

/// Converts a scalar TOML value to the knob type `key` expects.
fn scalar_knob(
    section: &str,
    key: &str,
    line: usize,
    value: &TomlValue,
) -> Result<Knob, ScenarioError> {
    let kind = kind_of(key).unwrap_or(Kind::Str);
    knob_of_kind(kind, value).map_err(|message| bad(section, key, line, &message))
}

fn knob_of_kind(kind: Kind, value: &TomlValue) -> Result<Knob, String> {
    match (kind, value) {
        (Kind::Str, TomlValue::Str(s)) => Ok(Knob::Str(s.clone())),
        (Kind::Int, TomlValue::Int(v)) if *v >= 0 => Ok(Knob::Int(*v)),
        (Kind::Int, TomlValue::Int(v)) => Err(format!("must be non-negative, got {v}")),
        (Kind::Float, TomlValue::Float(v)) => Ok(Knob::Float(*v)),
        (Kind::Float, TomlValue::Int(v)) => Ok(Knob::Float(*v as f64)),
        (expected, other) => Err(format!(
            "expected a {}, got {}",
            match expected {
                Kind::Str => "string",
                Kind::Int => "integer",
                Kind::Float => "float",
            },
            other.type_name()
        )),
    }
}

/// Parses `[fault] downtime = [lo, hi]`.
fn parse_downtime(line: usize, value: &TomlValue) -> Result<(u64, u64), ScenarioError> {
    let err = |message: &str| bad("fault", "downtime", line, message);
    let TomlValue::Array(items) = value else {
        return Err(err(&format!(
            "expected a two-integer array, got {}",
            value.type_name()
        )));
    };
    let [TomlValue::Int(lo), TomlValue::Int(hi)] = items.as_slice() else {
        return Err(err("expected exactly two integers `[min, max]`"));
    };
    if *lo <= 0 || hi < lo {
        return Err(err("downtime window must satisfy 0 < min <= max"));
    }
    Ok((*lo as u64, *hi as u64))
}

/// Parses `[seeds]`: exactly one of `list` / `range`, non-empty, sorted
/// and deduplicated.
fn parse_seeds(doc: &TomlDoc) -> Result<Vec<u64>, ScenarioError> {
    let Some(section) = doc.section("seeds") else {
        return Err(ScenarioError::Missing {
            what: "`[seeds]` table".to_string(),
        });
    };
    for (key, entry) in &section.entries {
        if !SEEDS_KEYS.contains(&key.as_str()) {
            return Err(ScenarioError::UnknownKey {
                section: "seeds".to_string(),
                key: key.clone(),
                line: entry.line,
            });
        }
    }
    let list = section.entries.get("list");
    let range = section.entries.get("range");
    let mut seeds = match (list, range) {
        (Some(_), Some(range)) => return Err(ScenarioError::ConflictingSeeds { line: range.line }),
        (None, None) => {
            return Err(ScenarioError::Missing {
                what: "`[seeds] list` or `[seeds] range`".to_string(),
            })
        }
        (Some(entry), None) => {
            let TomlValue::Array(items) = &entry.value else {
                return Err(bad(
                    "seeds",
                    "list",
                    entry.line,
                    &format!("expected an integer array, got {}", entry.value.type_name()),
                ));
            };
            let mut seeds = Vec::with_capacity(items.len());
            for item in items {
                let TomlValue::Int(v) = item else {
                    return Err(bad(
                        "seeds",
                        "list",
                        entry.line,
                        &format!("expected integers, got {}", item.type_name()),
                    ));
                };
                if *v < 0 {
                    return Err(bad(
                        "seeds",
                        "list",
                        entry.line,
                        "seeds must be non-negative",
                    ));
                }
                seeds.push(*v as u64);
            }
            if seeds.is_empty() {
                return Err(ScenarioError::EmptyGrid {
                    line: entry.line,
                    message: "`[seeds] list` is empty — the grid has no cells".to_string(),
                });
            }
            seeds
        }
        (None, Some(entry)) => {
            let TomlValue::Str(raw) = &entry.value else {
                return Err(bad(
                    "seeds",
                    "range",
                    entry.line,
                    &format!(
                        "expected a string `\"A..B\"`, got {}",
                        entry.value.type_name()
                    ),
                ));
            };
            let Some((lo, hi)) = parse_range(raw) else {
                return Err(bad(
                    "seeds",
                    "range",
                    entry.line,
                    &format!("expected `A..B` with A < B (exclusive end), got `{raw}`"),
                ));
            };
            (lo..hi).collect()
        }
    };
    seeds.sort_unstable();
    seeds.dedup();
    Ok(seeds)
}

/// Parses `"A..B"` (inclusive start, exclusive end — the repo's index
/// range grammar, as in `coalition:0..8`). `None` unless `A < B`.
fn parse_range(raw: &str) -> Option<(u64, u64)> {
    let (lo, hi) = raw.split_once("..")?;
    let lo: u64 = lo.trim().parse().ok()?;
    let hi: u64 = hi.trim().parse().ok()?;
    (lo < hi).then_some((lo, hi))
}

/// Parses one axis entry: an array of scalars, or (for integer axes) a
/// range string. Values are deduplicated by label, keeping first
/// occurrence, so the grid is duplicate-free by construction.
fn axis_values(
    key: &str,
    kind: Kind,
    line: usize,
    value: &TomlValue,
) -> Result<Vec<Knob>, ScenarioError> {
    let raw_values: Vec<Knob> = match value {
        TomlValue::Array(items) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let knob =
                    knob_of_kind(kind, item).map_err(|message| bad("axes", key, line, &message))?;
                out.push(knob);
            }
            out
        }
        TomlValue::Str(raw) if kind == Kind::Int => {
            let Some((lo, hi)) = parse_range(raw) else {
                return Err(bad(
                    "axes",
                    key,
                    line,
                    &format!("expected `A..B` with A < B (exclusive end), got `{raw}`"),
                ));
            };
            (lo..hi).map(|v| Knob::Int(v as i64)).collect()
        }
        other => {
            return Err(bad(
                "axes",
                key,
                line,
                &format!(
                    "an axis must be a list{}, got {}",
                    if kind == Kind::Int {
                        " or a range string"
                    } else {
                        ""
                    },
                    other.type_name()
                ),
            ))
        }
    };
    let mut seen = Vec::new();
    let mut values = Vec::with_capacity(raw_values.len());
    for knob in raw_values {
        let label = knob.label();
        if !seen.contains(&label) {
            seen.push(label);
            values.push(knob);
        }
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "[scenario]\nname = \"t\"\npreset = \"quick\"\nnodes = 6\nk = 2\nrounds = 2\neval-every = 1\n\n[seeds]\nlist = [2, 1, 2]\n\n[axes]\nprotocol = [\"base\", \"samo\", \"base\"]\n";

    #[test]
    fn parses_minimal_scenario_sorting_and_deduping() {
        let scenario = Scenario::parse(MINIMAL).unwrap();
        assert_eq!(scenario.name(), "t");
        assert_eq!(scenario.seeds(), &[1, 2]);
        assert_eq!(scenario.axis_names(), vec!["protocol".to_string()]);
        assert_eq!(scenario.axes()[0].values.len(), 2, "duplicates dropped");
    }

    #[test]
    fn builds_a_valid_config_per_cell() {
        let scenario = Scenario::parse(MINIMAL).unwrap();
        let mut assignment = BTreeMap::new();
        assignment.insert("protocol".to_string(), Knob::Str("samo".to_string()));
        let config = scenario.config_for(&assignment, 7).unwrap();
        assert_eq!(config.seed(), 7);
        assert_eq!(config.nodes(), 6);
        assert_eq!(config.protocol(), ProtocolKind::Samo);
        assert_eq!(config.parallelism(), Parallelism::Fixed(1));
    }

    #[test]
    fn unknown_section_key_and_types_are_line_numbered() {
        let err = Scenario::parse("[scenario]\nname = \"t\"\n[bogus]\n").unwrap_err();
        assert_eq!(
            err,
            ScenarioError::UnknownSection {
                name: "bogus".to_string(),
                line: 3
            }
        );
        let err = Scenario::parse("[scenario]\nname = \"t\"\nnodez = 4\n[seeds]\nlist = [1]\n")
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::UnknownKey { line: 3, .. }),
            "{err:?}"
        );
        let err = Scenario::parse(
            "[scenario]\nname = \"t\"\n[seeds]\nlist = [1]\n[axes]\nnodes = [\"a\"]\n",
        )
        .unwrap_err();
        assert!(
            matches!(err, ScenarioError::BadValue { line: 6, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn seed_conflicts_and_empty_grids_are_rejected() {
        let err =
            Scenario::parse("[scenario]\nname = \"t\"\n[seeds]\nlist = [1]\nrange = \"0..4\"\n")
                .unwrap_err();
        assert_eq!(err, ScenarioError::ConflictingSeeds { line: 5 });
        let err = Scenario::parse("[scenario]\nname = \"t\"\n[seeds]\nlist = []\n").unwrap_err();
        assert!(
            matches!(err, ScenarioError::EmptyGrid { line: 4, .. }),
            "{err:?}"
        );
        let err =
            Scenario::parse("[scenario]\nname = \"t\"\n[seeds]\nrange = \"4..4\"\n").unwrap_err();
        assert!(matches!(err, ScenarioError::BadValue { .. }), "{err:?}");
    }

    #[test]
    fn string_grammars_are_checked_at_parse_time() {
        let err = Scenario::parse(
            "[scenario]\nname = \"t\"\n[threat]\nattacker = \"sideways:9\"\n[seeds]\nlist = [1]\n",
        )
        .unwrap_err();
        assert!(
            matches!(err, ScenarioError::BadValue { line: 4, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn integer_axes_accept_range_strings() {
        let scenario = Scenario::parse(
            "[scenario]\nname = \"t\"\npreset = \"quick\"\n[seeds]\nlist = [1]\n[axes]\nrounds = \"2..5\"\n",
        )
        .unwrap();
        let labels: Vec<String> = scenario.axes()[0].values.iter().map(Knob::label).collect();
        assert_eq!(labels, vec!["2", "3", "4"]);
    }
}

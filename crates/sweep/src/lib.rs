//! Declarative experiment sweeps for glmia.
//!
//! The paper's results are a grid — topology family × attacker × defense ×
//! seeds — and every related-work extension multiplies it further. This
//! crate turns such grids into data: a TOML *scenario* file names a base
//! experiment (preset, dataset, protocol, fault plan, threat model), the
//! axes to sweep (lists or integer ranges) and the seeds to replicate
//! over, and `glmia sweep <scenario.toml>` does the rest.
//!
//! The pipeline has three stages, each deterministic:
//!
//! * [`Scenario`] — parses and validates the file (a dependency-free TOML
//!   subset, line-numbered errors) into a typed spec;
//! * [`SweepGrid`] — expands axes × seeds into a duplicate-free cell list
//!   whose order is a pure function of the scenario *content* (axes are
//!   keyed by name, so reordering tables or axis declarations in the file
//!   changes nothing), each cell carrying a validated
//!   [`ExperimentConfig`](glmia_core::ExperimentConfig) and its
//!   fingerprint;
//! * [`run_sweep`] — fans cells across a worker pool (each cell runs
//!   single-threaded under the per-(seed, round, node) derived-RNG
//!   contract, so worker count never changes results), appends one
//!   crash-safe checkpoint record per completed cell, and folds the
//!   records into columnar `sweep.json` + `report.md` via
//!   [`glmia_metrics`].
//!
//! Killing a sweep and rerunning the same command resumes from the
//! checkpoint: completed cells are reused byte-for-byte, only unfinished
//! cells execute, and the final aggregates are byte-identical to an
//! uninterrupted run at any worker count.

mod grid;
mod runner;
mod scenario;
mod toml;

pub use grid::{SweepCell, SweepGrid};
pub use runner::{run_cell, run_sweep, SweepError, SweepOutcome};
pub use scenario::{Scenario, ScenarioError};
pub use toml::{TomlDoc, TomlError, TomlValue};

//! Validates the sparse spectral path against the dense small-n oracle.
//!
//! The dense [`MixingMatrix`] keeps the exact Jacobi eigensolver; the CSR
//! [`SparseMixingMatrix`] replaces it at scale with deterministic deflated
//! power iteration. These tests pin the agreement contract: within `1e-9`
//! of the oracle on doubly-stochastic mixing matrices up to `n = 512`,
//! bit-identical across repeat calls, and matvec-for-matvec equal to the
//! dense operator inside the shared contraction core.

use glmia_graph::Topology;
use glmia_spectral::{
    product_contraction_seeded, MixingMatrix, ProductContractionOptions, SparseMixingMatrix,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn opts() -> ProductContractionOptions {
    ProductContractionOptions::deterministic()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: on random k-regular graphs the seeded sparse λ₂ agrees
    /// with the dense Jacobi eigensolver to 1e-9, for any seed.
    #[test]
    fn sparse_lambda2_matches_jacobi_on_random_regular_graphs(
        graph_seed in 0u64..10_000,
        power_seed in 0u64..10_000,
        n in 4usize..96,
        k in 2usize..6,
    ) {
        // k-regular graphs need k < n and an even degree sum.
        prop_assume!(k < n && (n * k) % 2 == 0);
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let g = Topology::random_regular(n, k, &mut rng).unwrap();
        let dense = MixingMatrix::from_regular(&g).unwrap();
        let sparse = SparseMixingMatrix::from_regular(&g).unwrap();
        let oracle = dense.lambda2_magnitude();
        let l2 = sparse.lambda2_magnitude_seeded(opts(), power_seed).unwrap();
        prop_assert!(
            (l2 - oracle).abs() < 1e-9,
            "n={} k={}: sparse {} vs jacobi {}", n, k, l2, oracle
        );
        // And the seeded path is bitwise repeatable.
        let again = sparse.lambda2_magnitude_seeded(opts(), power_seed).unwrap();
        prop_assert_eq!(l2.to_bits(), again.to_bits());
    }

    /// Property: the implicit cumulative product over sparse factors equals
    /// the same contraction over dense factors — both run through the one
    /// `MixingOp` core, and a CSR matvec only skips exact zeros, which
    /// cannot change a sum.
    #[test]
    fn sparse_product_contraction_matches_dense_factors(
        graph_seed in 0u64..10_000,
        len in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let mut dense_seq = Vec::with_capacity(len);
        let mut sparse_seq = Vec::with_capacity(len);
        for _ in 0..len {
            let g = Topology::random_regular(24, 3, &mut rng).unwrap();
            dense_seq.push(MixingMatrix::from_regular(&g).unwrap());
            sparse_seq.push(SparseMixingMatrix::from_regular(&g).unwrap());
        }
        let d = product_contraction_seeded(&dense_seq, opts(), graph_seed).unwrap();
        let s = product_contraction_seeded(&sparse_seq, opts(), graph_seed).unwrap();
        prop_assert!((d - s).abs() < 1e-12, "dense {} vs sparse {}", d, s);
    }
}

/// The acceptance ceiling: at `n = 512` the sparse path still tracks the
/// dense Jacobi oracle to 1e-9 (one case — Jacobi is O(n³) and this is the
/// largest matrix the oracle is asked to factor anywhere in the suite).
#[test]
fn sparse_lambda2_matches_jacobi_at_n_512() {
    let mut rng = StdRng::seed_from_u64(77);
    let g = Topology::random_regular(512, 6, &mut rng).unwrap();
    let dense = MixingMatrix::from_regular(&g).unwrap();
    let sparse = SparseMixingMatrix::from_regular(&g).unwrap();
    let oracle = dense.lambda2_magnitude();
    let l2 = sparse.lambda2_magnitude_seeded(opts(), 9).unwrap();
    assert!(
        (l2 - oracle).abs() < 1e-9,
        "n=512: sparse {l2} vs jacobi {oracle}"
    );
}

/// Slow-mixing worst case without the Jacobi cost: the ring's λ₂ has the
/// closed form (1 + 2cos(2π/n)) / 3, and at `n = 512` the spectral gap to
/// λ₃ is tiny — exactly the regime where a lax tolerance would freeze the
/// power iteration early. Guards the `deterministic()` budget/tolerance.
#[test]
fn sparse_lambda2_matches_closed_form_on_large_ring() {
    let n = 512usize;
    let g = Topology::ring(n).unwrap();
    let sparse = SparseMixingMatrix::from_regular(&g).unwrap();
    let exact = (1.0 + 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos()) / 3.0;
    let l2 = sparse.lambda2_magnitude_seeded(opts(), 4).unwrap();
    assert!(
        (l2 - exact).abs() < 1e-9,
        "ring({n}): sparse {l2} vs closed form {exact}"
    );
}

/// Different power-iteration seeds converge to the same eigenvalue (the
/// seed picks a start vector, not an answer).
#[test]
fn lambda2_is_seed_independent_to_tolerance() {
    let mut rng = StdRng::seed_from_u64(21);
    let g = Topology::random_regular(100, 4, &mut rng).unwrap();
    let sparse = SparseMixingMatrix::from_regular(&g).unwrap();
    let a = sparse.lambda2_magnitude_seeded(opts(), 1).unwrap();
    let b = sparse.lambda2_magnitude_seeded(opts(), 2).unwrap();
    assert!((a - b).abs() < 1e-9, "seed 1 {a} vs seed 2 {b}");
}

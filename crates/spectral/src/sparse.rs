//! Sparse (CSR) mixing matrices for large-n spectral analysis.
//!
//! Gossip mixing matrices have one nonzero per neighbour plus the diagonal,
//! so a k-regular graph on `n` nodes stores `n·(k+1)` entries instead of
//! `n²`. All spectral quantities the pipeline needs — single-round λ₂ and
//! the cumulative-product contraction σ₂(W⁽ᵗ⁾⋯W⁽¹⁾) — are computed from
//! matrix–vector products only, so nothing ever materializes a dense `n × n`
//! matrix (see [`product_contraction_seeded`](crate::product_contraction_seeded)).
//!
//! The dense [`MixingMatrix`](crate::MixingMatrix) path with its exact
//! Jacobi eigensolver remains the small-n oracle; this module is the
//! scalable path and is validated against the oracle in tests to `1e-9`.

use glmia_graph::Topology;

use crate::power::{product_contraction_seeded, MixingOp, ProductContractionOptions};
use crate::{MixingMatrix, SpectralError};

/// A sparse `n × n` gossip mixing matrix in compressed-sparse-row form.
///
/// Rows are stored with column indices in strictly increasing order, which
/// fixes the floating-point accumulation order of every matrix–vector
/// product: results are bit-identical across runs and thread counts.
///
/// # Examples
///
/// ```
/// use glmia_graph::Topology;
/// use glmia_spectral::{MixingMatrix, ProductContractionOptions, SparseMixingMatrix};
///
/// let g = Topology::ring(64)?;
/// let sparse = SparseMixingMatrix::from_regular(&g)?;
/// let dense = MixingMatrix::from_regular(&g)?;
/// assert_eq!(sparse.nnz(), 64 * 3);
/// let opts = ProductContractionOptions::deterministic();
/// let l2_sparse = sparse.lambda2_magnitude_seeded(opts, 42)?;
/// let l2_dense = dense.lambda2_magnitude();
/// assert!((l2_sparse - l2_dense).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMixingMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMixingMatrix {
    /// Builds the uniform-weight mixing matrix of a k-regular topology:
    /// `W = (A + I) / (k + 1)`, stored sparsely.
    ///
    /// # Errors
    ///
    /// Returns [`SpectralError`] if the topology is empty or not regular.
    pub fn from_regular(topology: &Topology) -> Result<Self, SpectralError> {
        let n = topology.len();
        if n == 0 {
            return Err(SpectralError::new("topology has no nodes"));
        }
        let k = topology.degree(0);
        if !topology.is_regular(k) {
            return Err(SpectralError::new(
                "topology is not regular; use SparseMixingMatrix::metropolis for general graphs",
            ));
        }
        let w = 1.0 / (k as f64 + 1.0);
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
            row.push((i, w));
            for &j in topology.view(i) {
                row.push((j, w));
            }
            row.sort_unstable_by_key(|&(j, _)| j);
            rows.push(row);
        }
        Self::from_sorted_rows(n, rows)
    }

    /// Builds Metropolis–Hastings weights for an arbitrary topology, stored
    /// sparsely: `W_{ij} = 1 / (1 + max(dᵢ, dⱼ))` for edges, diagonal
    /// absorbs the remainder. Symmetric and doubly stochastic for any graph.
    ///
    /// # Errors
    ///
    /// Returns [`SpectralError`] if the topology is empty.
    pub fn metropolis(topology: &Topology) -> Result<Self, SpectralError> {
        let n = topology.len();
        if n == 0 {
            return Err(SpectralError::new("topology has no nodes"));
        }
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut off_diag = 0.0;
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(topology.degree(i) + 1);
            for &j in topology.view(i) {
                let w = 1.0 / (1.0 + topology.degree(i).max(topology.degree(j)) as f64);
                row.push((j, w));
                off_diag += w;
            }
            row.push((i, 1.0 - off_diag));
            row.sort_unstable_by_key(|&(j, _)| j);
            rows.push(row);
        }
        Self::from_sorted_rows(n, rows)
    }

    /// Builds a matrix from per-row `(column, value)` entries, e.g. the
    /// empirical rows recorded by the gossip `MixingMatrixObserver`.
    ///
    /// Entries within a row may arrive in any order; they are sorted by
    /// column. Exact-zero values are kept (callers decide what to record),
    /// so `nnz` reflects the input faithfully.
    ///
    /// # Errors
    ///
    /// Returns [`SpectralError`] if `rows.len() != n`, `n == 0`, a column
    /// index is out of range, or a row contains duplicate columns.
    pub fn from_sorted_rows(n: usize, rows: Vec<Vec<(usize, f64)>>) -> Result<Self, SpectralError> {
        if n == 0 {
            return Err(SpectralError::new("matrix must have at least one row"));
        }
        if rows.len() != n {
            return Err(SpectralError::new(format!(
                "expected {n} rows, got {}",
                rows.len()
            )));
        }
        let nnz = rows.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for mut row in rows {
            row.sort_unstable_by_key(|&(j, _)| j);
            for window in row.windows(2) {
                if window[0].0 == window[1].0 {
                    return Err(SpectralError::new(format!(
                        "duplicate column {} in sparse row",
                        window[0].0
                    )));
                }
            }
            for (j, v) in row {
                if j >= n {
                    return Err(SpectralError::new(format!(
                        "column index {j} out of range for a {n}x{n} matrix"
                    )));
                }
                col_idx.push(j);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        glmia_telemetry::count(
            glmia_telemetry::Instrument::SpectralNnz,
            values.len() as u64,
        );
        Ok(Self {
            n,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix, dropping exact zeros.
    #[must_use]
    pub fn from_dense(dense: &MixingMatrix) -> Self {
        let n = dense.n();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in dense.as_slice().chunks_exact(n) {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        glmia_telemetry::count(
            glmia_telemetry::Instrument::SpectralNnz,
            values.len() as u64,
        );
        Self {
            n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Materializes the dense equivalent — only for small-n oracle checks.
    ///
    /// # Errors
    ///
    /// Returns [`SpectralError`] if the dense buffer would be degenerate
    /// (never happens for `n ≥ 1`, which the constructors guarantee).
    pub fn to_dense(&self) -> Result<MixingMatrix, SpectralError> {
        let mut data = vec![0.0; self.n * self.n];
        for i in 0..self.n {
            for (j, v) in self.row(i) {
                data[i * self.n + j] = v;
            }
        }
        MixingMatrix::from_vec(self.n, data)
    }

    /// Matrix dimension.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The entry at `(i, j)` (0 if not stored).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored `(column, value)` entries of row `i`,
    /// columns in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.n, "row index out of bounds");
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&j, &v)| (j, v))
    }

    /// Computes `W·v` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != n`.
    #[must_use]
    pub fn apply(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.apply_into(v, &mut out);
        out
    }

    /// Whether all row and column sums are within `tol` of 1 and all
    /// stored entries are non-negative.
    #[must_use]
    pub fn is_doubly_stochastic(&self, tol: f64) -> bool {
        if self.values.iter().any(|&x| x < -tol) {
            return false;
        }
        let mut col_sums = vec![0.0; self.n];
        for i in 0..self.n {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let row: f64 = self.values[lo..hi].iter().sum();
            if (row - 1.0).abs() > tol {
                return false;
            }
            for (&j, &v) in self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]) {
                col_sums[j] += v;
            }
        }
        col_sums.iter().all(|&c| (c - 1.0).abs() <= tol)
    }

    /// Whether the matrix is symmetric within `tol`.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for (j, v) in self.row(i) {
                if (v - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// The second-largest-*magnitude* eigenvalue `max_{i≥2} |λᵢ(W)|` of a
    /// symmetric doubly-stochastic mixing matrix, computed by deterministic
    /// deflated power iteration: the consensus eigenvector `𝟙` is projected
    /// off, the start vector is derived from `seed` (SplitMix64), and the
    /// iteration runs under the fixed `opts` contract — identical inputs
    /// give bit-identical results on every run and thread count.
    ///
    /// This is the scalable counterpart of the dense Jacobi oracle
    /// [`MixingMatrix::lambda2_magnitude`]; agreement is within `1e-9` for
    /// graphs with a non-degenerate spectral gap (validated in tests up to
    /// `n = 512`).
    ///
    /// # Errors
    ///
    /// Returns [`SpectralError`] if `n < 2`.
    pub fn lambda2_magnitude_seeded(
        &self,
        opts: ProductContractionOptions,
        seed: u64,
    ) -> Result<f64, SpectralError> {
        if self.n < 2 {
            return Err(SpectralError::new("λ₂ requires at least a 2x2 matrix"));
        }
        product_contraction_seeded(std::slice::from_ref(self), opts, seed)
    }
}

impl MixingOp for SparseMixingMatrix {
    fn n(&self) -> usize {
        self.n
    }

    fn apply_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.n, "vector length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            *o = self.col_idx[lo..hi]
                .iter()
                .zip(&self.values[lo..hi])
                .map(|(&j, &w)| w * v[j])
                .sum();
        }
    }

    fn apply_transpose_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.n, "vector length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        out.fill(0.0);
        for (i, &x) in v.iter().enumerate() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for (&j, &w) in self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]) {
                out[j] += w * x;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seeded_opts() -> ProductContractionOptions {
        ProductContractionOptions::deterministic()
    }

    #[test]
    fn from_regular_matches_dense_entries() {
        let g = Topology::ring(8).unwrap();
        let sparse = SparseMixingMatrix::from_regular(&g).unwrap();
        let dense = MixingMatrix::from_regular(&g).unwrap();
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(sparse.get(i, j), dense.get(i, j), "entry ({i},{j})");
            }
        }
        assert_eq!(sparse.nnz(), 8 * 3);
    }

    #[test]
    fn metropolis_matches_dense_entries() {
        let g = Topology::from_views(vec![vec![1, 2], vec![0], vec![0]]).unwrap();
        let sparse = SparseMixingMatrix::metropolis(&g).unwrap();
        let dense = MixingMatrix::metropolis(&g).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(sparse.get(i, j), dense.get(i, j), "entry ({i},{j})");
            }
        }
        assert!(sparse.is_symmetric(1e-12));
        assert!(sparse.is_doubly_stochastic(1e-9));
    }

    #[test]
    fn from_sorted_rows_validates() {
        assert!(SparseMixingMatrix::from_sorted_rows(0, vec![]).is_err());
        assert!(SparseMixingMatrix::from_sorted_rows(2, vec![vec![(0, 1.0)]]).is_err());
        assert!(
            SparseMixingMatrix::from_sorted_rows(2, vec![vec![(2, 1.0)], vec![(1, 1.0)]]).is_err()
        );
        assert!(SparseMixingMatrix::from_sorted_rows(
            2,
            vec![vec![(0, 0.5), (0, 0.5)], vec![(1, 1.0)]]
        )
        .is_err());
        let ok = SparseMixingMatrix::from_sorted_rows(
            2,
            vec![vec![(1, 0.5), (0, 0.5)], vec![(0, 0.5), (1, 0.5)]],
        )
        .unwrap();
        assert_eq!(ok.get(0, 1), 0.5);
        assert_eq!(ok.nnz(), 4);
    }

    #[test]
    fn dense_round_trip_preserves_matrix() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = Topology::random_regular(24, 4, &mut rng).unwrap();
        let dense = MixingMatrix::from_regular(&g).unwrap();
        let sparse = SparseMixingMatrix::from_dense(&dense);
        assert_eq!(sparse.to_dense().unwrap(), dense);
        assert_eq!(sparse.nnz(), 24 * 5);
    }

    #[test]
    fn apply_matches_dense_apply() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Topology::random_regular(20, 4, &mut rng).unwrap();
        let dense = MixingMatrix::from_regular(&g).unwrap();
        let sparse = SparseMixingMatrix::from_regular(&g).unwrap();
        let v: Vec<f64> = (0..20).map(|i| (i as f64) - 9.5).collect();
        let a = dense.apply(&v);
        let b = sparse.apply(&v);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-15);
        }
        let mut at = vec![0.0; 20];
        sparse.apply_transpose_into(&v, &mut at);
        let dt = dense.apply_transpose(&v);
        for (x, y) in dt.iter().zip(&at) {
            assert!((x - y).abs() < 1e-15);
        }
    }

    #[test]
    fn seeded_lambda2_matches_jacobi_on_ring() {
        let g = Topology::ring(32).unwrap();
        let sparse = SparseMixingMatrix::from_regular(&g).unwrap();
        let dense = MixingMatrix::from_regular(&g).unwrap();
        let l2 = sparse.lambda2_magnitude_seeded(seeded_opts(), 7).unwrap();
        assert!(
            (l2 - dense.lambda2_magnitude()).abs() < 1e-9,
            "sparse {l2} vs dense {}",
            dense.lambda2_magnitude()
        );
    }

    #[test]
    fn seeded_lambda2_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = Topology::random_regular(64, 6, &mut rng).unwrap();
        let sparse = SparseMixingMatrix::from_regular(&g).unwrap();
        let a = sparse.lambda2_magnitude_seeded(seeded_opts(), 99).unwrap();
        let b = sparse.lambda2_magnitude_seeded(seeded_opts(), 99).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn seeded_lambda2_rejects_tiny_matrices() {
        let m = SparseMixingMatrix::from_sorted_rows(1, vec![vec![(0, 1.0)]]).unwrap();
        assert!(m.lambda2_magnitude_seeded(seeded_opts(), 0).is_err());
    }

    #[test]
    fn stochasticity_checks_detect_violations() {
        let bad = SparseMixingMatrix::from_sorted_rows(
            2,
            vec![vec![(0, 0.7), (1, 0.5)], vec![(0, 0.3), (1, 0.5)]],
        )
        .unwrap();
        assert!(!bad.is_doubly_stochastic(1e-9));
        let asym =
            SparseMixingMatrix::from_sorted_rows(2, vec![vec![(0, 0.5), (1, 0.5)], vec![(1, 1.0)]])
                .unwrap();
        assert!(!asym.is_symmetric(1e-9));
    }
}

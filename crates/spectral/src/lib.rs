//! Spectral analysis of gossip mixing (the paper's §4).
//!
//! Synchronous gossip averaging over a k-regular graph `G` applies the
//! mixing matrix `W(G)` with `W_{ij} = 1/(k+1)` iff `j ∈ Nᵢ ∪ {i}` to the
//! vector of node models (Eq. 8–9). Boyd et al. (2006) show that for a
//! symmetric doubly-stochastic `W`, the distance to consensus contracts by
//! `λ₂(W)` per step (Eq. 10). The quantity the paper plots in Figure 8 is
//! the contraction of the *product* `W* = W⁽ᵀ⁾⋯W⁽¹⁾` over a whole run —
//! static graphs reuse one `W`, dynamic (PeerSwap) graphs change it every
//! iteration, and the product's contraction decays much faster in the
//! dynamic case.
//!
//! This crate provides:
//!
//! * [`MixingMatrix`] — dense `f64` mixing matrices built from topologies
//!   (uniform weights for regular graphs, Metropolis–Hastings weights for
//!   general graphs), with stochasticity/symmetry checks;
//! * [`symmetric_eigenvalues`] — a Jacobi eigensolver for exact spectra of
//!   single matrices, and [`MixingMatrix::lambda2`];
//! * [`product_contraction`] — the contraction coefficient
//!   `σ₂(W⁽ᵀ⁾⋯W⁽¹⁾)` of a matrix sequence, computed by power iteration on
//!   the consensus-orthogonal subspace without materializing the product.
//!   For a single symmetric `W` this equals `|λ₂(W)|`;
//! * [`SparseMixingMatrix`] + [`product_contraction_seeded`] — the
//!   scalable CSR path: `O(nnz)` storage, deterministic seeded power
//!   iteration, and implicit cumulative products for large `n`. The dense
//!   Jacobi spectrum stays as the small-n oracle.
//!
//! # Examples
//!
//! ```
//! use glmia_graph::Topology;
//! use glmia_spectral::MixingMatrix;
//!
//! let ring = Topology::ring(8)?;
//! let w = MixingMatrix::from_regular(&ring)?;
//! assert!(w.is_doubly_stochastic(1e-12) && w.is_symmetric(1e-12));
//! let l2 = w.lambda2();
//! assert!(l2 > 0.0 && l2 < 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod jacobi;
mod matrix;
mod mixing_time;
mod power;
mod sparse;

pub use error::SpectralError;
pub use jacobi::symmetric_eigenvalues;
pub use matrix::MixingMatrix;
pub use mixing_time::{compare_mixing_bounds, mixing_time, MixingBoundComparison};
pub use power::{
    product_contraction, product_contraction_seeded, MixingOp, ProductContractionOptions,
};
pub use sparse::SparseMixingMatrix;

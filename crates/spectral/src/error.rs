//! Error type for spectral computations.

use std::error::Error;
use std::fmt;

/// Error returned on invalid matrices or topologies.
///
/// # Examples
///
/// ```
/// use glmia_graph::Topology;
/// use glmia_spectral::MixingMatrix;
///
/// // Not regular: node degrees differ.
/// let g = Topology::from_views(vec![vec![1, 2], vec![0], vec![0]]).unwrap();
/// let err = MixingMatrix::from_regular(&g).unwrap_err();
/// assert!(err.to_string().contains("regular"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpectralError {
    message: String,
}

impl SpectralError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpectralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for SpectralError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<SpectralError>();
    }
}

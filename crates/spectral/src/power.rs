//! Contraction coefficient of mixing-matrix products by power iteration.

use glmia_telemetry::{count, Instrument};
use rand::Rng;

use crate::{MixingMatrix, SpectralError};

/// Options for [`product_contraction`] / [`product_contraction_seeded`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProductContractionOptions {
    /// Maximum power-iteration steps.
    pub max_iters: usize,
    /// Relative convergence tolerance on the eigenvalue estimate.
    pub tol: f64,
}

impl Default for ProductContractionOptions {
    fn default() -> Self {
        Self {
            max_iters: 300,
            tol: 1e-10,
        }
    }
}

impl ProductContractionOptions {
    /// The fixed iteration/tolerance contract of the deterministic sparse
    /// spectral path: enough iterations for graphs with small spectral gaps
    /// (large rings) to converge within `1e-9` of the exact eigenvalue, and
    /// a tolerance tight enough that the stopping test — not the budget —
    /// normally ends the iteration. Changing these constants changes every
    /// recorded λ₂ bit pattern, so they are part of the trace contract.
    #[must_use]
    pub fn deterministic() -> Self {
        Self {
            max_iters: 100_000,
            tol: 1e-15,
        }
    }
}

/// A mixing operator: anything that can apply itself (and its transpose) to
/// a vector. Power iteration only needs matrix–vector products, so both the
/// dense [`MixingMatrix`] and the sparse
/// [`SparseMixingMatrix`](crate::SparseMixingMatrix) implement this and
/// share one contraction core.
pub trait MixingOp {
    /// Matrix dimension (the operator maps `ℝⁿ → ℝⁿ`).
    fn n(&self) -> usize;
    /// Computes `W·v` into `out` (both length `n`).
    fn apply_into(&self, v: &[f64], out: &mut [f64]);
    /// Computes `Wᵀ·v` into `out` (both length `n`).
    fn apply_transpose_into(&self, v: &[f64], out: &mut [f64]);
}

impl MixingOp for MixingMatrix {
    fn n(&self) -> usize {
        MixingMatrix::n(self)
    }

    fn apply_into(&self, v: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&self.apply(v));
    }

    fn apply_transpose_into(&self, v: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&self.apply_transpose(v));
    }
}

/// Computes the contraction coefficient of the product
/// `W* = W⁽ᵀ⁾ ⋯ W⁽¹⁾` on the consensus-orthogonal subspace:
///
/// ```text
/// σ₂(W*) = max { ‖W*θ‖ : ‖θ‖ = 1, θ ⊥ 𝟙 }
/// ```
///
/// For a single symmetric `W` this equals `|λ₂|` where `λ₂` is the
/// second-largest-in-magnitude eigenvalue, and for the static product `Wᵀ`
/// it equals `|λ₂(W)|ᵀ` — the quantity plotted in the paper's Figure 8.
/// It is the tight constant in the Boyd et al. consensus bound
/// `‖W*θ − 𝟙θ̄‖ ≤ σ₂(W*)·‖θ − 𝟙θ̄‖` for doubly-stochastic factors.
///
/// The product is never materialized: power iteration runs on
/// `P (W*)ᵀ (W*) P` (with `P` the mean-removal projector) using one forward
/// and one reverse sweep of matrix–vector products per step, so a length-`T`
/// sequence of `n × n` matrices costs `O(iters · T · n²)` dense, or
/// `O(iters · T · nnz)` through the sparse path.
///
/// # Errors
///
/// Returns [`SpectralError`] if `matrices` is empty or dimensions are
/// inconsistent.
///
/// # Examples
///
/// ```
/// use glmia_graph::Topology;
/// use glmia_spectral::{product_contraction, MixingMatrix, ProductContractionOptions};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let g = Topology::ring(8)?;
/// let w = MixingMatrix::from_regular(&g)?;
/// let opts = ProductContractionOptions::default();
/// let single = product_contraction(&[w.clone()], opts, &mut rng)?;
/// let squared = product_contraction(&[w.clone(), w], opts, &mut rng)?;
/// assert!((squared - single * single).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn product_contraction<R: Rng + ?Sized>(
    matrices: &[MixingMatrix],
    opts: ProductContractionOptions,
    rng: &mut R,
) -> Result<f64, SpectralError> {
    let n = validated_dimension(matrices)?;
    if n == 1 {
        return Ok(0.0);
    }
    let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    contraction_core(matrices, opts, v)
}

/// Deterministic variant of [`product_contraction`]: the start vector is
/// derived from `seed` by a SplitMix64 stream instead of a caller-supplied
/// RNG, so identical `(operators, opts, seed)` give bit-identical results
/// on every run, platform thread count, and call site. This is the entry
/// point the trace pipeline records λ₂ through.
///
/// Works on any [`MixingOp`] — pass a slice of
/// [`SparseMixingMatrix`](crate::SparseMixingMatrix) to evaluate the
/// implicit cumulative product `W⁽ᵗ⁾⋯W⁽¹⁾` without ever materializing a
/// dense `n × n` matrix.
///
/// # Errors
///
/// Returns [`SpectralError`] if `ops` is empty or dimensions are
/// inconsistent.
pub fn product_contraction_seeded<M: MixingOp>(
    ops: &[M],
    opts: ProductContractionOptions,
    seed: u64,
) -> Result<f64, SpectralError> {
    let n = validated_dimension(ops)?;
    if n == 1 {
        return Ok(0.0);
    }
    let mut state = seed;
    let v: Vec<f64> = (0..n).map(|_| splitmix_unit(&mut state)).collect();
    contraction_core(ops, opts, v)
}

fn validated_dimension<M: MixingOp>(ops: &[M]) -> Result<usize, SpectralError> {
    let Some(first) = ops.first() else {
        return Err(SpectralError::new(
            "product contraction requires at least one matrix",
        ));
    };
    let n = first.n();
    if ops.iter().any(|m| m.n() != n) {
        return Err(SpectralError::new(
            "all matrices in the product must have the same dimension",
        ));
    }
    Ok(n)
}

/// SplitMix64 step mapped to a uniform draw in `[-1, 1)`.
fn splitmix_unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // 53 mantissa bits → uniform in [0, 1), then shift to [-1, 1).
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
    2.0 * unit - 1.0
}

/// Power iteration on `P (W*)ᵀ (W*) P` from the given start vector, with
/// two ping-pong scratch buffers shared across all sweeps — no allocation
/// inside the iteration loop for operators whose `apply_into` is in-place
/// (the sparse path).
fn contraction_core<M: MixingOp>(
    ops: &[M],
    opts: ProductContractionOptions,
    mut v: Vec<f64>,
) -> Result<f64, SpectralError> {
    let n = v.len();
    project_off_ones(&mut v);
    if normalize(&mut v) == 0.0 {
        // Degenerate draw (probability zero, but stay safe).
        v = (0..n)
            .map(|i| if i == 0 { 1.0 } else { -1.0 / (n as f64 - 1.0) })
            .collect();
        project_off_ones(&mut v);
        normalize(&mut v);
    }

    let mut a = vec![0.0; n];
    let mut b = vec![0.0; n];
    let mut prev_sigma_sq = f64::INFINITY;
    for _ in 0..opts.max_iters {
        count(Instrument::SpectralSweeps, 1);
        count(Instrument::SpectralMatvecs, 2 * ops.len() as u64);
        // a = W* v (apply W⁽¹⁾ first).
        a.copy_from_slice(&v);
        for m in ops {
            m.apply_into(&a, &mut b);
            std::mem::swap(&mut a, &mut b);
        }
        // a = (W*)ᵀ (W* v) (reverse order, transposed factors).
        for m in ops.iter().rev() {
            m.apply_transpose_into(&a, &mut b);
            std::mem::swap(&mut a, &mut b);
        }
        project_off_ones(&mut a);
        // Rayleigh quotient of (W*)ᵀW* at v is vᵀa since ‖v‖ = 1.
        let sigma_sq: f64 = v.iter().zip(&a).map(|(x, y)| x * y).sum();
        if normalize(&mut a) == 0.0 {
            // W* annihilated the whole orthogonal subspace (e.g. complete
            // graph): contraction is exactly 0.
            return Ok(0.0);
        }
        std::mem::swap(&mut v, &mut a);
        if (sigma_sq - prev_sigma_sq).abs() <= opts.tol * sigma_sq.abs().max(1e-300) {
            return Ok(sigma_sq.max(0.0).sqrt());
        }
        prev_sigma_sq = sigma_sq;
    }
    Ok(prev_sigma_sq.max(0.0).sqrt())
}

fn project_off_ones(v: &mut [f64]) {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    for x in v.iter_mut() {
        *x -= mean;
    }
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-150 {
        for x in v.iter_mut() {
            *x /= norm;
        }
        norm
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glmia_graph::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn opts() -> ProductContractionOptions {
        ProductContractionOptions::default()
    }

    #[test]
    fn empty_sequence_errors() {
        assert!(product_contraction(&[], opts(), &mut rng(0)).is_err());
        let empty: &[MixingMatrix] = &[];
        assert!(product_contraction_seeded(empty, opts(), 0).is_err());
    }

    #[test]
    fn dimension_mismatch_errors() {
        let a = MixingMatrix::from_regular(&Topology::ring(4).unwrap()).unwrap();
        let b = MixingMatrix::from_regular(&Topology::ring(5).unwrap()).unwrap();
        assert!(product_contraction(&[a, b], opts(), &mut rng(0)).is_err());
    }

    #[test]
    fn single_matrix_matches_jacobi_lambda2() {
        let mut r = rng(1);
        let g = Topology::random_regular(20, 4, &mut r).unwrap();
        let w = MixingMatrix::from_regular(&g).unwrap();
        let eigs = crate::symmetric_eigenvalues(&w);
        // Power iteration finds the largest-magnitude eigenvalue on the
        // orthogonal subspace.
        let expected = eigs[1..].iter().map(|e| e.abs()).fold(0.0f64, f64::max);
        let sigma = product_contraction(std::slice::from_ref(&w), opts(), &mut r).unwrap();
        assert!(
            (sigma - expected).abs() < 1e-6,
            "sigma {sigma} vs {expected}"
        );
    }

    #[test]
    fn seeded_matches_jacobi_tightly() {
        let mut r = rng(9);
        let g = Topology::random_regular(24, 4, &mut r).unwrap();
        let w = MixingMatrix::from_regular(&g).unwrap();
        let eigs = crate::symmetric_eigenvalues(&w);
        let expected = eigs[1..].iter().map(|e| e.abs()).fold(0.0f64, f64::max);
        let sigma = product_contraction_seeded(
            std::slice::from_ref(&w),
            ProductContractionOptions::deterministic(),
            3,
        )
        .unwrap();
        assert!(
            (sigma - expected).abs() < 1e-9,
            "sigma {sigma} vs {expected}"
        );
    }

    #[test]
    fn seeded_is_bitwise_deterministic() {
        let g = Topology::ring(12).unwrap();
        let w = MixingMatrix::from_regular(&g).unwrap();
        let opts = ProductContractionOptions::deterministic();
        let a = product_contraction_seeded(std::slice::from_ref(&w), opts, 17).unwrap();
        let b = product_contraction_seeded(std::slice::from_ref(&w), opts, 17).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn complete_graph_contracts_to_zero() {
        let w = MixingMatrix::from_regular(&Topology::complete(6).unwrap()).unwrap();
        let sigma = product_contraction(&[w], opts(), &mut rng(2)).unwrap();
        assert!(sigma.abs() < 1e-9);
    }

    #[test]
    fn static_product_is_power_of_single() {
        let mut r = rng(3);
        let g = Topology::random_regular(16, 2, &mut r).unwrap();
        let w = MixingMatrix::from_regular(&g).unwrap();
        let single = product_contraction(std::slice::from_ref(&w), opts(), &mut r).unwrap();
        let seq: Vec<MixingMatrix> = vec![w.clone(); 5];
        let five = product_contraction(&seq, opts(), &mut r).unwrap();
        assert!(
            (five - single.powi(5)).abs() < 1e-6,
            "five-step {five} vs single^5 {}",
            single.powi(5)
        );
    }

    #[test]
    fn dynamic_sequence_contracts_faster_than_static() {
        // The paper's core spectral claim (Fig. 8): randomly permuted
        // (dynamic) graph sequences mix faster than the static graph.
        let mut r = rng(4);
        let n = 40;
        let k = 2;
        let g = Topology::random_regular(n, k, &mut r).unwrap();
        let w_static = MixingMatrix::from_regular(&g).unwrap();
        let t = 10;
        let static_seq: Vec<MixingMatrix> = vec![w_static; t];

        // Dynamic: apply many PeerSwap steps between iterations.
        let mut g_dyn = Topology::random_regular(n, k, &mut r).unwrap();
        let mut dyn_seq = Vec::with_capacity(t);
        for _ in 0..t {
            dyn_seq.push(MixingMatrix::from_regular(&g_dyn).unwrap());
            for _ in 0..n {
                let i = r.gen_range(0..n);
                g_dyn.swap_with_random_neighbor(i, &mut r);
            }
        }
        use rand::Rng;
        let sigma_static = product_contraction(&static_seq, opts(), &mut r).unwrap();
        let sigma_dyn = product_contraction(&dyn_seq, opts(), &mut r).unwrap();
        assert!(
            sigma_dyn < sigma_static,
            "dynamic {sigma_dyn} should beat static {sigma_static}"
        );
    }

    #[test]
    fn contraction_is_within_unit_interval() {
        let mut r = rng(5);
        for &k in &[2usize, 5] {
            let g = Topology::random_regular(20, k, &mut r).unwrap();
            let w = MixingMatrix::from_regular(&g).unwrap();
            let sigma = product_contraction(&[w], opts(), &mut r).unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&sigma), "k={k} sigma={sigma}");
        }
    }

    #[test]
    fn one_by_one_matrix_contracts_to_zero() {
        let w = MixingMatrix::from_vec(1, vec![1.0]).unwrap();
        let sigma = product_contraction(std::slice::from_ref(&w), opts(), &mut rng(6)).unwrap();
        assert_eq!(sigma, 0.0);
        assert_eq!(product_contraction_seeded(&[w], opts(), 0).unwrap(), 0.0);
    }
}

//! Dense mixing matrices built from communication topologies.

use glmia_graph::Topology;
use serde::{Deserialize, Serialize};

use crate::SpectralError;

/// A dense `n × n` gossip mixing matrix in `f64`.
///
/// For the paper's k-regular graphs, `W_{ij} = 1/(k+1)` iff `i = j` or
/// `(i, j)` is an edge ([`MixingMatrix::from_regular`]); such matrices are
/// symmetric and doubly stochastic, the precondition for the Boyd et al.
/// contraction bound (Eq. 10). For non-regular graphs,
/// [`MixingMatrix::metropolis`] builds the Metropolis–Hastings weights,
/// which are also symmetric and doubly stochastic.
///
/// # Examples
///
/// ```
/// use glmia_graph::Topology;
/// use glmia_spectral::MixingMatrix;
///
/// let g = Topology::complete(4)?;
/// let w = MixingMatrix::from_regular(&g)?;
/// // Complete graph with uniform weights averages in one step:
/// let v = w.apply(&[1.0, 0.0, 0.0, 0.0]);
/// assert!(v.iter().all(|&x| (x - 0.25).abs() < 1e-12));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixingMatrix {
    n: usize,
    data: Vec<f64>,
}

impl MixingMatrix {
    /// Builds the uniform-weight mixing matrix of a k-regular topology:
    /// `W = (A + I) / (k + 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`SpectralError`] if the topology is empty or not regular.
    pub fn from_regular(topology: &Topology) -> Result<Self, SpectralError> {
        let n = topology.len();
        if n == 0 {
            return Err(SpectralError::new("topology has no nodes"));
        }
        let k = topology.degree(0);
        if !topology.is_regular(k) {
            return Err(SpectralError::new(
                "topology is not regular; use MixingMatrix::metropolis for general graphs",
            ));
        }
        let w = 1.0 / (k as f64 + 1.0);
        let mut m = Self {
            n,
            data: vec![0.0; n * n],
        };
        for i in 0..n {
            m.data[i * n + i] = w;
            for &j in topology.view(i) {
                m.data[i * n + j] = w;
            }
        }
        Ok(m)
    }

    /// Builds Metropolis–Hastings weights for an arbitrary topology:
    /// `W_{ij} = 1 / (1 + max(dᵢ, dⱼ))` for edges, diagonal absorbs the
    /// remainder. Symmetric and doubly stochastic for any graph.
    ///
    /// # Errors
    ///
    /// Returns [`SpectralError`] if the topology is empty.
    pub fn metropolis(topology: &Topology) -> Result<Self, SpectralError> {
        let n = topology.len();
        if n == 0 {
            return Err(SpectralError::new("topology has no nodes"));
        }
        let mut m = Self {
            n,
            data: vec![0.0; n * n],
        };
        for i in 0..n {
            let mut off_diag = 0.0;
            for &j in topology.view(i) {
                let w = 1.0 / (1.0 + topology.degree(i).max(topology.degree(j)) as f64);
                m.data[i * n + j] = w;
                off_diag += w;
            }
            m.data[i * n + i] = 1.0 - off_diag;
        }
        Ok(m)
    }

    /// Builds a matrix from explicit row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`SpectralError`] if `data.len() != n * n` or `n == 0`.
    pub fn from_vec(n: usize, data: Vec<f64>) -> Result<Self, SpectralError> {
        if n == 0 {
            return Err(SpectralError::new("matrix must have at least one row"));
        }
        if data.len() != n * n {
            return Err(SpectralError::new(format!(
                "expected {} elements for a {n}x{n} matrix, got {}",
                n * n,
                data.len()
            )));
        }
        Ok(Self { n, data })
    }

    /// Matrix dimension.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j]
    }

    /// The underlying row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Computes `W·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != n`.
    #[must_use]
    pub fn apply(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n, "vector length mismatch");
        let mut out = vec![0.0; self.n];
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.n)) {
            *o = row.iter().zip(v).map(|(w, x)| w * x).sum();
        }
        out
    }

    /// Computes `Wᵀ·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != n`.
    #[must_use]
    pub fn apply_transpose(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n, "vector length mismatch");
        let mut out = vec![0.0; self.n];
        for (row, x) in self.data.chunks_exact(self.n).zip(v) {
            for (o, w) in out.iter_mut().zip(row) {
                *o += w * x;
            }
        }
        out
    }

    /// Computes the matrix product `self · other`.
    ///
    /// Used by trace analysis to accumulate the cumulative mixing product
    /// `W* = W⁽ᵗ⁾⋯W⁽¹⁾` round by round.
    ///
    /// # Errors
    ///
    /// Returns [`SpectralError`] if the dimensions differ.
    pub fn matmul(&self, other: &Self) -> Result<Self, SpectralError> {
        if self.n != other.n {
            return Err(SpectralError::new(format!(
                "cannot multiply a {0}x{0} matrix by a {1}x{1} matrix",
                self.n, other.n
            )));
        }
        let n = self.n;
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for l in 0..n {
                let a = self.data[i * n + l];
                if a == 0.0 {
                    continue;
                }
                let row = &other.data[l * n..(l + 1) * n];
                for (out, &b) in data[i * n..(i + 1) * n].iter_mut().zip(row) {
                    *out += a * b;
                }
            }
        }
        Ok(Self { n, data })
    }

    /// The second-largest-*magnitude* eigenvalue `max_{i≥2} |λᵢ(W)|` of a
    /// symmetric mixing matrix — the single-matrix contraction coefficient
    /// σ₂ measured by [`product_contraction`](crate::product_contraction),
    /// computed exactly with the Jacobi eigensolver.
    ///
    /// Differs from [`MixingMatrix::lambda2`] (the *signed* second-largest
    /// eigenvalue) when the spectrum has a large negative tail.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not symmetric (within `1e-9`) or `n < 2`;
    /// [`MixingMatrix::try_lambda2_magnitude`] is the fallible form.
    #[must_use]
    pub fn lambda2_magnitude(&self) -> f64 {
        self.try_lambda2_magnitude()
            .expect("caller promised a symmetric matrix with n >= 2")
    }

    /// Fallible form of [`MixingMatrix::lambda2_magnitude`], for callers
    /// whose matrix comes from data (empirical reconstructions, configs)
    /// rather than from a constructor that already guarantees symmetry.
    ///
    /// # Errors
    ///
    /// Returns [`SpectralError`] if the matrix is not symmetric (within
    /// `1e-9`) or `n < 2`.
    pub fn try_lambda2_magnitude(&self) -> Result<f64, SpectralError> {
        self.spectral_preconditions()?;
        let eigs = crate::symmetric_eigenvalues(self);
        Ok(eigs[1..].iter().map(|e| e.abs()).fold(0.0f64, f64::max))
    }

    /// λ₂'s preconditions as a typed error: the Jacobi solver needs a
    /// symmetric matrix and a second eigenvalue to exist.
    fn spectral_preconditions(&self) -> Result<(), SpectralError> {
        if self.n < 2 {
            return Err(SpectralError::new("λ₂ requires at least a 2x2 matrix"));
        }
        if !self.is_symmetric(1e-9) {
            return Err(SpectralError::new("λ₂ requires a symmetric matrix"));
        }
        Ok(())
    }

    /// Whether all row and column sums are within `tol` of 1 and all
    /// entries are non-negative.
    #[must_use]
    pub fn is_doubly_stochastic(&self, tol: f64) -> bool {
        if self.data.iter().any(|&x| x < -tol) {
            return false;
        }
        for i in 0..self.n {
            let row: f64 = self.data[i * self.n..(i + 1) * self.n].iter().sum();
            if (row - 1.0).abs() > tol {
                return false;
            }
        }
        for j in 0..self.n {
            let col: f64 = (0..self.n).map(|i| self.data[i * self.n + j]).sum();
            if (col - 1.0).abs() > tol {
                return false;
            }
        }
        true
    }

    /// Whether the matrix is symmetric within `tol`.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if (self.data[i * self.n + j] - self.data[j * self.n + i]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// The second-largest eigenvalue `λ₂(W)` of a symmetric mixing matrix,
    /// computed exactly with the Jacobi eigensolver.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not symmetric (within `1e-9`) or `n < 2`;
    /// [`MixingMatrix::try_lambda2`] is the fallible form.
    #[must_use]
    pub fn lambda2(&self) -> f64 {
        self.try_lambda2()
            .expect("caller promised a symmetric matrix with n >= 2")
    }

    /// Fallible form of [`MixingMatrix::lambda2`].
    ///
    /// # Errors
    ///
    /// Returns [`SpectralError`] if the matrix is not symmetric (within
    /// `1e-9`) or `n < 2`.
    pub fn try_lambda2(&self) -> Result<f64, SpectralError> {
        self.spectral_preconditions()?;
        let eigs = crate::symmetric_eigenvalues(self);
        Ok(eigs[1])
    }

    /// The spectral gap `1 − λ₂(W)`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MixingMatrix::lambda2`].
    #[must_use]
    pub fn spectral_gap(&self) -> f64 {
        1.0 - self.lambda2()
    }

    /// Fallible form of [`MixingMatrix::spectral_gap`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`MixingMatrix::try_lambda2`].
    pub fn try_spectral_gap(&self) -> Result<f64, SpectralError> {
        Ok(1.0 - self.try_lambda2()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn regular_matrix_entries() {
        let ring = Topology::ring(4).unwrap();
        let w = MixingMatrix::from_regular(&ring).unwrap();
        let third = 1.0 / 3.0;
        assert!((w.get(0, 0) - third).abs() < 1e-12);
        assert!((w.get(0, 1) - third).abs() < 1e-12);
        assert!((w.get(0, 2) - 0.0).abs() < 1e-12);
        assert!((w.get(0, 3) - third).abs() < 1e-12);
    }

    #[test]
    fn regular_matrices_are_symmetric_doubly_stochastic() {
        let mut rng = StdRng::seed_from_u64(0);
        for &k in &[2usize, 5, 10] {
            let g = Topology::random_regular(40, k, &mut rng).unwrap();
            let w = MixingMatrix::from_regular(&g).unwrap();
            assert!(w.is_symmetric(1e-12));
            assert!(w.is_doubly_stochastic(1e-9));
        }
    }

    #[test]
    fn from_regular_rejects_irregular() {
        let g = Topology::from_views(vec![vec![1, 2], vec![0], vec![0]]).unwrap();
        assert!(MixingMatrix::from_regular(&g).is_err());
    }

    #[test]
    fn metropolis_handles_irregular_graphs() {
        let g = Topology::from_views(vec![vec![1, 2], vec![0], vec![0]]).unwrap();
        let w = MixingMatrix::metropolis(&g).unwrap();
        assert!(w.is_symmetric(1e-12));
        assert!(w.is_doubly_stochastic(1e-9));
    }

    #[test]
    fn apply_preserves_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Topology::random_regular(20, 4, &mut rng).unwrap();
        let w = MixingMatrix::from_regular(&g).unwrap();
        let v: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mean_before: f64 = v.iter().sum::<f64>() / 20.0;
        let out = w.apply(&v);
        let mean_after: f64 = out.iter().sum::<f64>() / 20.0;
        assert!((mean_before - mean_after).abs() < 1e-9);
    }

    #[test]
    fn apply_transpose_equals_apply_for_symmetric() {
        let g = Topology::ring(6).unwrap();
        let w = MixingMatrix::from_regular(&g).unwrap();
        let v: Vec<f64> = vec![1.0, -2.0, 0.5, 3.0, 0.0, -1.0];
        let a = w.apply(&v);
        let b = w.apply_transpose(&v);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn from_vec_validates() {
        assert!(MixingMatrix::from_vec(0, vec![]).is_err());
        assert!(MixingMatrix::from_vec(2, vec![0.0; 3]).is_err());
        assert!(MixingMatrix::from_vec(2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn matmul_matches_repeated_apply() {
        let g = Topology::ring(6).unwrap();
        let w = MixingMatrix::from_regular(&g).unwrap();
        let w2 = w.matmul(&w).unwrap();
        let v: Vec<f64> = (0..6).map(|i| i as f64 - 2.0).collect();
        let twice = w.apply(&w.apply(&v));
        let product = w2.apply(&v);
        for (a, b) in twice.iter().zip(&product) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_rejects_dimension_mismatch() {
        let a = MixingMatrix::from_vec(2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let b = MixingMatrix::from_vec(3, vec![0.0; 9]).unwrap();
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn lambda2_magnitude_dominates_signed_lambda2() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Topology::random_regular(20, 2, &mut rng).unwrap();
        let w = MixingMatrix::from_regular(&g).unwrap();
        assert!(w.lambda2_magnitude() >= w.lambda2() - 1e-12);
        assert!(w.lambda2_magnitude() <= 1.0 + 1e-9);
    }

    #[test]
    fn try_lambda2_rejects_bad_matrices_with_typed_errors() {
        let tiny = MixingMatrix::from_vec(1, vec![1.0]).unwrap();
        assert!(tiny.try_lambda2().is_err());
        assert!(tiny.try_lambda2_magnitude().is_err());
        assert!(tiny.try_spectral_gap().is_err());
        let asym = MixingMatrix::from_vec(2, vec![1.0, 0.0, 0.5, 0.5]).unwrap();
        assert!(asym.try_lambda2().is_err());
        let good = MixingMatrix::from_vec(2, vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        assert_eq!(good.try_lambda2().unwrap(), good.lambda2());
        assert_eq!(good.try_spectral_gap().unwrap(), good.spectral_gap());
    }

    #[test]
    fn complete_graph_lambda2_is_zero() {
        let g = Topology::complete(5).unwrap();
        let w = MixingMatrix::from_regular(&g).unwrap();
        assert!(w.lambda2().abs() < 1e-9);
        assert!((w.spectral_gap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ring_lambda2_matches_closed_form() {
        // Ring of n nodes with uniform 1/3 weights: eigenvalues are
        // (1 + 2cos(2πm/n)) / 3; λ₂ corresponds to m = 1.
        let n = 10;
        let g = Topology::ring(n).unwrap();
        let w = MixingMatrix::from_regular(&g).unwrap();
        let expected = (1.0 + 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos()) / 3.0;
        assert!((w.lambda2() - expected).abs() < 1e-9);
    }
}

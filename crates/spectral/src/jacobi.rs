//! Cyclic Jacobi eigensolver for symmetric matrices.

use crate::MixingMatrix;

/// Maximum number of full Jacobi sweeps before giving up on convergence.
const MAX_SWEEPS: usize = 100;

/// Computes all eigenvalues of a symmetric matrix with the cyclic Jacobi
/// rotation method, returned sorted in descending order.
///
/// Jacobi is slow (`O(n³)` per sweep) but simple, numerically robust and
/// exact enough for the `n ≤ a few hundred` mixing matrices this workspace
/// analyzes.
///
/// # Panics
///
/// Panics if the matrix is not symmetric within `1e-9`.
///
/// # Examples
///
/// ```
/// use glmia_spectral::{symmetric_eigenvalues, MixingMatrix};
///
/// let m = MixingMatrix::from_vec(2, vec![2.0, 1.0, 1.0, 2.0])?;
/// let eigs = symmetric_eigenvalues(&m);
/// assert!((eigs[0] - 3.0).abs() < 1e-9);
/// assert!((eigs[1] - 1.0).abs() < 1e-9);
/// # Ok::<(), glmia_spectral::SpectralError>(())
/// ```
#[must_use]
pub fn symmetric_eigenvalues(matrix: &MixingMatrix) -> Vec<f64> {
    assert!(
        matrix.is_symmetric(1e-9),
        "jacobi eigensolver requires a symmetric matrix"
    );
    let n = matrix.n();
    let mut a = matrix.as_slice().to_vec();
    for _ in 0..MAX_SWEEPS {
        let mut off: f64 = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i * n + j] * a[i * n + j];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable rotation parameter t = sign(θ) / (|θ| + sqrt(θ² + 1)).
                let t = if theta >= 0.0 {
                    1.0 / (theta + (theta * theta + 1.0).sqrt())
                } else {
                    -1.0 / (-theta + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, θ) on both sides: A ← GᵀAG.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
            }
        }
    }
    let mut eigs: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
    eigs.sort_by(|x, y| y.total_cmp(x));
    eigs
}

#[cfg(test)]
mod tests {
    use super::*;
    use glmia_graph::Topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn diagonal_matrix_eigenvalues_are_the_diagonal() {
        let m =
            MixingMatrix::from_vec(3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]).unwrap();
        let eigs = symmetric_eigenvalues(&m);
        assert!((eigs[0] - 3.0).abs() < 1e-12);
        assert!((eigs[1] - 2.0).abs() < 1e-12);
        assert!((eigs[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_by_two_closed_form() {
        let m = MixingMatrix::from_vec(2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        let eigs = symmetric_eigenvalues(&m);
        assert!((eigs[0] - 3.0).abs() < 1e-10);
        assert!((eigs[1] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn trace_is_preserved() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 12;
        let mut data = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let v: f64 = rng.gen_range(-1.0..1.0);
                data[i * n + j] = v;
                data[j * n + i] = v;
            }
        }
        let m = MixingMatrix::from_vec(n, data.clone()).unwrap();
        let trace: f64 = (0..n).map(|i| data[i * n + i]).sum();
        let eig_sum: f64 = symmetric_eigenvalues(&m).iter().sum();
        assert!((trace - eig_sum).abs() < 1e-8);
    }

    #[test]
    fn stochastic_matrix_top_eigenvalue_is_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Topology::random_regular(30, 4, &mut rng).unwrap();
        let w = MixingMatrix::from_regular(&g).unwrap();
        let eigs = symmetric_eigenvalues(&w);
        assert!((eigs[0] - 1.0).abs() < 1e-9);
        // Connected graph: λ₂ strictly below 1.
        assert!(eigs[1] < 1.0 - 1e-6);
        // Gershgorin bound for W = (A + I)/(k + 1): eigenvalues ≥ (1-k)/(1+k).
        let bound = (1.0 - 4.0) / (1.0 + 4.0);
        assert!(*eigs.last().unwrap() >= bound - 1e-9);
    }

    #[test]
    #[should_panic(expected = "requires a symmetric matrix")]
    fn asymmetric_input_panics() {
        let m = MixingMatrix::from_vec(2, vec![1.0, 2.0, 0.0, 1.0]).unwrap();
        let _ = symmetric_eigenvalues(&m);
    }
}

//! Mixing times and the paper's Eq. 11 bound.

use rand::Rng;

use crate::{product_contraction, MixingMatrix, ProductContractionOptions, SpectralError};

/// The number of synchronous gossip iterations needed to contract the
/// consensus distance by a factor `epsilon`, from the per-step contraction
/// `lambda2`: `t(ε) = ⌈ln ε / ln λ₂⌉`.
///
/// Returns `None` when `lambda2 >= 1` (no contraction) and `Some(0)` when
/// `lambda2 <= 0` (one-step consensus) or `epsilon >= 1`.
///
/// # Panics
///
/// Panics if `epsilon <= 0` or either argument is NaN.
///
/// # Examples
///
/// ```
/// use glmia_spectral::mixing_time;
///
/// // λ₂ = 0.5 halves the distance per step: 1/1024 needs 10 steps.
/// assert_eq!(mixing_time(0.5, 1.0 / 1024.0), Some(10));
/// assert_eq!(mixing_time(1.0, 0.1), None);
/// assert_eq!(mixing_time(0.0, 0.1), Some(0));
/// ```
#[must_use]
pub fn mixing_time(lambda2: f64, epsilon: f64) -> Option<u32> {
    assert!(!lambda2.is_nan() && !epsilon.is_nan(), "NaN argument");
    assert!(epsilon > 0.0, "epsilon must be positive");
    if epsilon >= 1.0 {
        return Some(0);
    }
    if lambda2 >= 1.0 {
        return None;
    }
    if lambda2 <= 0.0 {
        return Some(0);
    }
    Some((epsilon.ln() / lambda2.ln()).ceil() as u32)
}

/// Compares the paper's two bounds on the mixing of a matrix sequence
/// (§4): the per-factor product bound of Eq. 11,
/// `∏ₜ λ₂(W⁽ᵗ⁾)`, against the joint contraction `σ₂(W⁽ᵀ⁾⋯W⁽¹⁾)` of
/// Eq. 10 applied to the whole product.
///
/// The joint value is always ≤ the Eq. 11 bound; the *gap* between them is
/// exactly the benefit of varying the communication graph, which Eq. 11 is
/// blind to. For a static sequence the two coincide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixingBoundComparison {
    /// The Eq. 11 per-factor bound `∏ₜ λ₂(W⁽ᵗ⁾)` (using |λ₂| of each
    /// factor).
    pub per_factor_bound: f64,
    /// The joint contraction `σ₂(W*)` of the whole product.
    pub joint: f64,
}

impl MixingBoundComparison {
    /// How much tighter the joint analysis is: `per_factor_bound − joint`
    /// (non-negative up to numerical error).
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.per_factor_bound - self.joint
    }
}

/// Computes [`MixingBoundComparison`] for a sequence of symmetric
/// doubly-stochastic mixing matrices.
///
/// # Errors
///
/// Returns [`SpectralError`] if the sequence is empty or dimensions are
/// inconsistent.
pub fn compare_mixing_bounds<R: Rng + ?Sized>(
    matrices: &[MixingMatrix],
    rng: &mut R,
) -> Result<MixingBoundComparison, SpectralError> {
    if matrices.is_empty() {
        return Err(SpectralError::new(
            "bound comparison requires at least one matrix",
        ));
    }
    let opts = ProductContractionOptions::default();
    let mut per_factor_bound = 1.0;
    for m in matrices {
        per_factor_bound *= product_contraction(std::slice::from_ref(m), opts, rng)?;
    }
    let joint = product_contraction(matrices, opts, rng)?;
    Ok(MixingBoundComparison {
        per_factor_bound,
        joint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use glmia_graph::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn mixing_time_closed_forms() {
        assert_eq!(mixing_time(0.5, 0.25), Some(2));
        assert_eq!(mixing_time(0.9, 0.5), Some(7)); // ln 0.5 / ln 0.9 ≈ 6.58
        assert_eq!(mixing_time(0.99, 1.5), Some(0));
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn mixing_time_rejects_zero_epsilon() {
        let _ = mixing_time(0.5, 0.0);
    }

    #[test]
    fn static_sequence_has_no_gap() {
        let mut r = rng(0);
        let g = Topology::random_regular(20, 3, &mut r).unwrap();
        let w = MixingMatrix::from_regular(&g).unwrap();
        let seq = vec![w; 4];
        let cmp = compare_mixing_bounds(&seq, &mut r).unwrap();
        assert!(cmp.gap().abs() < 1e-6, "static gap was {}", cmp.gap());
    }

    #[test]
    fn dynamic_sequence_has_positive_gap() {
        // Four different random 2-regular graphs: the joint contraction
        // beats the per-factor product (Eq. 11 is loose under dynamics).
        let mut r = rng(1);
        let seq: Vec<MixingMatrix> = (0..4)
            .map(|_| {
                let g = Topology::random_regular(30, 2, &mut r).unwrap();
                MixingMatrix::from_regular(&g).unwrap()
            })
            .collect();
        let cmp = compare_mixing_bounds(&seq, &mut r).unwrap();
        assert!(
            cmp.joint <= cmp.per_factor_bound + 1e-9,
            "joint {} must not exceed the per-factor bound {}",
            cmp.joint,
            cmp.per_factor_bound
        );
        assert!(
            cmp.gap() > 0.01,
            "expected a positive dynamics gap, got {}",
            cmp.gap()
        );
    }

    #[test]
    fn empty_sequence_errors() {
        assert!(compare_mixing_bounds(&[], &mut rng(2)).is_err());
    }
}

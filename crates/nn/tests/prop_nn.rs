//! Property-based tests of the neural-network substrate.

use glmia_nn::{Activation, Matrix, Mlp, MlpSpec, Sgd};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy for small random MLP architectures.
fn arch() -> impl Strategy<Value = (usize, Vec<usize>, usize)> {
    (
        1usize..8,
        proptest::collection::vec(1usize..10, 0..3),
        2usize..6,
    )
}

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect(),
    )
    .expect("consistent dims")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flat_roundtrip_for_random_architectures(
        (input, hidden, classes) in arch(),
        seed in 0u64..1000,
    ) {
        let spec = MlpSpec::new(input, &hidden, classes, Activation::Relu).unwrap();
        let model = Mlp::new(&spec, &mut StdRng::seed_from_u64(seed));
        let flat = model.flat_params();
        prop_assert_eq!(flat.len(), spec.num_params());
        let rebuilt = Mlp::from_flat(&spec, &flat).unwrap();
        prop_assert_eq!(rebuilt.flat_params(), flat);
    }

    #[test]
    fn predictions_are_valid_distributions(
        (input, hidden, classes) in arch(),
        batch in 1usize..6,
        seed in 0u64..1000,
    ) {
        let spec = MlpSpec::new(input, &hidden, classes, Activation::Tanh).unwrap();
        let model = Mlp::new(&spec, &mut StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let x = random_matrix(batch, input, &mut rng);
        let probs = model.predict_proba(&x).unwrap();
        prop_assert_eq!(probs.rows(), batch);
        prop_assert_eq!(probs.cols(), classes);
        for r in 0..batch {
            let sum: f32 = probs.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(probs.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        let preds = model.predict(&x);
        prop_assert!(preds.iter().all(|&p| p < classes));
    }

    #[test]
    fn matmul_is_associative_on_vectors(
        n in 1usize..8,
        seed in 0u64..1000,
    ) {
        // (A·B)·v == A·(B·v) within f32 tolerance.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(n, n, &mut rng);
        let b = random_matrix(n, n, &mut rng);
        let v = random_matrix(n, 1, &mut rng);
        let left = a.matmul(&b).unwrap().matmul(&v).unwrap();
        let right = a.matmul(&b.matmul(&v).unwrap()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_is_an_involution(
        rows in 1usize..8,
        cols in 1usize..8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(rows, cols, &mut rng);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn sgd_steps_reduce_loss_on_a_fixed_batch(
        seed in 0u64..500,
    ) {
        // On a fixed batch with a small lr, 25 full-batch steps must not
        // increase the loss (deterministic gradient descent).
        let spec = MlpSpec::new(4, &[8], 3, Activation::Tanh).unwrap();
        let mut model = Mlp::new(&spec, &mut StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let x = random_matrix(6, 4, &mut rng);
        let y: Vec<usize> = (0..6).map(|i| i % 3).collect();
        let before = model.loss(&x, &y);
        let mut opt = Sgd::new(0.01);
        for _ in 0..25 {
            model.train_batch(&x, &y, &mut opt);
        }
        let after = model.loss(&x, &y);
        prop_assert!(after <= before + 1e-4, "loss rose from {before} to {after}");
    }

    #[test]
    fn weight_decay_bounds_parameter_growth(
        seed in 0u64..500,
    ) {
        // With strong decay and zero gradients, parameter norm shrinks
        // monotonically.
        let spec = MlpSpec::new(3, &[5], 2, Activation::Relu).unwrap();
        let mut model = Mlp::new(&spec, &mut StdRng::seed_from_u64(seed));
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        let norm = |m: &Mlp| m.flat_params().iter().map(|p| p * p).sum::<f32>();
        let mut prev = norm(&model);
        for _ in 0..5 {
            model.zero_grad();
            opt.step(&mut model);
            let current = norm(&model);
            prop_assert!(current <= prev + 1e-6);
            prev = current;
        }
    }
}

//! Error type for shape and specification mismatches.

use std::error::Error;
use std::fmt;

/// Error returned on invalid shapes or model specifications.
///
/// # Examples
///
/// ```
/// use glmia_nn::Matrix;
///
/// let err = Matrix::from_vec(2, 3, vec![1.0]).unwrap_err();
/// assert!(err.to_string().contains("expected"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NnError {
    message: String,
}

impl NnError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<NnError>();
    }

    #[test]
    fn display_matches_message() {
        assert_eq!(NnError::new("oops").to_string(), "oops");
    }
}

//! Fully-connected (affine) layer with cached-input backpropagation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{kaiming_normal, Matrix, NnError};

/// A fully-connected layer `y = x·W + b` with `W: in_dim × out_dim`.
///
/// The layer caches its last forward input so that a subsequent
/// [`Linear::backward`] call can accumulate parameter gradients; gradients
/// accumulate across calls until [`Linear::zero_grad`].
///
/// # Examples
///
/// ```
/// use glmia_nn::{Linear, Matrix};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), glmia_nn::NnError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut layer = Linear::new(3, 2, &mut rng);
/// let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0])?;
/// let y = layer.forward(&x)?;
/// assert_eq!(y.cols(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    weight: Matrix,
    bias: Vec<f32>,
    grad_weight: Matrix,
    grad_bias: Vec<f32>,
    #[serde(skip)]
    cached_input: Option<Matrix>,
}

impl Linear {
    /// Creates a layer with Kaiming-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if `in_dim == 0` or `out_dim == 0`.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be positive"
        );
        let mut weight = Matrix::zeros(in_dim, out_dim);
        kaiming_normal(weight.as_mut_slice(), in_dim, rng);
        Self {
            bias: vec![0.0; out_dim],
            grad_weight: Matrix::zeros(in_dim, out_dim),
            grad_bias: vec![0.0; out_dim],
            cached_input: None,
            weight,
        }
    }

    /// Creates a layer with all-zero weights and bias (a placeholder to be
    /// overwritten via [`Linear::load_flat`]).
    ///
    /// # Panics
    ///
    /// Panics if `in_dim == 0` or `out_dim == 0`.
    #[must_use]
    pub fn zeros(in_dim: usize, out_dim: usize) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be positive"
        );
        Self {
            weight: Matrix::zeros(in_dim, out_dim),
            bias: vec![0.0; out_dim],
            grad_weight: Matrix::zeros(in_dim, out_dim),
            grad_bias: vec![0.0; out_dim],
            cached_input: None,
        }
    }

    /// Input dimension.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Total number of trainable parameters (weights + biases).
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// The weight matrix.
    #[must_use]
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// The bias vector.
    #[must_use]
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Computes `x·W + b`, caching `x` for the backward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `x.cols() != in_dim`.
    pub fn forward(&mut self, x: &Matrix) -> Result<Matrix, NnError> {
        let mut y = x.matmul(&self.weight)?;
        y.add_row_broadcast(&self.bias);
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    /// Computes `x·W + b` without caching (inference path).
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `x.cols() != in_dim`.
    pub fn forward_inference(&self, x: &Matrix) -> Result<Matrix, NnError> {
        let mut y = x.matmul(&self.weight)?;
        y.add_row_broadcast(&self.bias);
        Ok(y)
    }

    /// Accumulates parameter gradients from `grad_out` and returns the
    /// gradient with respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if no forward pass was cached or shapes mismatch.
    pub fn backward(&mut self, grad_out: &Matrix) -> Result<Matrix, NnError> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::new("backward called before forward"))?;
        if grad_out.rows() != x.rows() || grad_out.cols() != self.weight.cols() {
            return Err(NnError::new(format!(
                "backward shape mismatch: grad {}x{}, expected {}x{}",
                grad_out.rows(),
                grad_out.cols(),
                x.rows(),
                self.weight.cols()
            )));
        }
        let dw = x.t_matmul(grad_out)?;
        for (g, d) in self
            .grad_weight
            .as_mut_slice()
            .iter_mut()
            .zip(dw.as_slice())
        {
            *g += d;
        }
        for (g, d) in self.grad_bias.iter_mut().zip(grad_out.sum_rows()) {
            *g += d;
        }
        grad_out.matmul_t(&self.weight)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight.as_mut_slice().fill(0.0);
        self.grad_bias.fill(0.0);
    }

    /// Visits `(param, grad)` pairs mutably: weights first, then biases.
    /// Row-major order; stable across calls (used by the optimizer and the
    /// flat-vector views).
    pub fn visit_params_mut(&mut self, mut f: impl FnMut(&mut f32, f32)) {
        for (p, &g) in self
            .weight
            .as_mut_slice()
            .iter_mut()
            .zip(self.grad_weight.as_slice())
        {
            f(p, g);
        }
        for (p, &g) in self.bias.iter_mut().zip(&self.grad_bias) {
            f(p, g);
        }
    }

    /// Appends the layer's parameters to `out` in the order used by
    /// [`Linear::load_flat`].
    pub fn store_flat(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weight.as_slice());
        out.extend_from_slice(&self.bias);
    }

    /// Loads parameters from a flat slice, returning how many values were
    /// consumed.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `flat` holds fewer values than the layer needs.
    pub fn load_flat(&mut self, flat: &[f32]) -> Result<usize, NnError> {
        let need = self.num_params();
        if flat.len() < need {
            return Err(NnError::new(format!(
                "flat parameter slice too short: need {need}, got {}",
                flat.len()
            )));
        }
        let (w, rest) = flat.split_at(self.weight.len());
        self.weight.as_mut_slice().copy_from_slice(w);
        let bias_len = self.bias.len();
        self.bias.copy_from_slice(&rest[..bias_len]);
        Ok(need)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn forward_matches_hand_computation() {
        let mut l = Linear::new(2, 2, &mut rng());
        // Overwrite parameters with known values.
        l.load_flat(&[1.0, 2.0, 3.0, 4.0, 0.5, -0.5]).unwrap();
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]).unwrap();
        let y = l.forward(&x).unwrap();
        // [1, 1] · [[1, 2], [3, 4]] + [0.5, -0.5] = [4.5, 5.5]
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn forward_inference_matches_forward() {
        let mut l = Linear::new(3, 4, &mut rng());
        let x = Matrix::from_vec(2, 3, vec![0.1; 6]).unwrap();
        let a = l.forward(&x).unwrap();
        let b = l.forward_inference(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut l = Linear::new(2, 2, &mut rng());
        let g = Matrix::zeros(1, 2);
        assert!(l.backward(&g).is_err());
    }

    #[test]
    fn backward_shape_mismatch_errors() {
        let mut l = Linear::new(2, 2, &mut rng());
        let x = Matrix::zeros(1, 2);
        l.forward(&x).unwrap();
        assert!(l.backward(&Matrix::zeros(1, 3)).is_err());
        assert!(l.backward(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut l = Linear::new(2, 1, &mut rng());
        l.load_flat(&[1.0, 1.0, 0.0]).unwrap();
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let g = Matrix::from_vec(1, 1, vec![1.0]).unwrap();
        l.forward(&x).unwrap();
        l.backward(&g).unwrap();
        l.forward(&x).unwrap();
        l.backward(&g).unwrap();
        // dW = x^T g accumulated twice -> [2, 4]; db = 2.
        assert_eq!(l.grad_weight.as_slice(), &[2.0, 4.0]);
        assert_eq!(l.grad_bias, vec![2.0]);
        l.zero_grad();
        assert_eq!(l.grad_weight.as_slice(), &[0.0, 0.0]);
        assert_eq!(l.grad_bias, vec![0.0]);
    }

    #[test]
    fn flat_roundtrip_preserves_parameters() {
        let a = Linear::new(3, 2, &mut rng());
        let mut flat = Vec::new();
        a.store_flat(&mut flat);
        assert_eq!(flat.len(), a.num_params());
        let mut b = Linear::new(3, 2, &mut StdRng::seed_from_u64(7));
        let consumed = b.load_flat(&flat).unwrap();
        assert_eq!(consumed, flat.len());
        assert_eq!(b.weight().as_slice(), a.weight().as_slice());
        assert_eq!(b.bias(), a.bias());
    }

    #[test]
    fn load_flat_too_short_errors() {
        let mut l = Linear::new(2, 2, &mut rng());
        assert!(l.load_flat(&[0.0; 3]).is_err());
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dim_panics() {
        Linear::new(0, 2, &mut rng());
    }
}

//! A small row-major `f32` matrix with the kernels backpropagation needs.

use serde::{Deserialize, Serialize};

use crate::NnError;

/// A dense row-major `f32` matrix.
///
/// This deliberately implements only the operations the MLP forward/backward
/// passes and gossip model averaging require: matrix products (including the
/// `AᵀB` and `ABᵀ` forms needed by backprop without materializing
/// transposes), row-broadcast addition, and elementwise maps.
///
/// # Examples
///
/// ```
/// use glmia_nn::Matrix;
///
/// # fn main() -> Result<(), glmia_nn::NnError> {
/// let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
/// let b = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0])?;
/// let c = a.matmul(&b)?;
/// assert_eq!(c.as_slice(), &[4.0, 5.0, 10.0, 11.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, NnError> {
        if data.len() != rows * cols {
            return Err(NnError::new(format!(
                "expected {} elements for a {rows}x{cols} matrix, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, NnError> {
        let Some(first) = rows.first() else {
            return Err(NnError::new("from_rows requires at least one row"));
        };
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(NnError::new(format!(
                    "row {i} has {} columns, expected {cols}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major data, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major data.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Builds a new matrix containing the given rows of `self`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut out = Self::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != other.rows {
            return Err(NnError::new(format!(
                "matmul shape mismatch: {}x{} . {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `self.rows != other.rows`.
    pub fn t_matmul(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.rows != other.rows {
            return Err(NnError::new(format!(
                "t_matmul shape mismatch: ({}x{})^T . {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `self.cols != other.cols`.
    pub fn matmul_t(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != other.cols {
            return Err(NnError::new(format!(
                "matmul_t shape mismatch: {}x{} . ({}x{})^T",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        Ok(out)
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds `v` to every row of `self` in place (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn add_row_broadcast(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.cols, "broadcast length mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(v) {
                *x += b;
            }
        }
    }

    /// Sums over rows, producing a length-`cols` vector (bias gradient).
    #[must_use]
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise product in place: `self[i] *= other[i]`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard_in_place(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// The index of the maximum element of each row (ties resolve to the
    /// first maximum). Used for top-1 predictions.
    #[must_use]
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &x) in row.iter().enumerate() {
                    if x > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec()).unwrap()
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let ok = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(ok.get(1, 0), 3.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_shape_mismatch() {
        let a = m(2, 3, &[0.0; 6]);
        assert!(a.matmul(&m(2, 2, &[0.0; 4])).is_err());
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, -2.0, 3.0, 0.5, 1.5, -0.5]);
        let b = m(4, 3, &(0..12).map(|i| (i as f32) * 0.5).collect::<Vec<_>>());
        let fast = a.matmul_t(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_row_broadcast_adds_bias() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "broadcast length mismatch")]
    fn add_row_broadcast_panics_on_mismatch() {
        Matrix::zeros(2, 3).add_row_broadcast(&[1.0]);
    }

    #[test]
    fn sum_rows_matches_hand_computation() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum_rows(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn argmax_rows_first_tie_wins() {
        let a = m(2, 3, &[1.0, 3.0, 3.0, 0.0, -1.0, -2.0]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn select_rows_copies_rows() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.as_slice(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let mut a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[2.0, 0.5, 1.0, 0.0]);
        a.hadamard_in_place(&b);
        assert_eq!(a.as_slice(), &[2.0, 1.0, 3.0, 0.0]);
    }

    #[test]
    fn map_and_scale() {
        let mut a = m(1, 3, &[-1.0, 0.0, 2.0]);
        a.map_in_place(|x| x.max(0.0));
        assert_eq!(a.as_slice(), &[0.0, 0.0, 2.0]);
        a.scale_in_place(2.0);
        assert_eq!(a.as_slice(), &[0.0, 0.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let _ = m(1, 1, &[0.0]).get(0, 1);
    }

    #[test]
    fn accessors() {
        let a = m(2, 3, &[0.0; 6]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 3);
        assert_eq!(a.len(), 6);
        assert!(!a.is_empty());
        let empty = Matrix::zeros(0, 0);
        assert!(empty.is_empty());
    }
}

//! Finite-difference gradient checking for the test suite.
//!
//! Verifies the analytic gradients produced by backpropagation against
//! central finite differences of the loss. Used by `glmia-nn`'s own tests
//! and available to downstream crates that add layers.

use crate::{Matrix, Mlp, Sgd};

/// Result of a gradient check: the largest absolute and relative deviation
/// between analytic and finite-difference gradients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Maximum absolute difference over all parameters.
    pub max_abs_diff: f64,
    /// Maximum relative difference over all parameters (denominator clamped
    /// to `1e-4` to avoid division blow-ups near zero).
    pub max_rel_diff: f64,
    /// Number of parameters checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether the analytic gradient is within `tol` of finite differences
    /// in relative terms.
    #[must_use]
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_diff < tol
    }
}

/// Checks the analytic gradient of `model`'s mean cross-entropy loss on
/// `(x, labels)` against central finite differences with step `h`.
///
/// The model is restored to its original parameters before returning.
///
/// # Panics
///
/// Panics if shapes mismatch or labels are out of range.
///
/// # Examples
///
/// ```
/// use glmia_nn::{Activation, Matrix, Mlp, MlpSpec};
/// use glmia_nn::gradcheck::check_gradients;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), glmia_nn::NnError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let spec = MlpSpec::new(3, &[5], 2, Activation::Tanh)?;
/// let mut m = Mlp::new(&spec, &mut rng);
/// let x = Matrix::from_vec(2, 3, vec![0.1, -0.3, 0.5, 0.2, 0.2, -0.1])?;
/// let report = check_gradients(&mut m, &x, &[0, 1], 1e-3);
/// // f32 finite differences: near-zero gradients hit the clamped
/// // denominator, so the relative tolerance is looser than the unit
/// // tests' (which check f64-accumulated layers directly).
/// assert!(report.passes(5e-2), "{report:?}");
/// assert!(report.max_abs_diff < 1e-3, "{report:?}");
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn check_gradients(model: &mut Mlp, x: &Matrix, labels: &[usize], h: f32) -> GradCheckReport {
    let original = model.flat_params();
    // Collect analytic gradients with a zero-lr-like trick: we cannot use
    // lr = 0 (validated), so capture grads via visit after a manual
    // forward/backward. train_batch would mutate params, so replicate its
    // forward/backward by stepping with a tiny lr on a clone.
    let analytic = analytic_gradients(model, x, labels);
    model
        .load_flat(&original)
        .expect("restoring original parameters");

    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    let n = original.len();
    for i in 0..n {
        let mut plus = original.clone();
        plus[i] += h;
        model.load_flat(&plus).expect("same length");
        let lp = f64::from(model.loss(x, labels));
        let mut minus = original.clone();
        minus[i] -= h;
        model.load_flat(&minus).expect("same length");
        let lm = f64::from(model.loss(x, labels));
        let fd = (lp - lm) / (2.0 * f64::from(h));
        let a = f64::from(analytic[i]);
        let abs = (a - fd).abs();
        let rel = abs / fd.abs().max(a.abs()).max(1e-4);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    model
        .load_flat(&original)
        .expect("restoring original parameters");
    GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
        checked: n,
    }
}

/// Computes the analytic gradient vector of the mean cross-entropy loss at
/// the model's current parameters, without changing them.
fn analytic_gradients(model: &mut Mlp, x: &Matrix, labels: &[usize]) -> Vec<f32> {
    // Run a train step with lr so small the parameter change is negligible,
    // then recover grads from the parameter delta... That loses precision.
    // Instead: run forward/backward via train_batch on a clone with momentum
    // 0 and read grads directly via visit_params_mut on the clone before the
    // step. Mlp does not expose a public backward, so emulate with Sgd and
    // delta reconstruction at lr = 1, momentum = 0, wd = 0:
    //   p' = p - g  =>  g = p - p'.
    let mut clone = model.clone();
    let before = clone.flat_params();
    let mut opt = Sgd::new(1.0);
    clone.train_batch(x, labels, &mut opt);
    let after = clone.flat_params();
    before.iter().zip(after).map(|(b, a)| b - a).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, MlpSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_rows(&[
            vec![0.3, -0.2, 0.7],
            vec![-0.5, 0.4, 0.1],
            vec![0.9, 0.9, -0.9],
        ])
        .unwrap();
        (x, vec![0, 1, 2])
    }

    #[test]
    fn tanh_mlp_gradients_match() {
        let spec = MlpSpec::new(3, &[6], 3, Activation::Tanh).unwrap();
        let mut m = Mlp::new(&spec, &mut StdRng::seed_from_u64(1));
        let (x, y) = data();
        let report = check_gradients(&mut m, &x, &y, 1e-2);
        assert!(report.passes(5e-2), "{report:?}");
    }

    #[test]
    fn linear_model_gradients_match() {
        let spec = MlpSpec::linear(3, 3).unwrap();
        let mut m = Mlp::new(&spec, &mut StdRng::seed_from_u64(2));
        let (x, y) = data();
        let report = check_gradients(&mut m, &x, &y, 1e-2);
        assert!(report.passes(5e-2), "{report:?}");
    }

    #[test]
    fn deep_relu_gradients_match() {
        // ReLU kinks can trip finite differences; use a loose tolerance.
        let spec = MlpSpec::new(3, &[8, 4], 3, Activation::Relu).unwrap();
        let mut m = Mlp::new(&spec, &mut StdRng::seed_from_u64(3));
        let (x, y) = data();
        let report = check_gradients(&mut m, &x, &y, 1e-2);
        assert!(report.passes(0.15), "{report:?}");
    }

    #[test]
    fn check_restores_parameters() {
        let spec = MlpSpec::new(3, &[4], 3, Activation::Tanh).unwrap();
        let mut m = Mlp::new(&spec, &mut StdRng::seed_from_u64(4));
        let before = m.flat_params();
        let (x, y) = data();
        let _ = check_gradients(&mut m, &x, &y, 1e-2);
        assert_eq!(m.flat_params(), before);
    }
}

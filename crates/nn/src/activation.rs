//! Elementwise activation functions.

use serde::{Deserialize, Serialize};

use crate::Matrix;

/// An elementwise activation function placed between linear layers.
///
/// # Examples
///
/// ```
/// use glmia_nn::Activation;
///
/// assert_eq!(Activation::Relu.apply(-3.0), 0.0);
/// assert_eq!(Activation::Relu.apply(3.0), 3.0);
/// assert_eq!(Activation::Identity.apply(-3.0), -3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)` — used by the paper's CNN/MLP
    /// stand-ins.
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No-op (useful for linear models and for testing).
    Identity,
}

impl Activation {
    /// Applies the activation to one scalar.
    #[must_use]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// The derivative expressed in terms of the *pre-activation* input `x`.
    #[must_use]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation to a whole matrix in place.
    pub fn forward_in_place(self, m: &mut Matrix) {
        if self == Activation::Identity {
            return;
        }
        m.map_in_place(|x| self.apply(x));
    }

    /// Multiplies `grad` elementwise by the derivative evaluated at the
    /// cached pre-activation `pre`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn backward_in_place(self, grad: &mut Matrix, pre: &Matrix) {
        if self == Activation::Identity {
            return;
        }
        assert_eq!(
            (grad.rows(), grad.cols()),
            (pre.rows(), pre.cols()),
            "activation backward shape mismatch"
        );
        for (g, &x) in grad.as_mut_slice().iter_mut().zip(pre.as_slice()) {
            *g *= self.derivative(x);
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
            Activation::Identity => "identity",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_values_and_derivative() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(2.0), 1.0);
    }

    #[test]
    fn tanh_derivative_matches_finite_difference() {
        let x = 0.4f32;
        let h = 1e-3f32;
        let fd = (Activation::Tanh.apply(x + h) - Activation::Tanh.apply(x - h)) / (2.0 * h);
        assert!((Activation::Tanh.derivative(x) - fd).abs() < 1e-4);
    }

    #[test]
    fn identity_is_noop() {
        let mut m = Matrix::from_vec(1, 2, vec![-1.0, 1.0]).unwrap();
        Activation::Identity.forward_in_place(&mut m);
        assert_eq!(m.as_slice(), &[-1.0, 1.0]);
    }

    #[test]
    fn forward_backward_in_place() {
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 0.5, 2.0]).unwrap();
        let pre = m.clone();
        Activation::Relu.forward_in_place(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.5, 2.0]);
        let mut grad = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]).unwrap();
        Activation::Relu.backward_in_place(&mut grad, &pre);
        assert_eq!(grad.as_slice(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Activation::Relu.to_string(), "relu");
        assert_eq!(Activation::Tanh.to_string(), "tanh");
        assert_eq!(Activation::Identity.to_string(), "identity");
    }

    #[test]
    fn default_is_relu() {
        assert_eq!(Activation::default(), Activation::Relu);
    }
}

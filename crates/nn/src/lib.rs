//! Minimal dense neural-network substrate for gossip-learning experiments.
//!
//! The paper trains small classifiers (CNNs, a ResNet-8 and MLPs) with SGD at
//! every node of a gossip network; models are repeatedly *averaged* with
//! models received from neighbors. This crate provides exactly the substrate
//! that workload needs:
//!
//! * a small row-major [`Matrix`] type with the handful of BLAS-like kernels
//!   backpropagation needs,
//! * a configurable multi-layer perceptron ([`Mlp`], built from an
//!   [`MlpSpec`]) with stable softmax cross-entropy,
//! * an [`Sgd`] optimizer with momentum and weight decay (the paper's
//!   training configuration, Table 2),
//! * Kaiming-normal initialization (the paper initializes every node's model
//!   with `kaiming_normal`, §3.1),
//! * flat parameter-vector views so gossip protocols can average models with
//!   plain vector arithmetic, mirroring the paper's treat-models-as-vectors
//!   spectral analysis (§4),
//! * a finite-difference [`gradcheck`] harness used by the test suite.
//!
//! # Examples
//!
//! ```
//! use glmia_nn::{Activation, Matrix, Mlp, MlpSpec, Sgd};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), glmia_nn::NnError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let spec = MlpSpec::new(4, &[8], 3, Activation::Relu)?;
//! let mut model = Mlp::new(&spec, &mut rng);
//! let mut opt = Sgd::new(0.1).with_momentum(0.9).with_weight_decay(5e-4);
//!
//! // Two tiny training samples.
//! let x = Matrix::from_rows(&[vec![0.0, 1.0, 0.0, 1.0], vec![1.0, 0.0, 1.0, 0.0]])?;
//! let y = [0usize, 2usize];
//! let loss_before = model.loss(&x, &y);
//! for _ in 0..50 {
//!     model.train_batch(&x, &y, &mut opt);
//! }
//! assert!(model.loss(&x, &y) < loss_before);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod error;
pub mod gradcheck;
mod init;
mod linear;
mod loss;
mod mlp;
mod sgd;
mod tensor;

pub use activation::Activation;
pub use error::NnError;
pub use init::{kaiming_normal, uniform_init};
pub use linear::Linear;
pub use loss::{cross_entropy_loss, softmax_cross_entropy, softmax_in_place, softmax_rows};
pub use mlp::{Mlp, MlpSpec};
pub use sgd::Sgd;
pub use tensor::Matrix;

//! Numerically stable softmax and cross-entropy.

use crate::Matrix;

/// Applies a numerically stable softmax to one logits row in place.
///
/// # Examples
///
/// ```
/// let mut row = [1.0f32, 1.0, 1.0];
/// glmia_nn::softmax_in_place(&mut row);
/// assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// assert!((row[0] - 1.0 / 3.0).abs() < 1e-6);
/// ```
pub fn softmax_in_place(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in row.iter_mut() {
            *x /= sum;
        }
    } else {
        // All logits were -inf (cannot happen with finite weights); fall
        // back to uniform rather than NaN.
        let u = 1.0 / row.len() as f32;
        row.fill(u);
    }
}

/// Returns a matrix whose rows are the softmax of the rows of `logits`.
#[must_use]
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        softmax_in_place(out.row_mut(r));
    }
    out
}

/// Mean cross-entropy of `probs` (already softmaxed, rows sum to 1) against
/// integer `labels`.
///
/// # Panics
///
/// Panics if `labels.len() != probs.rows()` or any label is out of range.
#[must_use]
pub fn cross_entropy_loss(probs: &Matrix, labels: &[usize]) -> f32 {
    assert_eq!(labels.len(), probs.rows(), "label/batch size mismatch");
    let mut total = 0.0f64;
    for (r, &y) in labels.iter().enumerate() {
        assert!(
            y < probs.cols(),
            "label {y} out of range for {} classes",
            probs.cols()
        );
        let p = probs.get(r, y).max(1e-12);
        total -= f64::from(p.ln());
    }
    (total / labels.len() as f64) as f32
}

/// Combined softmax + cross-entropy: returns `(mean loss, grad wrt logits)`.
///
/// The gradient of mean cross-entropy with respect to the logits is the
/// classic `(softmax(z) - onehot(y)) / batch`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
#[must_use]
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(labels.len(), logits.rows(), "label/batch size mismatch");
    let mut grad = softmax_rows(logits);
    let loss = cross_entropy_loss(&grad, labels);
    let batch = labels.len() as f32;
    for (r, &y) in labels.iter().enumerate() {
        let row = grad.row_mut(r);
        row[y] -= 1.0;
        for g in row.iter_mut() {
            *g /= batch;
        }
    }
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let mut a = [1.0f32, 2.0, 3.0];
        let mut b = [101.0f32, 102.0, 103.0];
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        assert!((a.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut a = [1000.0f32, 0.0];
        softmax_in_place(&mut a);
        assert!((a[0] - 1.0).abs() < 1e-6);
        assert!(a[1] >= 0.0);
    }

    #[test]
    fn softmax_empty_row_is_noop() {
        let mut a: [f32; 0] = [];
        softmax_in_place(&mut a);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_zero() {
        let probs = Matrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        assert!(cross_entropy_loss(&probs, &[0]) < 1e-5);
    }

    #[test]
    fn cross_entropy_of_uniform_is_log_k() {
        let probs = Matrix::from_vec(1, 4, vec![0.25; 4]).unwrap();
        let loss = cross_entropy_loss(&probs, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "label/batch size mismatch")]
    fn cross_entropy_batch_mismatch_panics() {
        let probs = Matrix::zeros(2, 2);
        let _ = cross_entropy_loss(&probs, &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_label_out_of_range_panics() {
        let probs = Matrix::from_vec(1, 2, vec![0.5, 0.5]).unwrap();
        let _ = cross_entropy_loss(&probs, &[2]);
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        // Softmax-CE gradient rows sum to zero: sum(softmax) - 1 = 0.
        let logits = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.0, 0.0, 0.0]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn grad_matches_finite_difference() {
        let logits = Matrix::from_vec(1, 3, vec![0.2, -0.4, 0.9]).unwrap();
        let labels = [1usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let h = 1e-3f32;
        for c in 0..3 {
            let mut plus = logits.clone();
            plus.set(0, c, plus.get(0, c) + h);
            let mut minus = logits.clone();
            minus.set(0, c, minus.get(0, c) - h);
            let lp = cross_entropy_loss(&softmax_rows(&plus), &labels);
            let lm = cross_entropy_loss(&softmax_rows(&minus), &labels);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (grad.get(0, c) - fd).abs() < 1e-3,
                "col {c}: analytic {} vs fd {fd}",
                grad.get(0, c)
            );
        }
    }

    #[test]
    fn loss_decreases_toward_correct_class() {
        let good = Matrix::from_vec(1, 3, vec![5.0, 0.0, 0.0]).unwrap();
        let bad = Matrix::from_vec(1, 3, vec![0.0, 5.0, 0.0]).unwrap();
        let (lg, _) = softmax_cross_entropy(&good, &[0]);
        let (lb, _) = softmax_cross_entropy(&bad, &[0]);
        assert!(lg < lb);
    }
}

//! Stochastic gradient descent with momentum and weight decay.

use serde::{Deserialize, Serialize};

use crate::Mlp;

/// SGD optimizer with classical momentum and L2 weight decay, matching the
/// paper's per-dataset training configuration (Table 2).
///
/// The update is the PyTorch convention:
///
/// ```text
/// g ← grad + weight_decay · param
/// v ← momentum · v + g
/// param ← param − lr · v
/// ```
///
/// Velocity buffers are lazily sized to the first model stepped and reused
/// afterwards; momentum therefore persists across gossip merges of the same
/// node's model, as it would in a long-lived training process.
///
/// # Examples
///
/// ```
/// use glmia_nn::Sgd;
///
/// let opt = Sgd::new(0.01).with_momentum(0.9).with_weight_decay(5e-4);
/// assert_eq!(opt.learning_rate(), 0.01);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Creates an optimizer with the given learning rate and no momentum or
    /// weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is non-positive or not finite.
    #[must_use]
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Sets the momentum coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)`.
    #[must_use]
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// Sets the weight-decay (L2) coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay` is negative or not finite.
    #[must_use]
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(
            weight_decay.is_finite() && weight_decay >= 0.0,
            "weight decay must be non-negative"
        );
        self.weight_decay = weight_decay;
        self
    }

    /// The learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// The momentum coefficient.
    #[must_use]
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// The weight-decay coefficient.
    #[must_use]
    pub fn weight_decay(&self) -> f32 {
        self.weight_decay
    }

    /// Clears the momentum buffers.
    pub fn reset_velocity(&mut self) {
        self.velocity.clear();
    }

    /// Replaces the learning rate (used by schedules that decay it over
    /// communication rounds).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is non-positive or not finite.
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update to every parameter of `model` from its accumulated
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if the optimizer was previously used with a model of a
    /// different parameter count.
    pub fn step(&mut self, model: &mut Mlp) {
        let n = model.num_params();
        if self.velocity.is_empty() {
            self.velocity = vec![0.0; n];
        }
        assert_eq!(
            self.velocity.len(),
            n,
            "optimizer bound to a model with {} params, got {n}",
            self.velocity.len()
        );
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let mut idx = 0usize;
        let velocity = &mut self.velocity;
        model.visit_params_mut(|p, g| {
            let g = g + wd * *p;
            let v = momentum * velocity[idx] + g;
            velocity[idx] = v;
            *p -= lr * v;
            idx += 1;
        });
        debug_assert_eq!(idx, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Matrix, MlpSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Mlp {
        let spec = MlpSpec::new(2, &[4], 2, Activation::Relu).unwrap();
        Mlp::new(&spec, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_panics() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0, 1)")]
    fn momentum_one_panics() {
        let _ = Sgd::new(0.1).with_momentum(1.0);
    }

    #[test]
    #[should_panic(expected = "weight decay must be non-negative")]
    fn negative_weight_decay_panics() {
        let _ = Sgd::new(0.1).with_weight_decay(-1.0);
    }

    #[test]
    fn weight_decay_shrinks_parameters_with_zero_grad() {
        let mut m = tiny_model(0);
        let before: f32 = m.flat_params().iter().map(|p| p * p).sum();
        let mut opt = Sgd::new(0.1).with_weight_decay(0.1);
        // No backward pass: gradients are zero, so only decay acts.
        m.zero_grad();
        opt.step(&mut m);
        let after: f32 = m.flat_params().iter().map(|p| p * p).sum();
        assert!(after < before);
    }

    #[test]
    fn momentum_accelerates_under_constant_gradient() {
        // With a constant gradient, the second momentum step moves farther
        // than the first.
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]).unwrap();
        let y = [0usize];
        let mut m = tiny_model(1);
        let mut opt = Sgd::new(0.01).with_momentum(0.9);
        let p0 = m.flat_params();
        m.train_batch(&x, &y, &mut opt);
        let p1 = m.flat_params();
        m.train_batch(&x, &y, &mut opt);
        let p2 = m.flat_params();
        let step1: f32 = p0.iter().zip(&p1).map(|(a, b)| (a - b).abs()).sum();
        let step2: f32 = p1.iter().zip(&p2).map(|(a, b)| (a - b).abs()).sum();
        assert!(step2 > step1, "step1={step1} step2={step2}");
    }

    #[test]
    #[should_panic(expected = "optimizer bound to a model")]
    fn reusing_optimizer_on_different_model_size_panics() {
        let mut a = tiny_model(2);
        let spec = MlpSpec::new(3, &[4], 2, Activation::Relu).unwrap();
        let mut b = Mlp::new(&spec, &mut StdRng::seed_from_u64(3));
        let mut opt = Sgd::new(0.1);
        a.zero_grad();
        opt.step(&mut a);
        b.zero_grad();
        opt.step(&mut b);
    }

    #[test]
    fn reset_velocity_allows_rebinding() {
        let mut a = tiny_model(2);
        let spec = MlpSpec::new(3, &[4], 2, Activation::Relu).unwrap();
        let mut b = Mlp::new(&spec, &mut StdRng::seed_from_u64(3));
        let mut opt = Sgd::new(0.1);
        a.zero_grad();
        opt.step(&mut a);
        opt.reset_velocity();
        b.zero_grad();
        opt.step(&mut b);
    }

    #[test]
    fn accessors_roundtrip() {
        let opt = Sgd::new(0.05).with_momentum(0.8).with_weight_decay(1e-4);
        assert_eq!(opt.learning_rate(), 0.05);
        assert_eq!(opt.momentum(), 0.8);
        assert_eq!(opt.weight_decay(), 1e-4);
    }
}

//! Weight initialization schemes.

use glmia_dist::Normal;
use rand::Rng;

/// Fills `weights` with Kaiming-normal values: `N(0, 2 / fan_in)`.
///
/// The paper initializes every node's model with the Kaiming normal
/// initializer (He et al. 2015), which is the appropriate variance for
/// ReLU networks (§3.1).
///
/// # Panics
///
/// Panics if `fan_in == 0`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut w = vec![0.0f32; 256];
/// glmia_nn::kaiming_normal(&mut w, 64, &mut rng);
/// assert!(w.iter().any(|&x| x != 0.0));
/// ```
pub fn kaiming_normal<R: Rng + ?Sized>(weights: &mut [f32], fan_in: usize, rng: &mut R) {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f64).sqrt();
    let normal = Normal::new(0.0, std).expect("finite std");
    for w in weights {
        *w = normal.sample(rng) as f32;
    }
}

/// Fills `weights` with uniform values in `[-bound, bound]`.
///
/// # Panics
///
/// Panics if `bound` is negative or not finite.
pub fn uniform_init<R: Rng + ?Sized>(weights: &mut [f32], bound: f32, rng: &mut R) {
    assert!(
        bound.is_finite() && bound >= 0.0,
        "bound must be finite and non-negative"
    );
    if bound == 0.0 {
        weights.fill(0.0);
        return;
    }
    for w in weights {
        *w = rng.gen_range(-bound..=bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_variance_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = vec![0.0f32; 50_000];
        kaiming_normal(&mut w, 50, &mut rng);
        let mean = w.iter().map(|&x| x as f64).sum::<f64>() / w.len() as f64;
        let var = w.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / w.len() as f64;
        let expected = 2.0 / 50.0;
        assert!((var - expected).abs() < expected * 0.1, "var was {var}");
    }

    #[test]
    #[should_panic(expected = "fan_in must be positive")]
    fn kaiming_zero_fan_in_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        kaiming_normal(&mut [0.0], 0, &mut rng);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = vec![0.0f32; 1000];
        uniform_init(&mut w, 0.5, &mut rng);
        assert!(w.iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn uniform_zero_bound_zeroes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = vec![1.0f32; 8];
        uniform_init(&mut w, 0.0, &mut rng);
        assert!(w.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = vec![0.0f32; 32];
        let mut b = vec![0.0f32; 32];
        kaiming_normal(&mut a, 8, &mut StdRng::seed_from_u64(9));
        kaiming_normal(&mut b, 8, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}

//! Multi-layer perceptron classifier with flat parameter-vector views.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{softmax_cross_entropy, softmax_rows, Activation, Linear, Matrix, NnError, Sgd};

/// The architecture of an [`Mlp`]: input width, hidden widths, class count
/// and hidden activation.
///
/// Nodes in a gossip network share one spec (the paper's common initial model
/// `θ₀`) and exchange flat parameter vectors; the spec is what turns those
/// vectors back into runnable models.
///
/// # Examples
///
/// ```
/// use glmia_nn::{Activation, MlpSpec};
///
/// let spec = MlpSpec::new(32, &[64, 32], 10, Activation::Relu)?;
/// assert_eq!(spec.num_params(), 32 * 64 + 64 + 64 * 32 + 32 + 32 * 10 + 10);
/// # Ok::<(), glmia_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpSpec {
    input_dim: usize,
    hidden: Vec<usize>,
    num_classes: usize,
    activation: Activation,
    #[serde(default)]
    dropout: f32,
}

impl MlpSpec {
    /// Creates a spec.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `input_dim == 0`, `num_classes < 2`, or any
    /// hidden width is zero.
    pub fn new(
        input_dim: usize,
        hidden: &[usize],
        num_classes: usize,
        activation: Activation,
    ) -> Result<Self, NnError> {
        if input_dim == 0 {
            return Err(NnError::new("input_dim must be positive"));
        }
        if num_classes < 2 {
            return Err(NnError::new("num_classes must be at least 2"));
        }
        if hidden.contains(&0) {
            return Err(NnError::new("hidden widths must be positive"));
        }
        Ok(Self {
            input_dim,
            hidden: hidden.to_vec(),
            num_classes,
            activation,
            dropout: 0.0,
        })
    }

    /// Sets the dropout probability applied to hidden activations during
    /// training (inverted dropout; inference is unaffected). `0` disables
    /// dropout — the default and the paper's setup; the §5 recommendations
    /// suggest regularization like this against early overfitting.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    #[must_use]
    pub fn with_dropout(mut self, p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout must be in [0, 1)");
        self.dropout = p;
        self
    }

    /// The dropout probability.
    #[must_use]
    pub fn dropout(&self) -> f32 {
        self.dropout
    }

    /// A linear (no hidden layer) softmax classifier.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] under the same conditions as [`MlpSpec::new`].
    pub fn linear(input_dim: usize, num_classes: usize) -> Result<Self, NnError> {
        Self::new(input_dim, &[], num_classes, Activation::Identity)
    }

    /// Input dimension.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden layer widths.
    #[must_use]
    pub fn hidden(&self) -> &[usize] {
        &self.hidden
    }

    /// Number of output classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Hidden activation function.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The sequence of `(in, out)` layer shapes.
    #[must_use]
    pub fn layer_shapes(&self) -> Vec<(usize, usize)> {
        let mut dims = Vec::with_capacity(self.hidden.len() + 2);
        dims.push(self.input_dim);
        dims.extend_from_slice(&self.hidden);
        dims.push(self.num_classes);
        dims.windows(2).map(|w| (w[0], w[1])).collect()
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.layer_shapes().iter().map(|&(i, o)| i * o + o).sum()
    }
}

/// A multi-layer perceptron classifier trained with softmax cross-entropy.
///
/// # Examples
///
/// ```
/// use glmia_nn::{Activation, Matrix, Mlp, MlpSpec, Sgd};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), glmia_nn::NnError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let spec = MlpSpec::new(2, &[8], 2, Activation::Relu)?;
/// let mut m = Mlp::new(&spec, &mut rng);
/// let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]])?;
/// let y = [0usize, 1usize];
/// let mut opt = Sgd::new(0.5);
/// for _ in 0..200 {
///     m.train_batch(&x, &y, &mut opt);
/// }
/// assert_eq!(m.predict(&x), vec![0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    spec: MlpSpec,
    layers: Vec<Linear>,
}

impl Mlp {
    /// Creates a model with Kaiming-normal initialization.
    pub fn new<R: Rng + ?Sized>(spec: &MlpSpec, rng: &mut R) -> Self {
        let layers = spec
            .layer_shapes()
            .into_iter()
            .map(|(i, o)| Linear::new(i, o, rng))
            .collect();
        Self {
            spec: spec.clone(),
            layers,
        }
    }

    /// Creates a model with all parameters zero (a placeholder to be
    /// overwritten via [`Mlp::load_flat`]).
    #[must_use]
    pub fn zeros(spec: &MlpSpec) -> Self {
        let layers = spec
            .layer_shapes()
            .into_iter()
            .map(|(i, o)| Linear::zeros(i, o))
            .collect();
        Self {
            spec: spec.clone(),
            layers,
        }
    }

    /// Creates a model with the given flat parameter vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `flat.len() != spec.num_params()`.
    pub fn from_flat(spec: &MlpSpec, flat: &[f32]) -> Result<Self, NnError> {
        let mut model = Self::zeros(spec);
        model.load_flat(flat)?;
        Ok(model)
    }

    /// The model's architecture spec.
    #[must_use]
    pub fn spec(&self) -> &MlpSpec {
        &self.spec
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Linear::num_params).sum()
    }

    /// The layers of the model.
    #[must_use]
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Copies all parameters into one flat vector (layer by layer, weights
    /// before biases). The inverse of [`Mlp::load_flat`].
    #[must_use]
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.flat_params_into(&mut out);
        out
    }

    /// Writes the flattened parameters into `out`, reusing its allocation.
    /// `out` is cleared first; afterwards `out.len() == num_params()`.
    /// Lets hot paths (gossip merges, repeated snapshots) keep one scratch
    /// buffer instead of allocating a parameter vector per call.
    pub fn flat_params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.num_params());
        for layer in &self.layers {
            layer.store_flat(out);
        }
    }

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `flat.len() != num_params()`.
    pub fn load_flat(&mut self, flat: &[f32]) -> Result<(), NnError> {
        if flat.len() != self.num_params() {
            return Err(NnError::new(format!(
                "flat parameter vector has {} values, model needs {}",
                flat.len(),
                self.num_params()
            )));
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.load_flat(&flat[offset..])?;
        }
        Ok(())
    }

    /// Visits `(param, grad)` pairs mutably across all layers, in flat-vector
    /// order.
    pub(crate) fn visit_params_mut(&mut self, mut f: impl FnMut(&mut f32, f32)) {
        for layer in &mut self.layers {
            layer.visit_params_mut(&mut f);
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Raw logits for a batch (inference path, no gradient caching).
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `x.cols() != input_dim`.
    pub fn logits(&self, x: &Matrix) -> Result<Matrix, NnError> {
        let mut h = self.layers[0].forward_inference(x)?;
        for layer in &self.layers[1..] {
            self.spec.activation.forward_in_place(&mut h);
            h = layer.forward_inference(&h)?;
        }
        Ok(h)
    }

    /// Class-probability rows for a batch: `θ[z]` in the paper's notation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `x.cols() != input_dim`.
    pub fn predict_proba(&self, x: &Matrix) -> Result<Matrix, NnError> {
        Ok(softmax_rows(&self.logits(x)?))
    }

    /// Top-1 class predictions for a batch.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim`.
    #[must_use]
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.logits(x)
            .expect("input width must match model input_dim")
            .argmax_rows()
    }

    /// Mean cross-entropy loss on a labelled batch.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch or labels are out of range.
    #[must_use]
    pub fn loss(&self, x: &Matrix, labels: &[usize]) -> f32 {
        let probs = self
            .predict_proba(x)
            .expect("input width must match model input_dim");
        crate::cross_entropy_loss(&probs, labels)
    }

    /// Top-1 accuracy on a labelled batch.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()`.
    #[must_use]
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f32 {
        assert_eq!(labels.len(), x.rows(), "label/batch size mismatch");
        if labels.is_empty() {
            return 0.0;
        }
        let preds = self.predict(x);
        let correct = preds.iter().zip(labels).filter(|(p, y)| p == y).count();
        correct as f32 / labels.len() as f32
    }

    /// Runs one gradient step on a batch and returns the batch loss.
    /// Dropout is *not* applied (there is no randomness source); use
    /// [`Mlp::train_batch_dropout`] or [`Mlp::train_epoch`] for specs with
    /// dropout.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch or labels are out of range.
    pub fn train_batch(&mut self, x: &Matrix, labels: &[usize], opt: &mut Sgd) -> f32 {
        self.train_batch_impl(x, labels, opt, None)
    }

    /// Runs one gradient step with inverted dropout on hidden activations
    /// at the spec's dropout rate.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch or labels are out of range.
    pub fn train_batch_dropout<R: Rng + ?Sized>(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        opt: &mut Sgd,
        rng: &mut R,
    ) -> f32 {
        let p = self.spec.dropout;
        if p == 0.0 {
            return self.train_batch_impl(x, labels, opt, None);
        }
        // Pre-draw dropout masks (one per hidden layer) so the backward
        // pass can reuse them; inverted scaling keeps expectations equal.
        let last = self.layers.len() - 1;
        let keep = 1.0 - p;
        let masks: Vec<Vec<f32>> = (0..last)
            .map(|i| {
                let width = self.layers[i].out_dim() * x.rows();
                (0..width)
                    .map(|_| {
                        if rng.gen::<f32>() < keep {
                            1.0 / keep
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        self.train_batch_impl(x, labels, opt, Some(&masks))
    }

    fn train_batch_impl(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        opt: &mut Sgd,
        dropout_masks: Option<&[Vec<f32>]>,
    ) -> f32 {
        self.zero_grad();
        // Forward with caches.
        let last = self.layers.len() - 1;
        let mut preacts = Vec::with_capacity(last);
        let mut h = self.layers[0]
            .forward(x)
            .expect("input width must match model input_dim");
        for (i, layer) in self.layers[1..].iter_mut().enumerate() {
            preacts.push(h.clone());
            self.spec.activation.forward_in_place(&mut h);
            if let Some(masks) = dropout_masks {
                for (v, &m) in h.as_mut_slice().iter_mut().zip(&masks[i]) {
                    *v *= m;
                }
            }
            h = layer.forward(&h).expect("layer widths are consistent");
        }
        let (loss, dlogits) = softmax_cross_entropy(&h, labels);
        // Backward.
        let mut grad = self.layers[last]
            .backward(&dlogits)
            .expect("forward was just run");
        for i in (0..last).rev() {
            if let Some(masks) = dropout_masks {
                for (g, &m) in grad.as_mut_slice().iter_mut().zip(&masks[i]) {
                    *g *= m;
                }
            }
            self.spec
                .activation
                .backward_in_place(&mut grad, &preacts[i]);
            grad = self.layers[i]
                .backward(&grad)
                .expect("forward was just run");
        }
        opt.step(self);
        loss
    }

    /// Runs one epoch of minibatch SGD over the dataset, shuffling with
    /// `rng`. Returns the mean batch loss.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`, shapes mismatch, or labels are out of
    /// range.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        batch_size: usize,
        opt: &mut Sgd,
        rng: &mut R,
    ) -> f32 {
        assert!(batch_size > 0, "batch_size must be positive");
        assert_eq!(labels.len(), x.rows(), "label/batch size mismatch");
        if labels.is_empty() {
            return 0.0;
        }
        let mut indices: Vec<usize> = (0..x.rows()).collect();
        // Fisher–Yates shuffle.
        for i in (1..indices.len()).rev() {
            let j = rng.gen_range(0..=i);
            indices.swap(i, j);
        }
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in indices.chunks(batch_size) {
            let bx = x.select_rows(chunk);
            let by: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            total += f64::from(self.train_batch_dropout(&bx, &by, opt, rng));
            batches += 1;
        }
        (total / batches as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn xor_data() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ])
        .unwrap();
        (x, vec![0, 1, 1, 0])
    }

    #[test]
    fn spec_validates() {
        assert!(MlpSpec::new(0, &[4], 2, Activation::Relu).is_err());
        assert!(MlpSpec::new(4, &[0], 2, Activation::Relu).is_err());
        assert!(MlpSpec::new(4, &[4], 1, Activation::Relu).is_err());
        assert!(MlpSpec::new(4, &[], 2, Activation::Relu).is_ok());
    }

    #[test]
    fn spec_num_params_matches_model() {
        let spec = MlpSpec::new(5, &[7, 3], 4, Activation::Tanh).unwrap();
        let model = Mlp::new(&spec, &mut rng(0));
        assert_eq!(spec.num_params(), model.num_params());
        assert_eq!(model.flat_params().len(), spec.num_params());
    }

    #[test]
    fn layer_shapes_chain_dimensions() {
        let spec = MlpSpec::new(5, &[7, 3], 4, Activation::Relu).unwrap();
        assert_eq!(spec.layer_shapes(), vec![(5, 7), (7, 3), (3, 4)]);
    }

    #[test]
    fn flat_roundtrip_preserves_predictions() {
        let spec = MlpSpec::new(3, &[6], 3, Activation::Relu).unwrap();
        let a = Mlp::new(&spec, &mut rng(5));
        let flat = a.flat_params();
        let b = Mlp::from_flat(&spec, &flat).unwrap();
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 1.0, 0.0, -1.0]).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn zeros_model_is_all_zero_and_loadable() {
        let spec = MlpSpec::new(3, &[5], 2, Activation::Relu).unwrap();
        let z = Mlp::zeros(&spec);
        assert!(z.flat_params().iter().all(|&p| p == 0.0));
        assert_eq!(z.num_params(), spec.num_params());
        // A zero model predicts uniformly.
        let x = Matrix::from_vec(1, 3, vec![1.0, -1.0, 0.5]).unwrap();
        let p = z.predict_proba(&x).unwrap();
        assert!(p.row(0).iter().all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn load_flat_wrong_size_errors() {
        let spec = MlpSpec::new(2, &[2], 2, Activation::Relu).unwrap();
        let mut m = Mlp::new(&spec, &mut rng(0));
        assert!(m.load_flat(&[0.0; 3]).is_err());
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let spec = MlpSpec::new(4, &[8], 5, Activation::Relu).unwrap();
        let m = Mlp::new(&spec, &mut rng(2));
        let x = Matrix::from_vec(3, 4, vec![0.5; 12]).unwrap();
        let p = m.predict_proba(&x).unwrap();
        for r in 0..p.rows() {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn learns_xor() {
        let spec = MlpSpec::new(2, &[16], 2, Activation::Tanh).unwrap();
        let mut m = Mlp::new(&spec, &mut rng(3));
        let (x, y) = xor_data();
        let mut opt = Sgd::new(0.5).with_momentum(0.9);
        for _ in 0..500 {
            m.train_batch(&x, &y, &mut opt);
        }
        assert_eq!(m.predict(&x), y, "failed to learn XOR");
        assert!(m.accuracy(&x, &y) == 1.0);
    }

    #[test]
    fn linear_spec_trains_separable_data() {
        let spec = MlpSpec::linear(2, 2).unwrap();
        let mut m = Mlp::new(&spec, &mut rng(4));
        let x = Matrix::from_rows(&[vec![-1.0, -1.0], vec![1.0, 1.0]]).unwrap();
        let y = vec![0, 1];
        let mut opt = Sgd::new(0.5);
        for _ in 0..200 {
            m.train_batch(&x, &y, &mut opt);
        }
        assert_eq!(m.predict(&x), y);
    }

    #[test]
    fn train_epoch_reduces_loss() {
        let spec = MlpSpec::new(2, &[16], 2, Activation::Relu).unwrap();
        let mut m = Mlp::new(&spec, &mut rng(6));
        let (x, y) = xor_data();
        let mut opt = Sgd::new(0.3).with_momentum(0.9);
        let before = m.loss(&x, &y);
        let mut r = rng(7);
        for _ in 0..300 {
            m.train_epoch(&x, &y, 2, &mut opt, &mut r);
        }
        assert!(m.loss(&x, &y) < before);
    }

    #[test]
    fn train_epoch_empty_dataset_is_zero_loss() {
        let spec = MlpSpec::new(2, &[], 2, Activation::Identity).unwrap();
        let mut m = Mlp::new(&spec, &mut rng(8));
        let x = Matrix::zeros(0, 2);
        let mut opt = Sgd::new(0.1);
        let loss = m.train_epoch(&x, &[], 4, &mut opt, &mut rng(9));
        assert_eq!(loss, 0.0);
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn train_epoch_zero_batch_panics() {
        let spec = MlpSpec::new(2, &[], 2, Activation::Identity).unwrap();
        let mut m = Mlp::new(&spec, &mut rng(8));
        let (x, y) = xor_data();
        let mut opt = Sgd::new(0.1);
        m.train_epoch(&x, &y, 0, &mut opt, &mut rng(9));
    }

    #[test]
    fn dropout_spec_validates() {
        let spec = MlpSpec::new(4, &[8], 2, Activation::Relu).unwrap();
        assert_eq!(spec.dropout(), 0.0);
        assert_eq!(spec.clone().with_dropout(0.3).dropout(), 0.3);
    }

    #[test]
    #[should_panic(expected = "dropout must be in [0, 1)")]
    fn dropout_of_one_panics() {
        let _ = MlpSpec::new(4, &[8], 2, Activation::Relu)
            .unwrap()
            .with_dropout(1.0);
    }

    #[test]
    fn dropout_training_still_learns() {
        let spec = MlpSpec::new(2, &[32], 2, Activation::Tanh)
            .unwrap()
            .with_dropout(0.2);
        let mut m = Mlp::new(&spec, &mut rng(20));
        let (x, y) = xor_data();
        let mut opt = Sgd::new(0.3).with_momentum(0.9);
        let mut r = rng(21);
        for _ in 0..500 {
            m.train_epoch(&x, &y, 4, &mut opt, &mut r);
        }
        assert!(m.accuracy(&x, &y) >= 0.75, "dropout training diverged");
    }

    #[test]
    fn dropout_changes_the_training_trajectory() {
        let base = MlpSpec::new(3, &[8], 2, Activation::Relu).unwrap();
        let dropped = base.clone().with_dropout(0.5);
        let x = Matrix::from_rows(&[vec![0.1, 0.2, 0.3], vec![-0.1, 0.4, 0.0]]).unwrap();
        let y = [0usize, 1];
        let run = |spec: &MlpSpec| {
            let mut m = Mlp::new(spec, &mut rng(22));
            let mut opt = Sgd::new(0.1);
            let mut r = rng(23);
            for _ in 0..5 {
                m.train_batch_dropout(&x, &y, &mut opt, &mut r);
            }
            m.flat_params()
        };
        assert_ne!(run(&base), run(&dropped));
    }

    #[test]
    fn zero_dropout_batch_paths_agree() {
        let spec = MlpSpec::new(3, &[6], 2, Activation::Relu).unwrap();
        let x = Matrix::from_rows(&[vec![0.5, -0.5, 1.0]]).unwrap();
        let y = [1usize];
        let mut a = Mlp::new(&spec, &mut rng(24));
        let mut b = a.clone();
        let mut opt_a = Sgd::new(0.1);
        let mut opt_b = Sgd::new(0.1);
        a.train_batch(&x, &y, &mut opt_a);
        b.train_batch_dropout(&x, &y, &mut opt_b, &mut rng(25));
        assert_eq!(a.flat_params(), b.flat_params());
    }

    #[test]
    fn averaging_two_models_preserves_param_mean() {
        // Gossip-style averaging on flat vectors: mean of flats equals flat
        // of mean model.
        let spec = MlpSpec::new(3, &[4], 2, Activation::Relu).unwrap();
        let a = Mlp::new(&spec, &mut rng(10));
        let b = Mlp::new(&spec, &mut rng(11));
        let avg: Vec<f32> = a
            .flat_params()
            .iter()
            .zip(b.flat_params())
            .map(|(x, y)| (x + y) / 2.0)
            .collect();
        let m = Mlp::from_flat(&spec, &avg).unwrap();
        assert_eq!(m.flat_params(), avg);
    }
}

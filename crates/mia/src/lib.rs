//! Membership inference attacks against classifiers.
//!
//! A membership inference attack (MIA) predicts whether a sample was part of
//! a model's training set (§2.5). This crate implements the paper's attack —
//! the **Modified Prediction Entropy (MPE)** attack of Song & Mittal (2020)
//! with the oracle (worst-case) threshold — plus three standard baselines
//! used in ablations:
//!
//! * [`AttackKind::Mpe`] — Eq. 3/4 of the paper: a label-aware entropy that
//!   is `0` for a confidently-correct prediction and large for a
//!   confidently-wrong one;
//! * [`AttackKind::Entropy`] — plain prediction entropy (Salem et al. 2019);
//! * [`AttackKind::Confidence`] — negative max-softmax confidence;
//! * [`AttackKind::Loss`] — per-sample cross-entropy loss (Yeom et al. 2018).
//!
//! Every attack maps a sample to a real-valued *score* where **lower means
//! more member-like**; the attack predicts "member" when the score is below
//! a threshold. [`ScorePools::optimal_threshold`] sweeps all thresholds and
//! returns the accuracy-maximizing one — the paper's upper-bound attacker,
//! which makes the resulting accuracy (Eq. 6) a worst-case privacy
//! assessment rather than a deployable attack.
//!
//! # Threat models
//!
//! The paper's adversary is omniscient, but the crate grades the threat
//! surface: an [`AttackerModel`] (omniscient, passive neighbor set, or
//! colluding coalition) determines which nodes' snapshots an
//! [`AttackerView`] exposes, and every attack — the oracle-threshold
//! family ([`MiaEvaluator`]) and the calibrated [`TransferAttack`] —
//! implements the [`Attack`] trait against that view. See the
//! [`attacker`] module docs for the observation
//! semantics.
//!
//! # Examples
//!
//! ```
//! use glmia_mia::{AttackKind, MiaEvaluator};
//! use glmia_data::{DataPreset, Federation, Partition};
//! use glmia_nn::{Mlp, MlpSpec, Activation};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let spec = DataPreset::Cifar10Like.spec().with_num_classes(3).with_input_dim(8);
//! let fed = Federation::build(&spec, 2, 20, 20, Partition::Iid, &mut rng)?;
//! let model = Mlp::new(&MlpSpec::new(8, &[16], 3, Activation::Relu)?, &mut rng);
//!
//! let evaluator = MiaEvaluator::new(AttackKind::Mpe);
//! let node = fed.node(0);
//! let result = evaluator.evaluate(&model, &node.train, &node.test, &mut rng)?;
//! // An untrained model leaks nothing: accuracy near chance.
//! assert!(result.attack_accuracy >= 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
pub mod attacker;
mod error;
mod mpe;
mod threshold;
mod transfer;

pub use attack::{AttackKind, ClassLeakage, MiaEvaluator, MiaResult};
pub use attacker::{Attack, AttackerModel, AttackerView};
pub use error::MiaError;
pub use threshold::{ScorePools, ThresholdReport};
pub use transfer::TransferAttack;

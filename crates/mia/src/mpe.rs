//! Modified prediction entropy (Song & Mittal 2020) and plain prediction
//! entropy.

/// Floor applied inside logarithms to avoid `log(0)`.
const LOG_FLOOR: f64 = 1e-12;

/// The Modified Prediction Entropy measure (Eq. 3 of the paper):
///
/// ```text
/// M(P, y) = −(1 − P(y))·log P(y) − Σ_{y'≠y} P(y')·log(1 − P(y'))
/// ```
///
/// Unlike plain entropy, MPE is label-aware: it is `0` exactly when the
/// model assigns probability 1 to the true label, and grows without bound
/// as the model becomes confidently *wrong* — which is what separates
/// training members (confidently right) from non-members.
///
/// # Panics
///
/// Panics if `probs` is empty or `label >= probs.len()`.
pub(crate) fn mpe_score(probs: &[f32], label: usize) -> f64 {
    assert!(!probs.is_empty(), "probability vector must be non-empty");
    assert!(
        label < probs.len(),
        "label {label} out of range for {} classes",
        probs.len()
    );
    let py = f64::from(probs[label]).clamp(0.0, 1.0);
    let mut m = -(1.0 - py) * py.max(LOG_FLOOR).ln();
    for (i, &p) in probs.iter().enumerate() {
        if i == label {
            continue;
        }
        let p = f64::from(p).clamp(0.0, 1.0);
        m -= p * (1.0 - p).max(LOG_FLOOR).ln();
    }
    m
}

/// Plain prediction entropy `−Σ p·log p`, the label-free baseline measure
/// (Salem et al. 2019).
///
/// # Panics
///
/// Panics if `probs` is empty.
pub(crate) fn entropy_score(probs: &[f32]) -> f64 {
    assert!(!probs.is_empty(), "probability vector must be non-empty");
    probs
        .iter()
        .map(|&p| {
            let p = f64::from(p).clamp(0.0, 1.0);
            if p > 0.0 {
                -p * p.max(LOG_FLOOR).ln()
            } else {
                0.0
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpe_zero_iff_confidently_correct() {
        assert!(mpe_score(&[0.0, 1.0, 0.0], 1) < 1e-9);
        assert!(mpe_score(&[0.5, 0.5], 0) > 0.1);
    }

    #[test]
    fn mpe_confidently_wrong_exceeds_uncertain() {
        let wrong = mpe_score(&[0.99, 0.01], 1);
        let unsure = mpe_score(&[0.5, 0.5], 1);
        assert!(wrong > unsure);
    }

    #[test]
    fn mpe_is_monotone_in_true_label_confidence() {
        let low = mpe_score(&[0.6, 0.4], 0);
        let high = mpe_score(&[0.9, 0.1], 0);
        assert!(high < low);
    }

    #[test]
    fn mpe_is_finite_on_degenerate_inputs() {
        let m = mpe_score(&[0.0, 1.0], 0);
        assert!(m.is_finite());
        let m = mpe_score(&[1.0, 0.0], 1);
        assert!(m.is_finite());
    }

    #[test]
    fn mpe_matches_hand_computation() {
        // P = [0.7, 0.3], y = 0:
        // M = -(1-0.7)ln(0.7) - 0.3·ln(1-0.3)
        let expected = -(0.3f64) * (0.7f64).ln() - 0.3 * (0.7f64).ln();
        let m = mpe_score(&[0.7, 0.3], 0);
        assert!((m - expected).abs() < 1e-6, "{m} vs {expected}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mpe_label_out_of_range_panics() {
        let _ = mpe_score(&[1.0], 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn mpe_empty_panics() {
        let _ = mpe_score(&[], 0);
    }

    #[test]
    fn entropy_is_maximal_at_uniform() {
        let uniform = entropy_score(&[0.25; 4]);
        let skewed = entropy_score(&[0.7, 0.1, 0.1, 0.1]);
        assert!(uniform > skewed);
    }

    #[test]
    fn entropy_nonnegative() {
        for probs in [&[1.0f32, 0.0][..], &[0.3, 0.7], &[0.2, 0.2, 0.6]] {
            assert!(entropy_score(probs) >= 0.0);
        }
    }
}

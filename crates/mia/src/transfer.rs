//! Transferred-threshold attacks: the realistic counterpart of the oracle.
//!
//! The paper's MPE attack picks the threshold `τ̃` with the victim's own
//! member/non-member scores — a worst-case bound, not a deployable attack
//! (§2.5). A realistic attacker instead *calibrates* the threshold on data
//! it controls (an auxiliary population drawn from the same distribution)
//! and transfers it to the victim. Comparing the two quantifies how loose
//! the worst-case bound is.

use glmia_data::Dataset;
use glmia_nn::Mlp;
use rand::Rng;

use crate::{Attack, AttackKind, MiaError, MiaResult, ScorePools, ThresholdReport};

/// A membership attack whose threshold is calibrated on auxiliary data and
/// then applied unchanged to the victim.
///
/// # Examples
///
/// ```
/// use glmia_mia::{AttackKind, TransferAttack};
///
/// // Calibrate on auxiliary scores (members low, non-members high)...
/// let attack = TransferAttack::calibrate(AttackKind::Mpe, &[0.1, 0.2], &[0.8, 0.9])?;
/// // ...then apply the frozen threshold to victim scores: a victim member
/// // above the frozen threshold (0.25 > 0.2) is missed.
/// assert_eq!(attack.accuracy(&[0.15, 0.18], &[0.7, 1.0]), 1.0);
/// assert_eq!(attack.accuracy(&[0.15, 0.25], &[0.7, 1.0]), 0.75);
/// # Ok::<(), glmia_mia::MiaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferAttack {
    kind: AttackKind,
    threshold: f64,
    calibration: ThresholdReport,
}

impl TransferAttack {
    /// Calibrates a threshold on auxiliary member/non-member scores by the
    /// same accuracy-maximizing sweep the oracle uses — but on the
    /// attacker's data, not the victim's.
    ///
    /// # Errors
    ///
    /// Returns [`MiaError`] if either pool is empty or contains NaN.
    pub fn calibrate(
        kind: AttackKind,
        aux_member_scores: &[f64],
        aux_nonmember_scores: &[f64],
    ) -> Result<Self, MiaError> {
        let calibration =
            ScorePools::new(aux_member_scores, aux_nonmember_scores).optimal_threshold()?;
        Ok(Self {
            kind,
            threshold: calibration.threshold,
            calibration,
        })
    }

    /// Calibrates from auxiliary datasets scored under `shadow_model` — the
    /// attacker trains/holds its own model and data, scores them, and keeps
    /// the threshold.
    ///
    /// # Errors
    ///
    /// Returns [`MiaError`] if datasets are empty or mismatch the model.
    pub fn calibrate_on(
        kind: AttackKind,
        shadow_model: &Mlp,
        aux_members: &Dataset,
        aux_nonmembers: &Dataset,
    ) -> Result<Self, MiaError> {
        let m = kind.score_dataset(shadow_model, aux_members)?;
        let n = kind.score_dataset(shadow_model, aux_nonmembers)?;
        Self::calibrate(kind, &m, &n)
    }

    /// The attack kind.
    #[must_use]
    pub fn kind(&self) -> AttackKind {
        self.kind
    }

    /// The frozen threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The calibration report (accuracy on the *auxiliary* population).
    #[must_use]
    pub fn calibration(&self) -> ThresholdReport {
        self.calibration
    }

    /// Attack accuracy on victim scores with the frozen threshold
    /// (`member ⇔ score ≤ τ`).
    ///
    /// # Panics
    ///
    /// Panics if both pools are empty.
    #[must_use]
    pub fn accuracy(&self, member_scores: &[f64], nonmember_scores: &[f64]) -> f64 {
        let total = member_scores.len() + nonmember_scores.len();
        assert!(total > 0, "attack requires at least one score");
        let tp = member_scores
            .iter()
            .filter(|&&s| s <= self.threshold)
            .count();
        let tn = nonmember_scores
            .iter()
            .filter(|&&s| s > self.threshold)
            .count();
        (tp + tn) as f64 / total as f64
    }

    /// End-to-end evaluation against a victim model, balancing pools like
    /// [`crate::MiaEvaluator`].
    ///
    /// # Errors
    ///
    /// Returns [`MiaError`] if pools are empty or mismatch the model.
    pub fn evaluate<R: Rng + ?Sized>(
        &self,
        victim: &Mlp,
        members: &Dataset,
        nonmembers: &Dataset,
        rng: &mut R,
    ) -> Result<MiaResult, MiaError> {
        if members.is_empty() || nonmembers.is_empty() {
            return Err(MiaError::new(
                "member and non-member pools must be non-empty",
            ));
        }
        let n = members.len().min(nonmembers.len());
        let m = subsample(self.kind.score_dataset(victim, members)?, n, rng);
        let nm = subsample(self.kind.score_dataset(victim, nonmembers)?, n, rng);
        Ok(MiaResult {
            attack_accuracy: self.accuracy(&m, &nm),
            auc: ScorePools::new(&m, &nm).auc()?,
            threshold: self.threshold,
            n_members: n,
            n_nonmembers: n,
        })
    }
}

/// The calibrated-threshold attack implements [`Attack`] so it can run
/// against an [`AttackerView`](crate::AttackerView) next to the oracle
/// family in threat-matrix sweeps.
impl Attack for TransferAttack {
    fn name(&self) -> &'static str {
        "transfer"
    }

    fn attack_model(
        &self,
        model: &Mlp,
        members: &Dataset,
        nonmembers: &Dataset,
        rng: &mut dyn rand::RngCore,
    ) -> Result<MiaResult, MiaError> {
        self.evaluate(model, members, nonmembers, rng)
    }
}

/// Uniformly subsamples down to `n` items.
fn subsample<R: Rng + ?Sized>(mut scores: Vec<f64>, n: usize, rng: &mut R) -> Vec<f64> {
    if scores.len() <= n {
        return scores;
    }
    for i in 0..n {
        let j = rng.gen_range(i..scores.len());
        scores.swap(i, j);
    }
    scores.truncate(n);
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrate_rejects_bad_pools() {
        assert!(TransferAttack::calibrate(AttackKind::Mpe, &[], &[1.0]).is_err());
        assert!(TransferAttack::calibrate(AttackKind::Mpe, &[f64::NAN], &[1.0]).is_err());
    }

    #[test]
    fn frozen_threshold_is_applied_verbatim() {
        let attack = TransferAttack::calibrate(AttackKind::Loss, &[1.0, 2.0], &[5.0, 6.0]).unwrap();
        // Calibrated threshold separates at 2.0; victim pools shifted.
        assert_eq!(attack.accuracy(&[1.5], &[3.0]), 1.0);
        // A victim member above the frozen threshold is missed.
        assert_eq!(attack.accuracy(&[2.5], &[3.0]), 0.5);
    }

    #[test]
    fn transferred_is_never_better_than_oracle_on_the_same_pools() {
        // The oracle maximizes accuracy on the victim pools, so any frozen
        // threshold is ≤ the oracle on those pools.
        let aux_m = [0.2, 0.3, 0.5];
        let aux_n = [0.4, 0.8, 0.9];
        let victim_m = [0.1, 0.35, 0.6];
        let victim_n = [0.5, 0.55, 1.0];
        let transfer = TransferAttack::calibrate(AttackKind::Mpe, &aux_m, &aux_n).unwrap();
        let transferred = transfer.accuracy(&victim_m, &victim_n);
        let oracle = ScorePools::new(&victim_m, &victim_n)
            .optimal_threshold()
            .unwrap()
            .accuracy;
        assert!(transferred <= oracle + 1e-12);
    }

    #[test]
    fn calibration_report_reflects_aux_population() {
        let attack =
            TransferAttack::calibrate(AttackKind::Entropy, &[0.0, 0.1], &[1.0, 1.1]).unwrap();
        assert_eq!(attack.calibration().accuracy, 1.0);
        assert_eq!(attack.kind(), AttackKind::Entropy);
        assert!(attack.threshold() >= 0.1 && attack.threshold() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one score")]
    fn accuracy_on_empty_pools_panics() {
        let attack = TransferAttack::calibrate(AttackKind::Mpe, &[0.1], &[0.9]).unwrap();
        let _ = attack.accuracy(&[], &[]);
    }
}

//! Threat models: who observes which model snapshots, and the [`Attack`]
//! trait every attack implements against that view.
//!
//! The paper's §2.6 adversary is *omniscient* — it recovers the current
//! model of every node after every round. The related work grades that
//! assumption: El Mrini et al. attack from individual and colluding curious
//! neighbors, and Koskela & Kulkarni show gossip-averaging privacy shifts
//! with the observer set. [`AttackerModel`] captures the three regimes:
//!
//! * [`AttackerModel::Omniscient`] — every node observed (the paper);
//! * [`AttackerModel::PassiveNeighbors`] — a set of honest-but-curious
//!   observer nodes, each seeing the models its direct neighbors share with
//!   it (so the observed set is the union of the observers' neighborhoods);
//! * [`AttackerModel::Coalition`] — colluding members pooling their
//!   neighborhoods, attacking every *outside* node any member can see (the
//!   members' own models are excluded — they are the attacker's).
//!
//! An [`AttackerView`] is one evaluated round as the adversary sees it:
//! the per-node `Arc<[f32]>` parameter snapshots the simulation already
//! shares zero-copy, restricted to the observed set. Attacks never touch
//! raw snapshots directly; they go through the view, which returns `None`
//! for unobserved nodes.

use std::sync::Arc;

use glmia_data::Dataset;
use glmia_nn::{Mlp, MlpSpec};
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::{MiaError, MiaResult};

/// Which (round, node) model snapshots the adversary observes.
///
/// The node-index lists use the flag grammar `neighbors:3,7` /
/// `coalition:0..8` (comma-separated indices and half-open `a..b` ranges);
/// [`std::fmt::Display`] emits the canonical form and
/// [`std::str::FromStr`] parses it back, so the value round-trips through
/// CLI flags and trace records.
///
/// # Examples
///
/// ```
/// use glmia_mia::AttackerModel;
///
/// let attacker: AttackerModel = "coalition:0..3,5".parse()?;
/// assert_eq!(
///     attacker,
///     AttackerModel::Coalition { members: vec![0, 1, 2, 5] }
/// );
/// assert_eq!(attacker.to_string(), "coalition:0..3,5");
/// assert_eq!("omniscient".parse::<AttackerModel>()?, AttackerModel::Omniscient);
/// # Ok::<(), glmia_mia::MiaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AttackerModel {
    /// The paper's worst case: every node's model is observed every
    /// evaluated round.
    #[default]
    Omniscient,
    /// Honest-but-curious observer nodes; the adversary sees exactly the
    /// models delivered to them, i.e. the union of the observers'
    /// neighborhoods (observers may observe each other, never themselves).
    PassiveNeighbors {
        /// Node indices of the passive observers.
        observers: Vec<usize>,
    },
    /// A colluding coalition pooling its members' neighborhoods and
    /// attacking every observed *non-member* node.
    Coalition {
        /// Node indices of the colluding members.
        members: Vec<usize>,
    },
}

impl AttackerModel {
    /// Whether this is the omniscient (paper) attacker — the identity-inert
    /// default.
    #[must_use]
    pub fn is_omniscient(&self) -> bool {
        matches!(self, AttackerModel::Omniscient)
    }

    /// Canonical form: node lists sorted and deduplicated. [`Display`](std::fmt::Display)
    /// and the config identity both use this form, so
    /// `neighbors:7,3,3` and `neighbors:3,7` describe the same experiment.
    #[must_use]
    pub fn normalized(self) -> Self {
        let canon = |mut v: Vec<usize>| {
            v.sort_unstable();
            v.dedup();
            v
        };
        match self {
            AttackerModel::Omniscient => AttackerModel::Omniscient,
            AttackerModel::PassiveNeighbors { observers } => AttackerModel::PassiveNeighbors {
                observers: canon(observers),
            },
            AttackerModel::Coalition { members } => AttackerModel::Coalition {
                members: canon(members),
            },
        }
    }

    /// Validates the threat model against a node count: lists must be
    /// non-empty, every index in range, and a coalition must leave at least
    /// one non-member to attack.
    ///
    /// # Errors
    ///
    /// Returns [`MiaError`] describing the first violation.
    pub fn validate(&self, nodes: usize) -> Result<(), MiaError> {
        let check = |role: &str, list: &[usize]| -> Result<(), MiaError> {
            if list.is_empty() {
                return Err(MiaError::new(format!(
                    "{role} list must name at least one node"
                )));
            }
            if let Some(&bad) = list.iter().find(|&&i| i >= nodes) {
                return Err(MiaError::new(format!(
                    "{role} index {bad} out of range for {nodes} nodes"
                )));
            }
            Ok(())
        };
        match self {
            AttackerModel::Omniscient => Ok(()),
            AttackerModel::PassiveNeighbors { observers } => check("observer", observers),
            AttackerModel::Coalition { members } => {
                check("coalition member", members)?;
                let mut seen = vec![false; nodes];
                for &m in members {
                    seen[m] = true;
                }
                if seen.iter().all(|&s| s) {
                    return Err(MiaError::new(
                        "coalition covers every node, leaving nothing to attack",
                    ));
                }
                Ok(())
            }
        }
    }

    /// The set of node indices this attacker observes, given each node's
    /// sorted neighbor list (index `i` holds the neighbors of node `i`).
    /// Returned sorted and deduplicated. Out-of-range indices in the
    /// attacker's lists are ignored (they are rejected by
    /// [`validate`](Self::validate) long before this runs).
    ///
    /// The observation set is fixed at the *initial* topology: under
    /// PeerSwap dynamics the engine rewires views over time, but the
    /// attacker's vantage is defined by where it sits when the run starts.
    #[must_use]
    pub fn observed_nodes(&self, neighbors: &[&[usize]]) -> Vec<usize> {
        let n = neighbors.len();
        let mut mask = vec![false; n];
        match self {
            AttackerModel::Omniscient => return (0..n).collect(),
            AttackerModel::PassiveNeighbors { observers } => {
                for &o in observers {
                    if let Some(view) = neighbors.get(o) {
                        for &v in *view {
                            if v < n {
                                mask[v] = true;
                            }
                        }
                    }
                }
            }
            AttackerModel::Coalition { members } => {
                for &m in members {
                    if let Some(view) = neighbors.get(m) {
                        for &v in *view {
                            if v < n {
                                mask[v] = true;
                            }
                        }
                    }
                }
                for &m in members {
                    if m < n {
                        mask[m] = false;
                    }
                }
            }
        }
        mask.iter()
            .enumerate()
            .filter_map(|(i, &observed)| observed.then_some(i))
            .collect()
    }
}

/// Encodes a node-index set as the flag grammar: maximal consecutive runs
/// become half-open `a..b` ranges, everything else single indices.
fn format_indices(indices: &[usize], f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    let mut canon = indices.to_vec();
    canon.sort_unstable();
    canon.dedup();
    let mut i = 0;
    let mut first = true;
    while i < canon.len() {
        let mut j = i;
        while j + 1 < canon.len() && canon[j + 1] == canon[j] + 1 {
            j += 1;
        }
        if !first {
            f.write_str(",")?;
        }
        first = false;
        if j > i {
            write!(f, "{}..{}", canon[i], canon[j] + 1)?;
        } else {
            write!(f, "{}", canon[i])?;
        }
        i = j + 1;
    }
    Ok(())
}

/// Parses the node-index grammar: comma-separated indices and half-open
/// `a..b` ranges. Returns a sorted, deduplicated list.
fn parse_indices(spec: &str) -> Result<Vec<usize>, MiaError> {
    let mut out = Vec::new();
    for token in spec.split(',') {
        let token = token.trim();
        if token.is_empty() {
            return Err(MiaError::new(format!("empty node index in {spec:?}")));
        }
        if let Some((lo, hi)) = token.split_once("..") {
            let lo: usize = lo
                .trim()
                .parse()
                .map_err(|_| MiaError::new(format!("invalid range start in {token:?}")))?;
            let hi: usize = hi
                .trim()
                .parse()
                .map_err(|_| MiaError::new(format!("invalid range end in {token:?}")))?;
            if lo >= hi {
                return Err(MiaError::new(format!(
                    "empty range {token:?} (use a..b with a < b)"
                )));
            }
            out.extend(lo..hi);
        } else {
            out.push(
                token
                    .parse()
                    .map_err(|_| MiaError::new(format!("invalid node index {token:?}")))?,
            );
        }
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

impl std::fmt::Display for AttackerModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackerModel::Omniscient => f.write_str("omniscient"),
            AttackerModel::PassiveNeighbors { observers } => {
                f.write_str("neighbors:")?;
                format_indices(observers, f)
            }
            AttackerModel::Coalition { members } => {
                f.write_str("coalition:")?;
                format_indices(members, f)
            }
        }
    }
}

impl std::str::FromStr for AttackerModel {
    type Err = MiaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s == "omniscient" {
            return Ok(AttackerModel::Omniscient);
        }
        if let Some(spec) = s.strip_prefix("neighbors:") {
            return Ok(AttackerModel::PassiveNeighbors {
                observers: parse_indices(spec)?,
            });
        }
        if let Some(spec) = s.strip_prefix("coalition:") {
            return Ok(AttackerModel::Coalition {
                members: parse_indices(spec)?,
            });
        }
        Err(MiaError::new(format!(
            "invalid attacker {s:?} (expected omniscient, neighbors:<nodes> or coalition:<nodes>)"
        )))
    }
}

/// One evaluated round as the adversary sees it: the per-node parameter
/// snapshots (shared zero-copy with the simulation), restricted to the
/// attacker's observed set. [`model`](Self::model) returns `None` for
/// unobserved nodes, so an [`Attack`] physically cannot score a model the
/// threat model says the adversary never captured.
#[derive(Debug, Clone)]
pub struct AttackerView<'a> {
    round: usize,
    spec: &'a MlpSpec,
    models: &'a [Arc<[f32]>],
    /// `None` means omniscient: every node observed.
    observed: Option<Vec<bool>>,
}

impl<'a> AttackerView<'a> {
    /// An omniscient view: every node's snapshot observed.
    #[must_use]
    pub fn omniscient(round: usize, spec: &'a MlpSpec, models: &'a [Arc<[f32]>]) -> Self {
        Self {
            round,
            spec,
            models,
            observed: None,
        }
    }

    /// A view restricted to `observed_nodes` (indices outside the snapshot
    /// are ignored) — typically the output of
    /// [`AttackerModel::observed_nodes`].
    #[must_use]
    pub fn restricted(
        round: usize,
        spec: &'a MlpSpec,
        models: &'a [Arc<[f32]>],
        observed_nodes: &[usize],
    ) -> Self {
        let mut mask = vec![false; models.len()];
        for &i in observed_nodes {
            if i < mask.len() {
                mask[i] = true;
            }
        }
        Self {
            round,
            spec,
            models,
            observed: Some(mask),
        }
    }

    /// The 1-based communication round this view snapshots.
    #[must_use]
    pub fn round(&self) -> usize {
        self.round
    }

    /// Total nodes in the snapshot (observed or not).
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.models.len()
    }

    /// The architecture every snapshot decodes to.
    #[must_use]
    pub fn model_spec(&self) -> &'a MlpSpec {
        self.spec
    }

    /// Whether the adversary observes `node`'s model this round.
    #[must_use]
    pub fn is_observed(&self, node: usize) -> bool {
        node < self.models.len() && self.observed.as_ref().is_none_or(|mask| mask[node])
    }

    /// The flat parameter snapshot of `node`, or `None` when the node is
    /// outside the observed set (or the snapshot).
    #[must_use]
    pub fn model(&self, node: usize) -> Option<&'a [f32]> {
        self.is_observed(node).then(|| &*self.models[node])
    }

    /// The observed node indices, ascending.
    #[must_use]
    pub fn observed_nodes(&self) -> Vec<usize> {
        (0..self.models.len())
            .filter(|&i| self.is_observed(i))
            .collect()
    }

    /// How many nodes the adversary observes this round.
    #[must_use]
    pub fn observed_count(&self) -> usize {
        match &self.observed {
            None => self.models.len(),
            Some(mask) => mask.iter().filter(|&&b| b).count(),
        }
    }
}

/// A membership inference attack run against an [`AttackerView`].
///
/// This is the crate's canonical entry point:
/// [`MiaEvaluator`](crate::MiaEvaluator) implements it
/// for the oracle-threshold family (MPE, entropy, confidence, loss) and
/// [`TransferAttack`](crate::TransferAttack) for the calibrated-threshold
/// attack. The trait is object-safe — sweeps can hold `Box<dyn Attack>`
/// per matrix cell.
pub trait Attack {
    /// A short stable name for tables and trace records (e.g.
    /// `"mpe-oracle"`, `"transfer"`).
    fn name(&self) -> &'static str;

    /// Attacks an already-reconstructed victim model with member pool
    /// `members` and non-member pool `nonmembers`.
    ///
    /// # Errors
    ///
    /// Returns [`MiaError`] if either pool is empty or mismatches the
    /// model.
    fn attack_model(
        &self,
        model: &Mlp,
        members: &Dataset,
        nonmembers: &Dataset,
        rng: &mut dyn RngCore,
    ) -> Result<MiaResult, MiaError>;

    /// Attacks one node of an attacker view: reconstructs the observed
    /// snapshot and delegates to [`attack_model`](Self::attack_model).
    ///
    /// # Errors
    ///
    /// Returns [`MiaError`] if the node is outside the observed set, the
    /// snapshot does not decode under the view's model spec, or the pools
    /// are invalid.
    fn attack(
        &self,
        view: &AttackerView<'_>,
        node: usize,
        members: &Dataset,
        nonmembers: &Dataset,
        rng: &mut dyn RngCore,
    ) -> Result<MiaResult, MiaError> {
        let flat = view.model(node).ok_or_else(|| {
            MiaError::new(format!(
                "attacker does not observe node {node} in round {}",
                view.round()
            ))
        })?;
        let model = Mlp::from_flat(view.model_spec(), flat)
            .map_err(|e| MiaError::new(format!("snapshot mismatch for node {node}: {e}")))?;
        self.attack_model(&model, members, nonmembers, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackKind, MiaEvaluator, TransferAttack};
    use glmia_data::{FeatureKind, SyntheticSpec};
    use glmia_nn::Activation;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn neighbors(observers: Vec<usize>) -> AttackerModel {
        AttackerModel::PassiveNeighbors { observers }
    }

    fn coalition(members: Vec<usize>) -> AttackerModel {
        AttackerModel::Coalition { members }
    }

    #[test]
    fn display_emits_canonical_grammar() {
        assert_eq!(AttackerModel::Omniscient.to_string(), "omniscient");
        assert_eq!(neighbors(vec![3, 7]).to_string(), "neighbors:3,7");
        assert_eq!(coalition((0..8).collect()).to_string(), "coalition:0..8");
        // Runs and singles mix; unsorted input is canonicalized on render.
        assert_eq!(neighbors(vec![5, 2, 1, 5]).to_string(), "neighbors:1..3,5");
        assert_eq!(coalition(vec![4, 2]).to_string(), "coalition:2,4");
    }

    #[test]
    fn from_str_accepts_ranges_and_lists() {
        assert_eq!(
            "omniscient".parse::<AttackerModel>().unwrap(),
            AttackerModel::Omniscient
        );
        assert_eq!(
            "neighbors:3,7".parse::<AttackerModel>().unwrap(),
            neighbors(vec![3, 7])
        );
        assert_eq!(
            "coalition:0..8".parse::<AttackerModel>().unwrap(),
            coalition((0..8).collect())
        );
        assert_eq!(
            "neighbors: 2 , 0..2 ".parse::<AttackerModel>().unwrap(),
            neighbors(vec![0, 1, 2])
        );
    }

    #[test]
    fn from_str_rejects_malformed_specs() {
        for bad in [
            "",
            "almighty",
            "neighbors:",
            "neighbors:x",
            "neighbors:1,,2",
            "coalition:5..5",
            "coalition:9..3",
            "coalition:1..x",
            "coalition",
        ] {
            assert!(bad.parse::<AttackerModel>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_from_str_round_trips() {
        for spec in [
            "omniscient",
            "neighbors:3,7",
            "neighbors:0..4,9",
            "coalition:0..8",
            "coalition:1,3,5..9",
        ] {
            let parsed: AttackerModel = spec.parse().unwrap();
            assert_eq!(parsed.to_string(), spec, "canonical spec must round-trip");
            let reparsed: AttackerModel = parsed.to_string().parse().unwrap();
            assert_eq!(parsed, reparsed);
        }
    }

    proptest! {
        #[test]
        fn any_index_set_round_trips_through_the_grammar(
            indices in proptest::collection::vec(0usize..64, 1..12),
            as_coalition in 0usize..2,
        ) {
            let model = if as_coalition == 1 {
                coalition(indices.clone())
            } else {
                neighbors(indices.clone())
            };
            let canonical = model.clone().normalized();
            let reparsed: AttackerModel = model.to_string().parse().unwrap();
            prop_assert_eq!(reparsed, canonical);
        }
    }

    #[test]
    fn normalized_sorts_and_dedups() {
        assert_eq!(
            neighbors(vec![7, 3, 3, 1]).normalized(),
            neighbors(vec![1, 3, 7])
        );
        assert_eq!(
            AttackerModel::Omniscient.normalized(),
            AttackerModel::Omniscient
        );
    }

    #[test]
    fn validate_checks_ranges_and_nonempty_lists() {
        assert!(AttackerModel::Omniscient.validate(2).is_ok());
        assert!(neighbors(vec![0, 7]).validate(8).is_ok());
        assert!(neighbors(vec![]).validate(8).is_err());
        assert!(neighbors(vec![8]).validate(8).is_err());
        assert!(coalition(vec![0]).validate(8).is_ok());
        assert!(coalition((0..8).collect()).validate(8).is_err());
        assert!(coalition(vec![9]).validate(8).is_err());
    }

    /// A 6-cycle: node i's neighbors are i±1 mod 6.
    fn ring6() -> Vec<Vec<usize>> {
        (0..6usize)
            .map(|i| {
                let mut v = vec![(i + 5) % 6, (i + 1) % 6];
                v.sort_unstable();
                v
            })
            .collect()
    }

    fn views(owned: &[Vec<usize>]) -> Vec<&[usize]> {
        owned.iter().map(Vec::as_slice).collect()
    }

    #[test]
    fn omniscient_observes_every_node() {
        let ring = ring6();
        assert_eq!(
            AttackerModel::Omniscient.observed_nodes(&views(&ring)),
            vec![0, 1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn passive_neighbors_observe_their_neighborhood_union() {
        let ring = ring6();
        // Node 0 sees 1 and 5; node 3 sees 2 and 4.
        assert_eq!(
            neighbors(vec![0, 3]).observed_nodes(&views(&ring)),
            vec![1, 2, 4, 5]
        );
        // Adjacent observers observe each other, never themselves.
        assert_eq!(
            neighbors(vec![0, 1]).observed_nodes(&views(&ring)),
            vec![0, 1, 2, 5]
        );
    }

    #[test]
    fn coalition_excludes_its_own_members() {
        let ring = ring6();
        // Members 0 and 1 pool {1,5} ∪ {0,2}, then drop themselves.
        assert_eq!(
            coalition(vec![0, 1]).observed_nodes(&views(&ring)),
            vec![2, 5]
        );
    }

    #[test]
    fn restricted_view_hides_unobserved_models() {
        let spec = MlpSpec::new(4, &[4], 3, Activation::Relu).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let models: Vec<Arc<[f32]>> = (0..4)
            .map(|_| Arc::from(Mlp::new(&spec, &mut rng).flat_params().into_boxed_slice()))
            .collect();
        let view = AttackerView::restricted(2, &spec, &models, &[1, 3]);
        assert_eq!(view.round(), 2);
        assert_eq!(view.nodes(), 4);
        assert_eq!(view.observed_count(), 2);
        assert_eq!(view.observed_nodes(), vec![1, 3]);
        assert!(view.model(0).is_none());
        assert!(view.model(1).is_some());
        assert!(view.model(4).is_none(), "out of range is unobserved");
        let omni = AttackerView::omniscient(2, &spec, &models);
        assert_eq!(omni.observed_count(), 4);
        assert!(omni.model(0).is_some());
    }

    #[test]
    fn attack_through_the_view_matches_direct_evaluation() {
        let data_spec = SyntheticSpec::new(3, 6, FeatureKind::Gaussian).unwrap();
        let world = data_spec.sample_world(&mut StdRng::seed_from_u64(2));
        let train = world.sample(16, &mut StdRng::seed_from_u64(3));
        let test = world.sample(16, &mut StdRng::seed_from_u64(4));
        let spec = MlpSpec::new(6, &[8], 3, Activation::Relu).unwrap();
        let model = Mlp::new(&spec, &mut StdRng::seed_from_u64(5));
        let models: Vec<Arc<[f32]>> = vec![Arc::from(model.flat_params().into_boxed_slice())];
        let view = AttackerView::omniscient(1, &spec, &models);
        let evaluator = MiaEvaluator::new(AttackKind::Mpe);
        let via_view = evaluator
            .attack(&view, 0, &train, &test, &mut StdRng::seed_from_u64(6))
            .unwrap();
        let direct = evaluator
            .evaluate(&model, &train, &test, &mut StdRng::seed_from_u64(6))
            .unwrap();
        assert_eq!(via_view, direct, "view routing must not change a result");
    }

    #[test]
    fn attacking_an_unobserved_node_errors() {
        let spec = MlpSpec::new(4, &[4], 3, Activation::Relu).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let models: Vec<Arc<[f32]>> =
            vec![Arc::from(Mlp::new(&spec, &mut rng).flat_params().into_boxed_slice()); 2];
        let view = AttackerView::restricted(1, &spec, &models, &[1]);
        let data_spec = SyntheticSpec::new(3, 4, FeatureKind::Gaussian).unwrap();
        let world = data_spec.sample_world(&mut rng);
        let pool = world.sample(8, &mut rng);
        let err = MiaEvaluator::new(AttackKind::Mpe)
            .attack(&view, 0, &pool, &pool, &mut rng)
            .unwrap_err();
        assert!(err.to_string().contains("does not observe node 0"));
    }

    #[test]
    fn attack_trait_is_object_safe_and_named() {
        let attacks: Vec<Box<dyn Attack>> = vec![
            Box::new(MiaEvaluator::new(AttackKind::Mpe)),
            Box::new(TransferAttack::calibrate(AttackKind::Mpe, &[0.1, 0.2], &[0.8, 0.9]).unwrap()),
        ];
        let names: Vec<&str> = attacks.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["mpe-oracle", "transfer"]);
    }

    #[test]
    fn serde_round_trips_the_threat_model() {
        for model in [
            AttackerModel::Omniscient,
            neighbors(vec![3, 7]),
            coalition(vec![0, 1, 2]),
        ] {
            let json = serde_json::to_string(&model).unwrap();
            let back: AttackerModel = serde_json::from_str(&json).unwrap();
            assert_eq!(back, model);
        }
    }
}

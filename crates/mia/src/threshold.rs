//! Oracle threshold selection, AUC and ROC utilities over score pools.

use crate::MiaError;

/// The outcome of an oracle threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdReport {
    /// The accuracy-maximizing threshold `τ̃` — predict "member" when
    /// `score ≤ τ̃`.
    pub threshold: f64,
    /// The attack accuracy achieved at that threshold (Eq. 6).
    pub accuracy: f64,
    /// True-positive rate (members correctly flagged) at the threshold.
    pub tpr: f64,
    /// False-positive rate (non-members wrongly flagged) at the threshold.
    pub fpr: f64,
}

/// A member/non-member pair of membership-score pools — the canonical entry
/// point for threshold sweeps, AUC and ROC curves.
///
/// Scores follow the crate convention: **lower = more member-like**. The
/// pools borrow their slices, so building one is free; every method
/// validates that both pools are non-empty and NaN-free before computing.
///
/// # Examples
///
/// ```
/// use glmia_mia::ScorePools;
///
/// // Members score low, non-members high: perfectly separable.
/// let pools = ScorePools::new(&[0.1, 0.2], &[0.8, 0.9]);
/// assert_eq!(pools.optimal_threshold()?.accuracy, 1.0);
/// assert_eq!(pools.auc()?, 1.0);
/// # Ok::<(), glmia_mia::MiaError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ScorePools<'a> {
    members: &'a [f64],
    nonmembers: &'a [f64],
}

impl<'a> ScorePools<'a> {
    /// Pairs a member score pool with a non-member score pool.
    #[must_use]
    pub fn new(members: &'a [f64], nonmembers: &'a [f64]) -> Self {
        Self {
            members,
            nonmembers,
        }
    }

    /// The member scores.
    #[must_use]
    pub fn members(&self) -> &'a [f64] {
        self.members
    }

    /// The non-member scores.
    #[must_use]
    pub fn nonmembers(&self) -> &'a [f64] {
        self.nonmembers
    }

    /// Sweeps every candidate threshold over the pooled scores and returns
    /// the accuracy-maximizing one — the paper's worst-case attacker, which
    /// uses the victim's own member/non-member scores to pick `τ̃` (§2.5).
    ///
    /// With equal pool sizes the returned accuracy is always ≥ 0.5 because
    /// the sweep includes the degenerate all-member and all-non-member
    /// thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`MiaError`] if either pool is empty or any score is NaN.
    pub fn optimal_threshold(&self) -> Result<ThresholdReport, MiaError> {
        self.validate()?;
        // Pool (score, is_member), sorted ascending by score.
        let mut pooled = self.pooled();
        pooled.sort_by(|a, b| a.0.total_cmp(&b.0));

        let n_mem = self.members.len() as f64;
        let n_non = self.nonmembers.len() as f64;
        let total = n_mem + n_non;

        // Threshold below every score: nothing flagged as member.
        let mut best = ThresholdReport {
            threshold: f64::NEG_INFINITY,
            accuracy: n_non / total,
            tpr: 0.0,
            fpr: 0.0,
        };
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut i = 0;
        while i < pooled.len() {
            // Advance over ties so a threshold always includes every equal
            // score.
            let score = pooled[i].0;
            while i < pooled.len() && pooled[i].0 == score {
                if pooled[i].1 {
                    tp += 1.0;
                } else {
                    fp += 1.0;
                }
                i += 1;
            }
            let tn = n_non - fp;
            let accuracy = (tp + tn) / total;
            if accuracy > best.accuracy {
                best = ThresholdReport {
                    threshold: score,
                    accuracy,
                    tpr: tp / n_mem,
                    fpr: fp / n_non,
                };
            }
        }
        Ok(best)
    }

    /// Area under the ROC curve: the probability that a random member
    /// scores *lower* than a random non-member (ties count half) — the
    /// threshold-independent leakage measure.
    ///
    /// # Errors
    ///
    /// Returns [`MiaError`] if either pool is empty or any score is NaN.
    ///
    /// # Examples
    ///
    /// ```
    /// use glmia_mia::ScorePools;
    ///
    /// // Perfect separation → AUC 1; identical scores → AUC 0.5.
    /// assert_eq!(ScorePools::new(&[0.0], &[1.0]).auc()?, 1.0);
    /// assert_eq!(ScorePools::new(&[0.5], &[0.5]).auc()?, 0.5);
    /// # Ok::<(), glmia_mia::MiaError>(())
    /// ```
    pub fn auc(&self) -> Result<f64, MiaError> {
        self.validate()?;
        // Rank-based (Mann–Whitney U) computation with tie correction.
        let mut pooled = self.pooled();
        pooled.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut rank_sum_members = 0.0f64;
        let mut i = 0;
        while i < pooled.len() {
            let mut j = i;
            while j < pooled.len() && pooled[j].0 == pooled[i].0 {
                j += 1;
            }
            // Average rank for the tie group (1-based ranks).
            let avg_rank = (i + 1 + j) as f64 / 2.0;
            for item in &pooled[i..j] {
                if item.1 {
                    rank_sum_members += avg_rank;
                }
            }
            i = j;
        }
        let n_mem = self.members.len() as f64;
        let n_non = self.nonmembers.len() as f64;
        // U = rank_sum − n(n+1)/2 counts (nonmember > member) pairs.
        let u = rank_sum_members - n_mem * (n_mem + 1.0) / 2.0;
        Ok(1.0 - u / (n_mem * n_non))
    }

    /// The ROC curve as `(fpr, tpr)` points, one per distinct threshold,
    /// starting at `(0, 0)` and ending at `(1, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`MiaError`] if either pool is empty or any score is NaN.
    pub fn roc_curve(&self) -> Result<Vec<(f64, f64)>, MiaError> {
        self.validate()?;
        let mut pooled = self.pooled();
        pooled.sort_by(|a, b| a.0.total_cmp(&b.0));
        let n_mem = self.members.len() as f64;
        let n_non = self.nonmembers.len() as f64;
        let mut curve = vec![(0.0, 0.0)];
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut i = 0;
        while i < pooled.len() {
            let score = pooled[i].0;
            while i < pooled.len() && pooled[i].0 == score {
                if pooled[i].1 {
                    tp += 1.0;
                } else {
                    fp += 1.0;
                }
                i += 1;
            }
            curve.push((fp / n_non, tp / n_mem));
        }
        Ok(curve)
    }

    fn pooled(&self) -> Vec<(f64, bool)> {
        self.members
            .iter()
            .map(|&s| (s, true))
            .chain(self.nonmembers.iter().map(|&s| (s, false)))
            .collect()
    }

    fn validate(&self) -> Result<(), MiaError> {
        if self.members.is_empty() || self.nonmembers.is_empty() {
            return Err(MiaError::new(
                "score pools must be non-empty (member and non-member)",
            ));
        }
        if self
            .members
            .iter()
            .chain(self.nonmembers)
            .any(|s| s.is_nan())
        {
            return Err(MiaError::new("scores must not contain NaN"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(members: &[f64], nonmembers: &[f64]) -> Result<ThresholdReport, MiaError> {
        ScorePools::new(members, nonmembers).optimal_threshold()
    }

    fn auc_of(members: &[f64], nonmembers: &[f64]) -> Result<f64, MiaError> {
        ScorePools::new(members, nonmembers).auc()
    }

    #[test]
    fn rejects_empty_or_nan() {
        assert!(optimal(&[], &[1.0]).is_err());
        assert!(optimal(&[1.0], &[]).is_err());
        assert!(optimal(&[f64::NAN], &[1.0]).is_err());
        assert!(auc_of(&[], &[1.0]).is_err());
        assert!(ScorePools::new(&[1.0], &[f64::NAN]).roc_curve().is_err());
    }

    #[test]
    fn perfect_separation_gives_accuracy_one() {
        let r = optimal(&[0.0, 0.1, 0.2], &[1.0, 1.1, 1.2]).unwrap();
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.tpr, 1.0);
        assert_eq!(r.fpr, 0.0);
        assert!(r.threshold >= 0.2 && r.threshold < 1.0);
    }

    #[test]
    fn identical_pools_give_chance_accuracy() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let r = optimal(&scores, &scores).unwrap();
        assert!((r.accuracy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn balanced_accuracy_is_at_least_half() {
        // Even with inverted scores (members high), the degenerate
        // thresholds guarantee ≥ 0.5 on balanced pools.
        let r = optimal(&[1.0, 2.0], &[0.0, 0.1]).unwrap();
        assert!(r.accuracy >= 0.5);
    }

    #[test]
    fn unbalanced_pools_respect_base_rate() {
        // 1 member vs 3 non-members, inseparable: best is all-non-member.
        let r = optimal(&[0.5], &[0.5, 0.5, 0.5]).unwrap();
        assert!((r.accuracy - 0.75).abs() < 1e-12);
    }

    #[test]
    fn threshold_includes_tied_scores() {
        // Members at 0.3 and one non-member also at 0.3.
        let r = optimal(&[0.3, 0.3, 0.3], &[0.3, 0.9, 1.0]).unwrap();
        // τ = 0.3: tp = 3, fp = 1 → acc = 5/6.
        assert!((r.accuracy - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn auc_extremes_and_symmetry() {
        assert_eq!(auc_of(&[0.0, 0.1], &[1.0, 2.0]).unwrap(), 1.0);
        assert_eq!(auc_of(&[1.0, 2.0], &[0.0, 0.1]).unwrap(), 0.0);
        let a = auc_of(&[0.1, 0.5], &[0.3, 0.7]).unwrap();
        let b = auc_of(&[0.3, 0.7], &[0.1, 0.5]).unwrap();
        assert!((a + b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_handles_ties() {
        assert_eq!(auc_of(&[0.5, 0.5], &[0.5, 0.5]).unwrap(), 0.5);
    }

    #[test]
    fn roc_starts_at_origin_ends_at_one_one() {
        let curve = ScorePools::new(&[0.1, 0.4], &[0.3, 0.9])
            .roc_curve()
            .unwrap();
        assert_eq!(*curve.first().unwrap(), (0.0, 0.0));
        assert_eq!(*curve.last().unwrap(), (1.0, 1.0));
        // Monotone non-decreasing in both coordinates.
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn auc_matches_trapezoid_of_roc() {
        let members = [0.1, 0.2, 0.35, 0.6];
        let nonmembers = [0.3, 0.5, 0.7, 0.9];
        let pools = ScorePools::new(&members, &nonmembers);
        let curve = pools.roc_curve().unwrap();
        let mut area = 0.0;
        for w in curve.windows(2) {
            area += (w[1].0 - w[0].0) * (w[1].1 + w[0].1) / 2.0;
        }
        let a = pools.auc().unwrap();
        assert!((a - area).abs() < 1e-12, "auc {a} vs trapezoid {area}");
    }
}

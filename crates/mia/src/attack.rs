//! Attack kinds and the end-to-end evaluator.

use glmia_data::Dataset;
use glmia_nn::Mlp;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::mpe::{entropy_score, mpe_score};
use crate::{Attack, MiaError, ScorePools};

/// The membership score a model+sample pair is reduced to. Lower score =
/// more member-like for every kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AttackKind {
    /// Modified prediction entropy (the paper's attack, Eq. 3–4).
    #[default]
    Mpe,
    /// Plain prediction entropy (label-free baseline).
    Entropy,
    /// Negative max-softmax confidence.
    Confidence,
    /// Per-sample cross-entropy loss (Yeom et al.).
    Loss,
}

impl AttackKind {
    /// All kinds, for ablation sweeps.
    pub const ALL: [AttackKind; 4] = [
        AttackKind::Mpe,
        AttackKind::Entropy,
        AttackKind::Confidence,
        AttackKind::Loss,
    ];

    /// Scores one sample from its softmax output and true label.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty or (for label-aware kinds) `label` is out
    /// of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use glmia_mia::AttackKind;
    ///
    /// // MPE (Eq. 3): confidently correct → 0, confidently wrong → large.
    /// assert!(AttackKind::Mpe.score(&[1.0, 0.0], 0) < 1e-9);
    /// assert!(AttackKind::Mpe.score(&[1.0, 0.0], 1) > 10.0);
    /// // Plain entropy is label-free: uniform output maximizes it.
    /// let uniform = AttackKind::Entropy.score(&[0.25; 4], 0);
    /// assert!((uniform - (4.0f64).ln()).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn score(self, probs: &[f32], label: usize) -> f64 {
        match self {
            AttackKind::Mpe => mpe_score(probs, label),
            AttackKind::Entropy => entropy_score(probs),
            AttackKind::Confidence => {
                let max = probs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                -f64::from(max)
            }
            AttackKind::Loss => {
                assert!(label < probs.len(), "label out of range");
                -f64::from(probs[label]).max(1e-12).ln()
            }
        }
    }

    /// Scores every sample of a dataset under `model`.
    ///
    /// # Errors
    ///
    /// Returns [`MiaError`] if the dataset's feature width does not match
    /// the model.
    pub fn score_dataset(self, model: &Mlp, data: &Dataset) -> Result<Vec<f64>, MiaError> {
        let probs = model
            .predict_proba(data.features())
            .map_err(|e| MiaError::new(format!("model/dataset mismatch: {e}")))?;
        glmia_telemetry::count(glmia_telemetry::Instrument::MiaScores, data.len() as u64);
        Ok(data
            .labels()
            .iter()
            .enumerate()
            .map(|(i, &y)| self.score(probs.row(i), y))
            .collect())
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            AttackKind::Mpe => "mpe",
            AttackKind::Entropy => "entropy",
            AttackKind::Confidence => "confidence",
            AttackKind::Loss => "loss",
        };
        f.write_str(name)
    }
}

/// The outcome of attacking one victim model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MiaResult {
    /// Oracle-threshold attack accuracy (Eq. 6) on the balanced attack set.
    pub attack_accuracy: f64,
    /// Threshold-free AUC of the membership score.
    pub auc: f64,
    /// The oracle threshold `τ̃` used.
    pub threshold: f64,
    /// Members evaluated (after balancing).
    pub n_members: usize,
    /// Non-members evaluated (after balancing).
    pub n_nonmembers: usize,
}

/// Evaluates a membership attack against victim models.
///
/// Mirrors the paper's measurement (Eq. 6): the attack set `D_att` is
/// *balanced* — equally many members (sampled from the victim's train split)
/// and non-members (from its local test split) — so 0.5 is chance and the
/// oracle threshold makes the result a worst-case bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MiaEvaluator {
    kind: AttackKind,
}

impl MiaEvaluator {
    /// Creates an evaluator for the given attack kind.
    #[must_use]
    pub fn new(kind: AttackKind) -> Self {
        Self { kind }
    }

    /// The attack kind.
    #[must_use]
    pub fn kind(&self) -> AttackKind {
        self.kind
    }

    /// Attacks `model` with member pool `members` (training data) and
    /// non-member pool `nonmembers` (held-out data). Pools are balanced by
    /// downsampling the larger one with `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`MiaError`] if either pool is empty or does not match the
    /// model's input width.
    pub fn evaluate<R: Rng + ?Sized>(
        &self,
        model: &Mlp,
        members: &Dataset,
        nonmembers: &Dataset,
        rng: &mut R,
    ) -> Result<MiaResult, MiaError> {
        if members.is_empty() || nonmembers.is_empty() {
            return Err(MiaError::new(
                "member and non-member pools must be non-empty",
            ));
        }
        let n = members.len().min(nonmembers.len());
        let member_scores = subsample(self.kind.score_dataset(model, members)?, n, rng);
        let nonmember_scores = subsample(self.kind.score_dataset(model, nonmembers)?, n, rng);
        let pools = ScorePools::new(&member_scores, &nonmember_scores);
        let report = pools.optimal_threshold()?;
        let auc = pools.auc()?;
        Ok(MiaResult {
            attack_accuracy: report.accuracy,
            auc,
            threshold: report.threshold,
            n_members: n,
            n_nonmembers: n,
        })
    }
}

/// Per-class leakage breakdown: AUC of the membership score restricted to
/// one class's samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassLeakage {
    /// The class label.
    pub class: usize,
    /// Members of this class in the pool.
    pub n_members: usize,
    /// Non-members of this class in the pool.
    pub n_nonmembers: usize,
    /// AUC restricted to this class; `None` when either side is empty.
    pub auc: Option<f64>,
}

impl MiaEvaluator {
    /// Breaks leakage down by class: for each label, the AUC of the
    /// membership score over that label's members vs non-members. Classes
    /// with no members or no non-members report `auc: None`.
    ///
    /// Under label-skewed partitions this shows *where* a node leaks — its
    /// dominant classes carry most of the signal.
    ///
    /// # Errors
    ///
    /// Returns [`MiaError`] if either pool is empty or mismatches the
    /// model.
    pub fn per_class(
        &self,
        model: &Mlp,
        members: &Dataset,
        nonmembers: &Dataset,
    ) -> Result<Vec<ClassLeakage>, MiaError> {
        if members.is_empty() || nonmembers.is_empty() {
            return Err(MiaError::new(
                "member and non-member pools must be non-empty",
            ));
        }
        if members.num_classes() != nonmembers.num_classes() {
            return Err(MiaError::new("pools must share a class count"));
        }
        let member_scores = self.kind.score_dataset(model, members)?;
        let nonmember_scores = self.kind.score_dataset(model, nonmembers)?;
        let mut out = Vec::with_capacity(members.num_classes());
        for class in 0..members.num_classes() {
            let m: Vec<f64> = members
                .labels()
                .iter()
                .zip(&member_scores)
                .filter(|(&y, _)| y == class)
                .map(|(_, &s)| s)
                .collect();
            let nm: Vec<f64> = nonmembers
                .labels()
                .iter()
                .zip(&nonmember_scores)
                .filter(|(&y, _)| y == class)
                .map(|(_, &s)| s)
                .collect();
            let auc = if m.is_empty() || nm.is_empty() {
                None
            } else {
                Some(ScorePools::new(&m, &nm).auc()?)
            };
            out.push(ClassLeakage {
                class,
                n_members: m.len(),
                n_nonmembers: nm.len(),
                auc,
            });
        }
        Ok(out)
    }
}

/// The oracle-threshold family implements [`Attack`] so it can run against
/// an [`AttackerView`](crate::AttackerView) next to the transfer attack in
/// threat-matrix sweeps.
impl Attack for MiaEvaluator {
    fn name(&self) -> &'static str {
        match self.kind {
            AttackKind::Mpe => "mpe-oracle",
            AttackKind::Entropy => "entropy-oracle",
            AttackKind::Confidence => "confidence-oracle",
            AttackKind::Loss => "loss-oracle",
        }
    }

    fn attack_model(
        &self,
        model: &Mlp,
        members: &Dataset,
        nonmembers: &Dataset,
        rng: &mut dyn rand::RngCore,
    ) -> Result<MiaResult, MiaError> {
        self.evaluate(model, members, nonmembers, rng)
    }
}

/// Uniformly subsamples `scores` down to `n` items (no-op when already
/// small enough).
fn subsample<R: Rng + ?Sized>(mut scores: Vec<f64>, n: usize, rng: &mut R) -> Vec<f64> {
    if scores.len() <= n {
        return scores;
    }
    // Partial Fisher–Yates: the first n positions become a uniform sample.
    for i in 0..n {
        let j = rng.gen_range(i..scores.len());
        scores.swap(i, j);
    }
    scores.truncate(n);
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use glmia_data::{FeatureKind, SyntheticSpec};
    use glmia_nn::{Activation, MlpSpec, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// A model memorizing a tiny training set leaks membership; an
    /// untrained model does not.
    fn overfit_setup() -> (Mlp, Dataset, Dataset) {
        let spec = SyntheticSpec::new(4, 8, FeatureKind::Gaussian)
            .unwrap()
            .with_class_separation(0.3)
            .with_noise_std(1.0);
        let world = spec.sample_world(&mut rng(0));
        let train = world.sample(24, &mut rng(1));
        let test = world.sample(24, &mut rng(2));
        let mspec = MlpSpec::new(8, &[32], 4, Activation::Relu).unwrap();
        let mut model = Mlp::new(&mspec, &mut rng(3));
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        let mut r = rng(4);
        for _ in 0..150 {
            model.train_epoch(train.features(), train.labels(), 8, &mut opt, &mut r);
        }
        (model, train, test)
    }

    #[test]
    fn overfit_model_leaks_membership() {
        let (model, train, test) = overfit_setup();
        // Sanity: the model memorized its training data.
        assert!(model.accuracy(train.features(), train.labels()) > 0.9);
        let result = MiaEvaluator::new(AttackKind::Mpe)
            .evaluate(&model, &train, &test, &mut rng(5))
            .unwrap();
        assert!(
            result.attack_accuracy > 0.7,
            "expected strong leakage, got {}",
            result.attack_accuracy
        );
        assert!(result.auc > 0.7);
    }

    #[test]
    fn untrained_model_is_near_chance() {
        let spec = SyntheticSpec::new(4, 8, FeatureKind::Gaussian).unwrap();
        let world = spec.sample_world(&mut rng(6));
        let train = world.sample(100, &mut rng(7));
        let test = world.sample(100, &mut rng(8));
        let mspec = MlpSpec::new(8, &[16], 4, Activation::Relu).unwrap();
        let model = Mlp::new(&mspec, &mut rng(9));
        let result = MiaEvaluator::new(AttackKind::Mpe)
            .evaluate(&model, &train, &test, &mut rng(10))
            .unwrap();
        assert!(
            result.attack_accuracy < 0.65,
            "untrained model should not leak, got {}",
            result.attack_accuracy
        );
    }

    #[test]
    fn all_attack_kinds_detect_overfitting() {
        let (model, train, test) = overfit_setup();
        for kind in AttackKind::ALL {
            let result = MiaEvaluator::new(kind)
                .evaluate(&model, &train, &test, &mut rng(11))
                .unwrap();
            assert!(
                result.attack_accuracy > 0.6,
                "{kind} accuracy was {}",
                result.attack_accuracy
            );
        }
    }

    #[test]
    fn balancing_downsamples_the_larger_pool() {
        let (model, train, test) = overfit_setup();
        let small_test = test.select(&[0, 1, 2, 3]);
        let result = MiaEvaluator::new(AttackKind::Mpe)
            .evaluate(&model, &train, &small_test, &mut rng(12))
            .unwrap();
        assert_eq!(result.n_members, 4);
        assert_eq!(result.n_nonmembers, 4);
    }

    #[test]
    fn empty_pool_errors() {
        let (model, train, _) = overfit_setup();
        let empty = Dataset::empty(8, 4).unwrap();
        assert!(MiaEvaluator::new(AttackKind::Mpe)
            .evaluate(&model, &train, &empty, &mut rng(13))
            .is_err());
        assert!(MiaEvaluator::new(AttackKind::Mpe)
            .evaluate(&model, &empty, &train, &mut rng(13))
            .is_err());
    }

    #[test]
    fn mismatched_input_width_errors() {
        let (model, ..) = overfit_setup();
        let wrong = SyntheticSpec::new(4, 5, FeatureKind::Gaussian)
            .unwrap()
            .sample_world(&mut rng(14))
            .sample(10, &mut rng(15));
        assert!(AttackKind::Mpe.score_dataset(&model, &wrong).is_err());
    }

    #[test]
    fn score_conventions_lower_is_member_like() {
        // Confident correct prediction must score lower than an uncertain
        // one for every kind.
        let confident = [0.97f32, 0.01, 0.01, 0.01];
        let uncertain = [0.25f32; 4];
        for kind in AttackKind::ALL {
            assert!(
                kind.score(&confident, 0) < kind.score(&uncertain, 0),
                "{kind} violates the lower-is-member convention"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(AttackKind::Mpe.to_string(), "mpe");
        assert_eq!(AttackKind::Loss.to_string(), "loss");
    }

    #[test]
    fn per_class_breakdown_covers_all_classes() {
        let (model, train, test) = overfit_setup();
        let breakdown = MiaEvaluator::new(AttackKind::Mpe)
            .per_class(&model, &train, &test)
            .unwrap();
        assert_eq!(breakdown.len(), train.num_classes());
        let total_members: usize = breakdown.iter().map(|c| c.n_members).sum();
        assert_eq!(total_members, train.len());
        // At least one class shows real leakage on an overfit model.
        assert!(breakdown.iter().filter_map(|c| c.auc).any(|a| a > 0.6));
    }

    #[test]
    fn per_class_handles_missing_classes() {
        let (model, train, test) = overfit_setup();
        // Restrict non-members to samples of class 0 only.
        let class0: Vec<usize> = test
            .labels()
            .iter()
            .enumerate()
            .filter(|(_, &y)| y == 0)
            .map(|(i, _)| i)
            .collect();
        let test0 = test.select(&class0);
        let breakdown = MiaEvaluator::new(AttackKind::Mpe)
            .per_class(&model, &train, &test0)
            .unwrap();
        for c in &breakdown {
            if c.class != 0 {
                assert!(c.auc.is_none(), "class {} had no non-members", c.class);
            }
        }
    }

    #[test]
    fn per_class_rejects_mismatched_pools() {
        let (model, train, _) = overfit_setup();
        let other = Dataset::empty(8, 7).unwrap();
        assert!(MiaEvaluator::new(AttackKind::Mpe)
            .per_class(&model, &train, &other)
            .is_err());
    }
}

//! Error type for attack evaluation.

use std::error::Error;
use std::fmt;

/// Error returned on invalid attack inputs (empty pools, shape mismatches).
///
/// # Examples
///
/// ```
/// use glmia_mia::ScorePools;
///
/// let err = ScorePools::new(&[], &[0.5]).optimal_threshold().unwrap_err();
/// assert!(err.to_string().contains("empty"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiaError {
    message: String,
}

impl MiaError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for MiaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for MiaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<MiaError>();
    }
}

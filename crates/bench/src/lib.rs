//! Shared plumbing for the benchmark harness.
//!
//! Each `benches/*.rs` target regenerates one table or figure of the paper:
//! it runs the corresponding experiment (at a reduced scale by default, or
//! at the paper's full scale with `GLMIA_PAPER_SCALE=1`), prints the same
//! rows/series the paper reports, and writes a CSV under
//! `target/bench-results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod output;
pub mod scale;

//! Bench-scale vs paper-scale experiment selection.

use glmia_core::{ExperimentConfig, Lambda2Config};
use glmia_data::DataPreset;
use glmia_gossip::TopologyMode;

/// Whether the harness should run at the paper's full scale
/// (`GLMIA_PAPER_SCALE=1`). Default: reduced bench scale, sized for one CPU
/// core.
#[must_use]
pub fn is_paper_scale() -> bool {
    std::env::var("GLMIA_PAPER_SCALE").is_ok_and(|v| v == "1" || v == "true")
}

/// The experiment configuration for a dataset at the selected scale.
#[must_use]
pub fn experiment(dataset: DataPreset) -> ExperimentConfig {
    if is_paper_scale() {
        ExperimentConfig::paper_scale(dataset)
    } else {
        ExperimentConfig::bench_scale(dataset)
    }
}

/// The λ₂ experiment configuration at the selected scale. Figure 8 is pure
/// linear algebra, so even "bench" scale keeps the paper's 150 nodes and
/// only trims iterations and runs.
#[must_use]
pub fn lambda2(view_size: usize, mode: TopologyMode, seed: u64) -> Lambda2Config {
    if is_paper_scale() {
        Lambda2Config {
            nodes: 150,
            view_size,
            iterations: 30,
            runs: 50,
            mode,
            seed,
        }
    } else {
        Lambda2Config {
            nodes: 150,
            view_size,
            iterations: 15,
            runs: 10,
            mode,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scale_is_default() {
        // The test environment does not set GLMIA_PAPER_SCALE.
        if !is_paper_scale() {
            let c = experiment(DataPreset::Cifar10Like);
            assert!(c.nodes() <= 32);
        }
    }

    #[test]
    fn lambda2_keeps_paper_node_count() {
        let c = lambda2(2, TopologyMode::Static, 0);
        assert_eq!(c.nodes, 150);
        assert_eq!(c.view_size, 2);
    }
}

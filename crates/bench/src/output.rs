//! Result printing and CSV persistence for bench targets.

use std::fs;
use std::path::PathBuf;

use glmia_metrics::{render_csv, render_table};

/// The directory bench results are written to (`target/bench-results`),
/// created on first use.
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn results_dir() -> PathBuf {
    // CARGO_TARGET_DIR may relocate the target directory; otherwise it
    // lives at the workspace root, two levels above this crate.
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"));
    let dir = target.join("bench-results");
    fs::create_dir_all(&dir).expect("creating bench-results directory");
    dir
}

/// Prints a titled, aligned table to stdout and saves it as
/// `target/bench-results/<name>.csv`.
///
/// # Panics
///
/// Panics if rows are ragged or the CSV cannot be written.
pub fn emit(name: &str, title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    print!("{}", render_table(headers, rows));
    let path = results_dir().join(format!("{name}.csv"));
    fs::write(&path, render_csv(headers, rows)).expect("writing bench CSV");
    println!("[saved {}]", path.display());
}

/// Prints a JSON record and saves it as `target/bench-results/<name>.json`
/// — machine-readable performance trajectory records (e.g.
/// `BENCH_eval.json`) that future changes can diff against.
///
/// # Panics
///
/// Panics if the record cannot be serialized or written.
pub fn emit_json(name: &str, record: &serde_json::Value) {
    let pretty = serde_json::to_string_pretty(record).expect("serializing bench record");
    let path = results_dir().join(format!("{name}.json"));
    fs::write(&path, &pretty).expect("writing bench JSON");
    println!("{pretty}\n[saved {}]", path.display());
}

/// Saves a [`RunTrace`](glmia_trace::RunTrace)'s `events.jsonl` and
/// `manifest.json` under `target/bench-results/<name>/`.
///
/// # Panics
///
/// Panics if the trace cannot be written.
pub fn emit_trace(name: &str, trace: &glmia_trace::RunTrace) {
    let dir = results_dir().join(name);
    trace.write_to_dir(&dir).expect("writing bench trace");
    println!("[saved {}]", dir.display());
}

/// Formats a float with three decimals.
#[must_use]
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a `Stat` as `mean±std` with three decimals.
#[must_use]
pub fn stat(s: glmia_core::Stat) -> String {
    format!("{:.3}±{:.3}", s.mean, s.std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.ends_with("bench-results"));
        assert!(dir.exists());
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(0.12345), "0.123");
    }

    #[test]
    fn emit_writes_csv() {
        emit("unit-test-emit", "unit test", &["a"], &[vec!["1".into()]]);
        let path = results_dir().join("unit-test-emit.csv");
        assert!(path.exists());
        let _ = std::fs::remove_file(path);
    }
}

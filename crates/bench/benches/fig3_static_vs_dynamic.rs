//! Figure 3 — static vs dynamic topology on a sparse (2-regular) graph.
//!
//! For each dataset, runs SAMO on a 2-regular graph in both topology modes
//! and prints the tradeoff series. Expected shape: dynamic (PeerSwap)
//! dominates static — lower vulnerability at comparable accuracy — because
//! sparse static graphs mix poorly (§4).

use glmia_bench::output::{emit, f3, stat};
use glmia_bench::scale::experiment;
use glmia_core::run_experiment;
use glmia_data::DataPreset;
use glmia_gossip::TopologyMode;

fn main() {
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for preset in DataPreset::ALL {
        for mode in [TopologyMode::Static, TopologyMode::Dynamic] {
            let config = experiment(preset)
                .with_topology_mode(mode)
                .with_view_size(2)
                .with_seed(43);
            let result = run_experiment(&config).expect("figure 3 experiment");
            for r in &result.rounds {
                rows.push(vec![
                    preset.to_string(),
                    mode.to_string(),
                    r.round.to_string(),
                    stat(r.test_accuracy),
                    stat(r.mia_vulnerability),
                ]);
            }
            let best = result.best_point().expect("non-empty run");
            summary.push(vec![
                preset.to_string(),
                mode.to_string(),
                f3(best.utility),
                f3(best.vulnerability),
            ]);
            eprintln!("[fig3] finished {}", config.label());
        }
    }
    emit(
        "fig3_static_vs_dynamic",
        "Figure 3: MIA vulnerability vs test accuracy (SAMO, 2-regular)",
        &["dataset", "topology", "round", "test acc", "MIA vuln"],
        &rows,
    );
    emit(
        "fig3_summary",
        "Figure 3 summary: vulnerability at maximum accuracy",
        &["dataset", "topology", "max test acc", "MIA vuln @ max"],
        &summary,
    );
}

//! Telemetry overhead: the cost of live instrumentation on the gossip hot
//! path, measured as the relative slowdown of the `scale_curve` simulation
//! phase with a telemetry registry installed (counters firing on every
//! send/deliver/merge, the per-round observer draining at each barrier)
//! versus the inert default.
//!
//! The hot-path contract is that disabled telemetry is free (no registry
//! installed → every instrument is a branch on an empty thread-local) and
//! enabled telemetry stays under **3%** on the 2500-node `scale_curve`
//! point — the gate CI enforces against the committed `BENCH_telemetry.json`.
//!
//! Emits `target/bench-results/BENCH_telemetry.json`. Override the grid
//! with `GLMIA_TELEMETRY_GRID=150,600` (comma-separated node counts) and
//! the repetitions per point with `GLMIA_TELEMETRY_REPS` (min-of-N wall
//! time, default 3).

// Benchmarks measure wall time by definition; `Instant::now` is otherwise
// disallowed workspace-wide via clippy.toml.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use glmia_bench::output::emit_json;
use glmia_data::{DataPreset, Federation, Partition};
use glmia_gossip::{ProtocolKind, SimConfig, Simulation, TopologyMode};
use glmia_graph::Topology;
use glmia_nn::{Activation, MlpSpec};
use glmia_telemetry::Telemetry;
use glmia_trace::TelemetryObserver;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Node counts swept by default: the `scale_curve` grid up to its 2500-node
/// acceptance point (10k adds minutes for no extra signal — overhead is
/// already per-event at 2500).
const DEFAULT_GRID: &[usize] = &[150, 600, 2500];
const ROUNDS: usize = 3;
const VIEW_SIZE: usize = 4;
const SEED: u64 = 23;

fn grid() -> Vec<usize> {
    match std::env::var("GLMIA_TELEMETRY_GRID") {
        Ok(raw) => raw
            .split(',')
            .map(|tok| {
                tok.trim().parse().unwrap_or_else(|_| {
                    panic!("GLMIA_TELEMETRY_GRID entry {tok:?} is not a number")
                })
            })
            .collect(),
        Err(_) => DEFAULT_GRID.to_vec(),
    }
}

fn reps() -> usize {
    std::env::var("GLMIA_TELEMETRY_REPS")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(3)
}

/// One timed simulation identical to `scale_curve`'s sim phase; when
/// `telemetry` is set, the registry is installed on this thread and the
/// per-round observer drains at each barrier, exactly as a `--telemetry`
/// run would.
fn sim_secs(nodes: usize, telemetry: Option<&Telemetry>) -> f64 {
    let mut rng = StdRng::seed_from_u64(SEED);
    let data_spec = DataPreset::FashionMnistLike
        .spec()
        .with_num_classes(3)
        .with_input_dim(8);
    let model_spec = MlpSpec::new(8, &[8], 3, Activation::Relu).expect("valid model spec");
    let federation =
        Federation::build(&data_spec, nodes, 4, 2, Partition::Iid, &mut rng).expect("federation");
    let topology = Topology::random_regular(nodes, VIEW_SIZE, &mut rng).expect("topology");
    let config = SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
        .with_rounds(ROUNDS)
        .with_local_epochs(1)
        .with_batch_size(4);
    let mut sim =
        Simulation::new(config, &model_spec, &federation, topology, SEED).expect("simulation");
    let _scope = telemetry.map(Telemetry::enter);
    let mut observer = TelemetryObserver::new(telemetry.cloned());
    let t = Instant::now();
    sim.run_observed(&mut observer);
    t.elapsed().as_secs_f64()
}

/// One grid point: min-of-N wall time with telemetry off and on,
/// interleaved so drift hits both arms equally.
fn run_point(nodes: usize, reps: usize) -> serde_json::Value {
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    for _ in 0..reps {
        off = off.min(sim_secs(nodes, None));
        let telemetry = Telemetry::new();
        on = on.min(sim_secs(nodes, Some(&telemetry)));
    }
    let overhead_frac = (on - off) / off;
    eprintln!(
        "[telemetry] n={nodes}: off {off:.4}s, on {on:.4}s, overhead {:.2}%",
        overhead_frac * 100.0
    );
    serde_json::json!({
        "nodes": nodes,
        "rounds": ROUNDS,
        "view_size": VIEW_SIZE,
        "off_secs": off,
        "on_secs": on,
        "overhead_frac": overhead_frac,
    })
}

fn main() {
    let reps = reps();
    let points: Vec<serde_json::Value> = grid().into_iter().map(|n| run_point(n, reps)).collect();
    emit_json(
        "BENCH_telemetry",
        &serde_json::json!({
            "bench": "telemetry_overhead",
            "workload": {
                "protocol": "samo",
                "rounds": ROUNDS,
                "view_size": VIEW_SIZE,
                "train_per_node": 4,
                "model": "8-[8]-3",
                "reps": reps,
            },
            "gate": { "max_overhead_frac": 0.03 },
            "points": points,
        }),
    );
}

//! Extension — topology families beyond random k-regular graphs.
//!
//! The paper studies random k-regular graphs; this extension runs the same
//! SAMO workload over structurally different families (ring, torus,
//! small-world, random regular) and reports each graph's spectral gap and
//! diameter next to the resulting utility/leakage. Expected shape: the
//! smaller λ₂ (the better the mixing), the lower the vulnerability at
//! comparable accuracy — the paper's graph-mixing thesis, generalized
//! across families.

use glmia_bench::output::{emit, f3};
use glmia_bench::scale::experiment;
use glmia_core::ExperimentConfig;
use glmia_data::{DataPreset, Federation};
use glmia_gossip::Simulation;
use glmia_graph::Topology;
use glmia_metrics::accuracy;
use glmia_mia::{AttackKind, MiaEvaluator};
use glmia_nn::Mlp;
use glmia_spectral::MixingMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config: ExperimentConfig = experiment(DataPreset::Cifar10Like).with_seed(54);
    let n = config.nodes();
    let mut rng = StdRng::seed_from_u64(config.seed());
    let families: Vec<(String, Topology)> = vec![
        ("ring (k=2)".into(), Topology::ring(n).expect("ring")),
        (
            "torus 4×6 (k=4)".into(),
            Topology::torus(4, n / 4).expect("torus"),
        ),
        (
            "small-world (k=4, p=0.2)".into(),
            Topology::small_world(n, 4, 0.2, &mut rng).expect("small world"),
        ),
        (
            "random 4-regular".into(),
            Topology::random_regular(n, 4, &mut rng).expect("regular"),
        ),
    ];

    let data_spec = config.data_spec();
    let fed = Federation::build(
        &data_spec,
        n,
        config.train_per_node(),
        config.test_per_node(),
        config.partition(),
        &mut rng,
    )
    .expect("federation");
    let model_spec = config.model_spec().expect("model spec");
    let evaluator = MiaEvaluator::new(AttackKind::Mpe);

    let mut rows = Vec::new();
    for (label, topo) in families {
        let stats = topo.stats();
        // Irregular after rewiring → Metropolis weights for a fair λ₂.
        let w = MixingMatrix::metropolis(&topo).expect("mixing matrix");
        let lambda2 = w.lambda2();
        let mut sim = Simulation::new(config.sim_config(), &model_spec, &fed, topo, config.seed())
            .expect("simulation");
        let result = sim.run();
        let snapshot = result.final_snapshot();
        let mut accs = Vec::new();
        let mut vulns = Vec::new();
        for (i, flat) in snapshot.models.iter().enumerate() {
            let model = Mlp::from_flat(&model_spec, flat).expect("model");
            let node = fed.node(i);
            accs.push(accuracy(&model, fed.global_test()));
            vulns.push(
                evaluator
                    .evaluate(&model, &node.train, &node.test, &mut rng)
                    .expect("mia eval")
                    .attack_accuracy,
            );
        }
        rows.push(vec![
            label.clone(),
            f3(lambda2),
            stats.diameter.map_or("∞".into(), |d| d.to_string()),
            f3(glmia_dist::mean(&accs)),
            f3(glmia_dist::mean(&vulns)),
        ]);
        eprintln!("[ext_topology_families] finished {label}");
    }
    emit(
        "ext_topology_families",
        "Extension: topology families (CIFAR-10-like, SAMO static, final round)",
        &["topology", "λ₂", "diameter", "test acc", "MIA vuln"],
        &rows,
    );
}

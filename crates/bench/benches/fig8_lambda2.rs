//! Figure 8 — λ₂(W*) versus iterations.
//!
//! For k ∈ {2, 5, 10, 25} and both settings (static, dynamic), measures the
//! contraction coefficient of the mixing-matrix product over synchronous
//! iterations, averaged over independent runs with standard deviation — the
//! paper's spectral experiment, at the paper's 150-node scale. Expected
//! shape: for equal k, the dynamic curve decays much faster than the static
//! one and its standard deviation is negligible; larger k decays faster.

use glmia_bench::output::emit;
use glmia_bench::scale::lambda2;
use glmia_core::lambda2_series;
use glmia_gossip::TopologyMode;

fn main() {
    let mut rows = Vec::new();
    for &k in &[2usize, 5, 10, 25] {
        for mode in [TopologyMode::Static, TopologyMode::Dynamic] {
            let config = lambda2(k, mode, 47);
            let series = lambda2_series(&config).expect("figure 8 series");
            for (t, (m, s)) in series.mean.iter().zip(&series.std).enumerate() {
                rows.push(vec![
                    k.to_string(),
                    mode.to_string(),
                    (t + 1).to_string(),
                    format!("{m:.6}"),
                    format!("{s:.6}"),
                ]);
            }
            eprintln!("[fig8] finished k={k} {mode}");
        }
    }
    emit(
        "fig8_lambda2",
        "Figure 8: λ₂(W*) vs iterations (150 nodes, mean ± std over runs)",
        &["k", "setting", "iterations", "lambda2(W*)", "std"],
        &rows,
    );
}

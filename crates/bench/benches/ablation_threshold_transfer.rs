//! Ablation — oracle vs transferred thresholds.
//!
//! The paper's MPE attack uses the oracle threshold (calibrated on the
//! victim's own data), a worst-case bound. Here a realistic attacker
//! calibrates on *another node's* data and transfers the threshold.
//! Expected shape: transferred accuracy tracks the oracle closely (scores
//! are comparable across nodes trained on the same task), confirming the
//! oracle bound is informative rather than vacuous.

use glmia_bench::output::{emit, f3};
use glmia_bench::scale::experiment;
use glmia_core::ExperimentConfig;
use glmia_data::{DataPreset, Federation};
use glmia_gossip::Simulation;
use glmia_graph::Topology;
use glmia_mia::{AttackKind, MiaEvaluator, TransferAttack};
use glmia_nn::Mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config: ExperimentConfig = experiment(DataPreset::Cifar10Like)
        .with_view_size(5)
        .with_seed(53);
    let mut rng = StdRng::seed_from_u64(config.seed());
    let data_spec = config.data_spec();
    let fed = Federation::build(
        &data_spec,
        config.nodes(),
        config.train_per_node(),
        config.test_per_node(),
        config.partition(),
        &mut rng,
    )
    .expect("federation");
    let topo =
        Topology::random_regular(config.nodes(), config.view_size(), &mut rng).expect("topology");
    let model_spec = config.model_spec().expect("model spec");
    let mut sim = Simulation::new(config.sim_config(), &model_spec, &fed, topo, config.seed())
        .expect("simulation");
    let result = sim.run();
    let snapshot = result.final_snapshot();

    // Calibrate the transfer attack on node 0 (the attacker's vantage),
    // then attack every other node; compare with the per-victim oracle.
    let attacker_model = Mlp::from_flat(&model_spec, &snapshot.models[0]).expect("model");
    let attacker_data = fed.node(0);
    let transfer = TransferAttack::calibrate_on(
        AttackKind::Mpe,
        &attacker_model,
        &attacker_data.train,
        &attacker_data.test,
    )
    .expect("calibration");
    let oracle = MiaEvaluator::new(AttackKind::Mpe);

    let mut oracle_accs = Vec::new();
    let mut transfer_accs = Vec::new();
    for (i, flat) in snapshot.models.iter().enumerate().skip(1) {
        let victim = Mlp::from_flat(&model_spec, flat).expect("model");
        let node = fed.node(i);
        let o = oracle
            .evaluate(&victim, &node.train, &node.test, &mut rng)
            .expect("oracle eval");
        let t = transfer
            .evaluate(&victim, &node.train, &node.test, &mut rng)
            .expect("transfer eval");
        oracle_accs.push(o.attack_accuracy);
        transfer_accs.push(t.attack_accuracy);
    }
    let (o_mean, o_std) = glmia_dist::mean_std(&oracle_accs);
    let (t_mean, t_std) = glmia_dist::mean_std(&transfer_accs);
    emit(
        "ablation_threshold_transfer",
        "Ablation: oracle vs transferred threshold (CIFAR-10-like, SAMO, final round)",
        &["attacker", "mean accuracy", "std", "victims"],
        &[
            vec![
                "oracle (paper)".into(),
                f3(o_mean),
                f3(o_std),
                oracle_accs.len().to_string(),
            ],
            vec![
                "transferred from node 0".into(),
                f3(t_mean),
                f3(t_std),
                transfer_accs.len().to_string(),
            ],
        ],
    );
}

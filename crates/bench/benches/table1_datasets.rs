//! Table 1 — dataset characteristics.
//!
//! Prints the characteristics of the four synthetic stand-in datasets next
//! to the real datasets they substitute, mirroring the paper's Table 1.

use glmia_bench::output::emit;
use glmia_bench::scale::experiment;
use glmia_data::DataPreset;

fn main() {
    let rows: Vec<Vec<String>> = DataPreset::ALL
        .iter()
        .map(|&preset| {
            let config = experiment(preset);
            let spec = config.data_spec();
            vec![
                preset.paper_name().to_string(),
                preset.to_string(),
                (config.nodes() * config.train_per_node()).to_string(),
                (config.nodes() * config.test_per_node()).to_string(),
                spec.input_dim().to_string(),
                spec.num_classes().to_string(),
                format!("{}", spec.kind()),
            ]
        })
        .collect();
    emit(
        "table1_datasets",
        "Table 1: dataset characteristics (synthetic stand-ins)",
        &[
            "paper dataset",
            "stand-in",
            "train set",
            "test set",
            "input dim",
            "classes",
            "features",
        ],
        &rows,
    );
}

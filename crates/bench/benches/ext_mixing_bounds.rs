//! Extension — how loose is the paper's Eq. 11 bound under dynamics?
//!
//! Compares the per-factor bound `∏ₜ λ₂(W⁽ᵗ⁾)` (Eq. 11) against the joint
//! contraction `σ₂(W⁽ᵀ⁾⋯W⁽¹⁾)` (Eq. 10 on the whole product) for growing
//! sequences of dynamic 2-regular graphs. Expected shape: static sequences
//! show zero gap; dynamic sequences open a widening gap — the quantitative
//! reason the paper analyzes λ₂ of the *product* rather than multiplying
//! per-round values.

use glmia_bench::output::emit;
use glmia_graph::Topology;
use glmia_spectral::{compare_mixing_bounds, MixingMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 60;
    let k = 2;
    let mut rng = StdRng::seed_from_u64(55);
    let mut rows = Vec::new();
    for t in [2usize, 4, 6, 8, 10] {
        // Static: one graph reused t times.
        let g = Topology::random_regular(n, k, &mut rng).expect("graph");
        let w = MixingMatrix::from_regular(&g).expect("mixing");
        let static_seq = vec![w; t];
        let static_cmp = compare_mixing_bounds(&static_seq, &mut rng).expect("bounds");

        // Dynamic: PeerSwap-evolved graphs per iteration.
        let mut topo = Topology::random_regular(n, k, &mut rng).expect("graph");
        let mut dyn_seq = Vec::with_capacity(t);
        for _ in 0..t {
            dyn_seq.push(MixingMatrix::from_regular(&topo).expect("mixing"));
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                topo.swap_with_random_neighbor(i, &mut rng);
            }
        }
        let dyn_cmp = compare_mixing_bounds(&dyn_seq, &mut rng).expect("bounds");

        rows.push(vec![
            t.to_string(),
            format!("{:.6}", static_cmp.per_factor_bound),
            format!("{:.6}", static_cmp.joint),
            format!("{:.6}", static_cmp.gap()),
            format!("{:.6}", dyn_cmp.per_factor_bound),
            format!("{:.6}", dyn_cmp.joint),
            format!("{:.6}", dyn_cmp.gap()),
        ]);
        eprintln!("[ext_mixing_bounds] finished T={t}");
    }
    emit(
        "ext_mixing_bounds",
        "Extension: Eq. 11 per-factor bound vs joint contraction (60 nodes, 2-regular)",
        &[
            "T",
            "static ∏λ₂",
            "static σ₂(W*)",
            "static gap",
            "dyn ∏λ₂",
            "dyn σ₂(W*)",
            "dyn gap",
        ],
        &rows,
    );
}

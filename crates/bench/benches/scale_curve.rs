//! Scale curve: end-to-end gossip + sparse spectral throughput as the node
//! count grows from the paper's 150 to 10,000+.
//!
//! Each grid point builds a federation, simulates SAMO gossip with the
//! mixing-matrix observer attached, and runs the full sparse spectral
//! pipeline (analytic λ₂ anchor, per-round empirical λ₂, cumulative-product
//! contraction) — everything the trace pipeline computes per run except the
//! MIA replay, whose cost scales with evaluation budget rather than with
//! graph size. Nothing on this path materializes an `n × n` matrix, which
//! is what makes the 10k-node point feasible at all: the dense pipeline's
//! mixing capture alone would need 0.8 GB per round there.
//!
//! Emits `target/bench-results/BENCH_scale.json`; the committed copy at the
//! repository root is the gate CI's scale smoke job compares against (>20%
//! throughput regression on the reduced grid fails the job). Override the
//! grid with `GLMIA_SCALE_GRID=150,600` (comma-separated node counts).

// Benchmarks measure wall time by definition; `Instant::now` is otherwise
// disallowed workspace-wide via clippy.toml.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use glmia_bench::output::emit_json;
use glmia_data::{DataPreset, Federation, Partition};
use glmia_gossip::{MixingMatrixObserver, ProtocolKind, SimConfig, Simulation, TopologyMode};
use glmia_graph::Topology;
use glmia_nn::{Activation, MlpSpec};
use glmia_spectral::{product_contraction_seeded, ProductContractionOptions, SparseMixingMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Node counts swept by default: paper scale up to the 10k acceptance
/// point. `GLMIA_SCALE_GRID` (comma-separated) overrides, e.g. the CI smoke
/// job's reduced grid.
const DEFAULT_GRID: &[usize] = &[150, 600, 2500, 10_000];
/// Communication rounds per point — enough for buffered merges, cumulative
/// products and stale-node snapshots to all occur, small enough that the
/// 10k point stays in seconds.
const ROUNDS: usize = 3;
const VIEW_SIZE: usize = 4;
const SEED: u64 = 23;

fn grid() -> Vec<usize> {
    match std::env::var("GLMIA_SCALE_GRID") {
        Ok(raw) => raw
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("GLMIA_SCALE_GRID entry {tok:?} is not a number"))
            })
            .collect(),
        Err(_) => DEFAULT_GRID.to_vec(),
    }
}

/// One grid point, timed phase by phase.
fn run_point(nodes: usize) -> serde_json::Value {
    let mut rng = StdRng::seed_from_u64(SEED);
    // Tiny shards and model: the sweep measures how the engine, observer
    // and spectral pipeline scale with n, not SGD throughput.
    let data_spec = DataPreset::FashionMnistLike
        .spec()
        .with_num_classes(3)
        .with_input_dim(8);
    let model_spec = MlpSpec::new(8, &[8], 3, Activation::Relu).expect("valid model spec");
    let federation =
        Federation::build(&data_spec, nodes, 4, 2, Partition::Iid, &mut rng).expect("federation");
    let topology = Topology::random_regular(nodes, VIEW_SIZE, &mut rng).expect("topology");

    let t_analytic = Instant::now();
    let analytic = SparseMixingMatrix::from_regular(&topology)
        .expect("sparse mixing matrix")
        .lambda2_magnitude_seeded(ProductContractionOptions::deterministic(), SEED)
        .expect("analytic lambda2");
    let analytic_secs = t_analytic.elapsed().as_secs_f64();

    let config = SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
        .with_rounds(ROUNDS)
        .with_local_epochs(1)
        .with_batch_size(4);
    let mut sim =
        Simulation::new(config, &model_spec, &federation, topology, SEED).expect("simulation");
    let mut observer = MixingMatrixObserver::new(nodes);
    let t_sim = Instant::now();
    sim.run_observed(&mut observer);
    let sim_secs = t_sim.elapsed().as_secs_f64();

    let matrices = observer.matrices();
    let max_nnz = matrices
        .iter()
        .map(SparseMixingMatrix::nnz)
        .max()
        .unwrap_or(0);
    let opts = ProductContractionOptions::deterministic();
    let t_spectral = Instant::now();
    let mut lambda2_rounds = Vec::with_capacity(matrices.len());
    for w in matrices {
        lambda2_rounds.push(
            product_contraction_seeded(std::slice::from_ref(w), opts, SEED)
                .expect("per-round lambda2"),
        );
    }
    let cumulative =
        product_contraction_seeded(matrices, opts, SEED).expect("cumulative contraction");
    let spectral_secs = t_spectral.elapsed().as_secs_f64();

    let total_secs = analytic_secs + sim_secs + spectral_secs;
    let node_rounds_per_sec = (nodes * ROUNDS) as f64 / total_secs;
    eprintln!(
        "[scale] n={nodes}: sim {sim_secs:.3}s, spectral {spectral_secs:.3}s, \
         analytic {analytic_secs:.3}s, {node_rounds_per_sec:.0} node·rounds/s, \
         max nnz {max_nnz} (dense would be {})",
        nodes * nodes
    );
    serde_json::json!({
        "nodes": nodes,
        "rounds": ROUNDS,
        "view_size": VIEW_SIZE,
        "messages_sent": sim.messages_sent(),
        "sim_secs": sim_secs,
        "spectral_secs": spectral_secs,
        "analytic_lambda2_secs": analytic_secs,
        "total_secs": total_secs,
        "node_rounds_per_sec": node_rounds_per_sec,
        "lambda2_analytic": analytic,
        "lambda2_round_final": lambda2_rounds.last().copied(),
        "lambda2_cumulative": cumulative,
        "max_matrix_nnz": max_nnz,
    })
}

fn main() {
    let points: Vec<serde_json::Value> = grid().into_iter().map(run_point).collect();
    emit_json(
        "BENCH_scale",
        &serde_json::json!({
            "bench": "scale_curve",
            "workload": {
                "protocol": "samo",
                "rounds": ROUNDS,
                "view_size": VIEW_SIZE,
                "train_per_node": 4,
                "model": "8-[8]-3",
            },
            "points": points,
        }),
    );
}

//! Threat-model × defense matrix — who sees what, and how much it leaks.
//!
//! Sweeps the attacker models of section 6.2 (omniscient, passive
//! neighborhood observers, a colluding coalition) against the shared-model
//! defenses (none, Gaussian noise, random mask, parameter clipping) on
//! static and PeerSwap-dynamic graphs, and reports per cell: final-round
//! MIA AUC and attack accuracy over the *observed* nodes, test accuracy,
//! the analytic λ₂ anchor and the attacker's vantage size. Expected shape:
//! restricting the vantage changes *which* nodes are scored but not the
//! per-node leakage; defenses trade test accuracy against AUC; λ₂ depends
//! only on the topology column.
//!
//! Emits `target/bench-results/BENCH_threat.json`; the committed copy at
//! the repository root records the acceptance matrix. CI's threat-matrix
//! smoke job runs the reduced grid via `GLMIA_THREAT_GRID=smoke`.

use glmia_bench::output::{emit, emit_json, f3};
use glmia_core::prelude::AttackerModel;
use glmia_core::{run_experiment_traced, ExperimentConfig};
use glmia_data::DataPreset;
use glmia_gossip::{Defense, ProtocolKind, TopologyMode};
use glmia_trace::TraceEvent;

const SEED: u64 = 31;

/// The workload every cell runs: small enough that the full 24-cell matrix
/// finishes in minutes, large enough that restricted vantages differ from
/// the full graph.
fn base(mode: TopologyMode) -> ExperimentConfig {
    ExperimentConfig::quick_test(DataPreset::FashionMnistLike)
        .with_protocol(ProtocolKind::Samo)
        .with_topology_mode(mode)
        .with_nodes(16)
        .with_view_size(4)
        .with_rounds(20)
        .with_eval_every(5)
        .with_seed(SEED)
}

fn attackers() -> Vec<(&'static str, AttackerModel)> {
    vec![
        ("omniscient", AttackerModel::Omniscient),
        (
            "neighbors",
            AttackerModel::PassiveNeighbors {
                observers: vec![0, 1, 2],
            },
        ),
        (
            "coalition",
            AttackerModel::Coalition {
                members: (0..4).collect(),
            },
        ),
    ]
}

fn defenses() -> Vec<(&'static str, Option<Defense>)> {
    vec![
        ("none", None),
        ("gaussian", Some(Defense::GaussianNoise { std: 0.05 })),
        ("mask", Some(Defense::RandomMask { fraction: 0.25 })),
        ("clip", Some(Defense::Clipping { limit: 0.5 })),
    ]
}

fn smoke() -> bool {
    std::env::var("GLMIA_THREAT_GRID").is_ok_and(|v| v == "smoke")
}

fn main() {
    let topologies = [
        ("static", TopologyMode::Static),
        ("dynamic", TopologyMode::Dynamic),
    ];
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (attacker_name, attacker) in attackers() {
        for (defense_name, defense) in defenses() {
            for (topology_name, mode) in topologies {
                // The smoke grid keeps one cell per axis value while still
                // crossing every attacker with a defended and an undefended
                // column.
                if smoke()
                    && (topology_name == "dynamic" || !matches!(defense_name, "none" | "gaussian"))
                {
                    continue;
                }
                let mut config = base(mode).with_attacker(attacker.clone());
                if let Some(defense) = defense {
                    config = config.with_defense(defense);
                }
                let (result, trace) =
                    run_experiment_traced(&config).expect("threat matrix experiment");
                let final_round = result.final_round();
                let lambda2 = trace
                    .events()
                    .iter()
                    .find_map(|e| match e {
                        TraceEvent::Topology(t) => Some(t.lambda2_analytic),
                        _ => None,
                    })
                    .expect("traced runs record the topology anchor");
                let observed = trace
                    .events()
                    .iter()
                    .find_map(|e| match e {
                        TraceEvent::Threat(t) => Some(t.observed_nodes),
                        _ => None,
                    })
                    .unwrap_or(config.nodes());
                rows.push(vec![
                    attacker_name.to_string(),
                    defense_name.to_string(),
                    topology_name.to_string(),
                    format!("{observed}/{}", config.nodes()),
                    f3(final_round.test_accuracy.mean),
                    f3(final_round.mia_vulnerability.mean),
                    f3(final_round.mia_auc.mean),
                    format!("{lambda2:.4}"),
                ]);
                cells.push(serde_json::json!({
                    "attacker": attacker_name,
                    "attacker_spec": attacker.to_string(),
                    "defense": defense_name,
                    "topology": topology_name,
                    "observed_nodes": observed,
                    "nodes": config.nodes(),
                    "test_accuracy": final_round.test_accuracy.mean,
                    "mia_vulnerability": final_round.mia_vulnerability.mean,
                    "mia_auc": final_round.mia_auc.mean,
                    "lambda2_analytic": lambda2,
                }));
                eprintln!(
                    "[threat_matrix] finished {attacker_name} x {defense_name} x {topology_name}"
                );
            }
        }
    }
    emit(
        "fig_threat_matrix",
        "Threat matrix: attacker x defense x topology (SAMO, 16 nodes, 4-regular, 20 rounds)",
        &[
            "attacker", "defense", "topology", "observed", "test acc", "MIA vuln", "MIA AUC",
            "lambda2",
        ],
        &rows,
    );
    emit_json(
        "BENCH_threat",
        &serde_json::json!({
            "bench": "fig_threat_matrix",
            "workload": {
                "dataset": "fashion-like",
                "protocol": "samo",
                "nodes": 16,
                "view_size": 4,
                "rounds": 20,
                "eval_every": 5,
                "seed": SEED,
                "grid": if smoke() { "smoke" } else { "full" },
            },
            "cells": cells,
        }),
    );
}

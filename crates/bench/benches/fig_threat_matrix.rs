//! Threat-model × defense matrix — who sees what, and how much it leaks.
//!
//! Sweeps the attacker models of section 6.2 (omniscient, passive
//! neighborhood observers, a colluding coalition) against the shared-model
//! defenses (none, Gaussian noise, random mask, parameter clipping) on
//! static and PeerSwap-dynamic graphs, and reports per cell: final-round
//! MIA AUC and attack accuracy over the *observed* nodes, test accuracy,
//! the analytic λ₂ anchor and the attacker's vantage size. Expected shape:
//! restricting the vantage changes *which* nodes are scored but not the
//! per-node leakage; defenses trade test accuracy against AUC; λ₂ depends
//! only on the topology column.
//!
//! The grid lives in `scenarios/threat_matrix.toml` (shared with
//! `glmia sweep`); this bench expands it with the same canonical grid
//! machinery and runs the cells through [`glmia_sweep::run_cell`], so the
//! bench and the sweep runner cannot drift apart. Emits
//! `target/bench-results/BENCH_threat.json`; the committed copy at the
//! repository root records the acceptance matrix. CI's threat-matrix
//! smoke job runs the reduced grid via `GLMIA_THREAT_GRID=smoke`.

use glmia_bench::output::{emit, emit_json, f3};
use glmia_sweep::{run_cell, Scenario, SweepGrid};

const SCENARIO: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../scenarios/threat_matrix.toml"
);

fn smoke() -> bool {
    std::env::var("GLMIA_THREAT_GRID").is_ok_and(|v| v == "smoke")
}

/// The axis label up to its first parameter: `gaussian:0.05` → `gaussian`.
fn short(label: &str) -> &str {
    label.split(':').next().unwrap_or(label)
}

fn main() {
    let scenario = Scenario::from_path(std::path::Path::new(SCENARIO))
        .expect("committed threat-matrix scenario parses");
    let grid = SweepGrid::expand(&scenario).expect("threat-matrix grid expands");
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for cell in &grid.cells {
        let attacker_name = short(&cell.axes["attacker"]).to_string();
        let defense_name = short(&cell.axes["defense"]).to_string();
        let topology_name = cell.axes["topology"].clone();
        // The smoke grid keeps one cell per axis value while still
        // crossing every attacker with a defended and an undefended
        // column.
        if smoke()
            && (topology_name == "dynamic" || !matches!(defense_name.as_str(), "none" | "gaussian"))
        {
            continue;
        }
        let record = run_cell(cell).expect("threat matrix experiment");
        let s = &record.summary;
        rows.push(vec![
            attacker_name.clone(),
            defense_name.clone(),
            topology_name.clone(),
            format!("{}/{}", s.observed_nodes, cell.config.nodes()),
            f3(s.final_test_accuracy),
            f3(s.final_mia_vulnerability),
            f3(s.final_mia_auc),
            format!("{:.4}", s.lambda2_analytic),
        ]);
        cells.push(serde_json::json!({
            "attacker": attacker_name,
            "attacker_spec": s.attacker,
            "defense": defense_name,
            "topology": topology_name,
            "observed_nodes": s.observed_nodes,
            "nodes": cell.config.nodes(),
            "test_accuracy": s.final_test_accuracy,
            "mia_vulnerability": s.final_mia_vulnerability,
            "mia_auc": s.final_mia_auc,
            "lambda2_analytic": s.lambda2_analytic,
        }));
        eprintln!("[threat_matrix] finished {attacker_name} x {defense_name} x {topology_name}");
    }
    emit(
        "fig_threat_matrix",
        "Threat matrix: attacker x defense x topology (SAMO, 16 nodes, 4-regular, 20 rounds)",
        &[
            "attacker", "defense", "topology", "observed", "test acc", "MIA vuln", "MIA AUC",
            "lambda2",
        ],
        &rows,
    );
    emit_json(
        "BENCH_threat",
        &serde_json::json!({
            "bench": "fig_threat_matrix",
            "workload": {
                "dataset": "fashion-like",
                "protocol": "samo",
                "nodes": 16,
                "view_size": 4,
                "rounds": 20,
                "eval_every": 5,
                "seed": 31,
                "grid": if smoke() { "smoke" } else { "full" },
                "scenario": "scenarios/threat_matrix.toml",
                "scenario_hash": grid.hash_hex(),
            },
            "cells": cells,
        }),
    );
}

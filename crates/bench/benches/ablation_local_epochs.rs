//! Ablation — local epochs (the overfitting knob).
//!
//! Sweeps the number of local epochs per update. More local work between
//! exchanges means each shared model carries more of its owner's shard —
//! the mechanism the paper identifies behind early-overfitting leakage.
//! Expected shape: vulnerability grows with local epochs.

use glmia_bench::output::{emit, stat};
use glmia_bench::scale::experiment;
use glmia_core::run_experiment;
use glmia_data::DataPreset;

fn main() {
    let mut rows = Vec::new();
    for epochs in [1usize, 3, 6, 12] {
        let config = experiment(DataPreset::Cifar10Like)
            .with_view_size(5)
            .with_local_epochs(epochs)
            .with_seed(50);
        let result = run_experiment(&config).expect("local-epochs ablation experiment");
        let last = result.final_round();
        rows.push(vec![
            epochs.to_string(),
            stat(last.test_accuracy),
            stat(last.gen_error),
            stat(last.mia_vulnerability),
        ]);
        eprintln!("[ablation_local_epochs] finished epochs={epochs}");
    }
    emit(
        "ablation_local_epochs",
        "Ablation: local epochs per update (CIFAR-10-like, SAMO, static 5-regular, final round)",
        &["local epochs", "test acc", "gen error", "MIA vuln"],
        &rows,
    );
}

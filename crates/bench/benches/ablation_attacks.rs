//! Ablation — attack variants.
//!
//! Runs the same SAMO experiment under each membership-score family (MPE,
//! plain entropy, confidence, loss) and compares the final-round
//! vulnerability and AUC. Expected shape: MPE and loss are the strongest
//! (label-aware) scores; plain entropy is weakest.

use glmia_bench::output::{emit, stat};
use glmia_bench::scale::experiment;
use glmia_core::run_experiment;
use glmia_data::DataPreset;
use glmia_mia::AttackKind;

fn main() {
    let mut rows = Vec::new();
    for kind in AttackKind::ALL {
        let config = experiment(DataPreset::Cifar10Like)
            .with_view_size(5)
            .with_attack(kind)
            .with_seed(48);
        let result = run_experiment(&config).expect("attack ablation experiment");
        let last = result.final_round();
        rows.push(vec![
            kind.to_string(),
            stat(last.mia_vulnerability),
            stat(last.mia_auc),
            stat(last.test_accuracy),
        ]);
        eprintln!("[ablation_attacks] finished {kind}");
    }
    emit(
        "ablation_attacks",
        "Ablation: attack variants (CIFAR-10-like, SAMO, static 5-regular, final round)",
        &["attack", "MIA vuln", "AUC", "test acc"],
        &rows,
    );
}

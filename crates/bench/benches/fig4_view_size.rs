//! Figure 4 — impact of the view size.
//!
//! CIFAR-10-like, SAMO, view sizes k ∈ {2, 5, 10, 25}, static vs dynamic.
//! Prints each configuration's maximum mean test accuracy, the MIA
//! vulnerability at that point, and the number of models sent (the
//! communication-cost axis of RQ3). Expected shape: dynamic beats static at
//! every k; the gap narrows as k grows (a denser graph approaches the
//! complete graph where the settings coincide); messages scale with k.

use glmia_bench::output::{emit, f3};
use glmia_bench::scale::{experiment, is_paper_scale};
use glmia_core::run_experiment;
use glmia_data::DataPreset;
use glmia_gossip::TopologyMode;

fn main() {
    let view_sizes: &[usize] = if is_paper_scale() {
        &[2, 5, 10, 25]
    } else {
        // Bench scale runs 24 nodes; cap k below n.
        &[2, 5, 10, 20]
    };
    let mut rows = Vec::new();
    for &k in view_sizes {
        for mode in [TopologyMode::Static, TopologyMode::Dynamic] {
            let config = experiment(DataPreset::Cifar10Like)
                .with_view_size(k)
                .with_topology_mode(mode)
                .with_seed(44);
            let result = run_experiment(&config).expect("figure 4 experiment");
            let best = result.best_point().expect("non-empty run");
            rows.push(vec![
                k.to_string(),
                mode.to_string(),
                f3(best.utility),
                f3(best.vulnerability),
                result.messages_sent.to_string(),
            ]);
            eprintln!("[fig4] finished {}", config.label());
        }
    }
    emit(
        "fig4_view_size",
        "Figure 4: max accuracy & vulnerability vs view size (CIFAR-10-like, SAMO)",
        &[
            "view size",
            "topology",
            "max test acc",
            "MIA vuln @ max",
            "models sent",
        ],
        &rows,
    );
}

//! Table 2 — training configuration.
//!
//! Prints the per-dataset training hyperparameters (the paper's Table 2
//! values, which this reproduction reuses verbatim) plus the stand-in model
//! architecture and its parameter count.

use glmia_bench::output::emit;
use glmia_bench::scale::experiment;
use glmia_core::TrainingPreset;
use glmia_data::DataPreset;

fn main() {
    let rows: Vec<Vec<String>> = DataPreset::ALL
        .iter()
        .map(|&preset| {
            let t = TrainingPreset::for_dataset(preset);
            let config = experiment(preset);
            let model = config.model_spec().expect("preset model spec is valid");
            vec![
                preset.paper_name().to_string(),
                format!("MLP {:?}", t.hidden),
                model.num_params().to_string(),
                format!("{}", t.learning_rate),
                format!("{}", t.momentum),
                format!("{:e}", t.weight_decay),
                t.local_epochs.to_string(),
                t.paper_rounds.to_string(),
            ]
        })
        .collect();
    emit(
        "table2_training_config",
        "Table 2: training configuration",
        &[
            "dataset",
            "model",
            "parameters",
            "learning rate",
            "momentum",
            "weight decay",
            "local epochs",
            "rounds (paper)",
        ],
        &rows,
    );
}

//! Figure 5 — impact of non-IID (Dirichlet) data distribution.
//!
//! Purchase-100-like, SAMO, 2-regular graph; heterogeneity
//! β ∈ {IID, 0.5, 0.1} × {static, dynamic}. Expected shape: lower β (more
//! label skew) raises MIA vulnerability across all rounds and lowers
//! achievable accuracy; dynamic helps but never fully closes the non-IID
//! gap.

use glmia_bench::output::{emit, f3, stat};
use glmia_bench::scale::experiment;
use glmia_core::run_experiment;
use glmia_data::{DataPreset, Partition};
use glmia_gossip::TopologyMode;

fn main() {
    let partitions = [
        ("iid", Partition::Iid),
        ("dir(0.5)", Partition::Dirichlet { beta: 0.5 }),
        ("dir(0.1)", Partition::Dirichlet { beta: 0.1 }),
    ];
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for (label, partition) in partitions {
        for mode in [TopologyMode::Static, TopologyMode::Dynamic] {
            let config = experiment(DataPreset::Purchase100Like)
                .with_partition(partition)
                .with_topology_mode(mode)
                .with_view_size(2)
                .with_seed(45);
            let result = run_experiment(&config).expect("figure 5 experiment");
            for r in &result.rounds {
                rows.push(vec![
                    label.to_string(),
                    mode.to_string(),
                    r.round.to_string(),
                    stat(r.test_accuracy),
                    stat(r.mia_vulnerability),
                ]);
            }
            let best = result.best_point().expect("non-empty run");
            let final_round = result.final_round();
            summary.push(vec![
                label.to_string(),
                mode.to_string(),
                f3(best.utility),
                f3(best.vulnerability),
                f3(final_round.mia_vulnerability.mean),
            ]);
            eprintln!("[fig5] finished {} {}", label, mode);
        }
    }
    emit(
        "fig5_noniid",
        "Figure 5: tradeoff under data heterogeneity (Purchase-100-like, SAMO, 2-regular)",
        &["partition", "topology", "round", "test acc", "MIA vuln"],
        &rows,
    );
    emit(
        "fig5_summary",
        "Figure 5 summary",
        &[
            "partition",
            "topology",
            "max test acc",
            "MIA vuln @ max",
            "final MIA vuln",
        ],
        &summary,
    );
}

//! Extension — model-perturbation defenses.
//!
//! Quantifies the privacy/utility shift bought by perturbing *shared*
//! models (the §6.2 mitigation direction): Gaussian noise at increasing σ
//! and random masking. The attacker here observes the *transmitted* model
//! copies ([`AttackSurface::SharedModel`]) — perturbing shares cannot
//! protect a node's internal model, only what leaves the node. Expected
//! shape: stronger perturbation lowers MIA vulnerability on the shared
//! surface and costs accuracy — the classic DP-style tradeoff, on top of
//! the architectural factors the paper studies.

use glmia_bench::output::{emit, stat};
use glmia_bench::scale::experiment;
use glmia_core::{run_experiment, AttackSurface};
use glmia_data::DataPreset;
use glmia_gossip::Defense;

fn main() {
    let defenses: Vec<(String, Option<Defense>)> = vec![
        ("none".into(), None),
        (
            "gauss σ=0.005".into(),
            Some(Defense::GaussianNoise { std: 0.005 }),
        ),
        (
            "gauss σ=0.02".into(),
            Some(Defense::GaussianNoise { std: 0.02 }),
        ),
        (
            "gauss σ=0.05".into(),
            Some(Defense::GaussianNoise { std: 0.05 }),
        ),
        (
            "mask 25%".into(),
            Some(Defense::RandomMask { fraction: 0.25 }),
        ),
    ];
    let mut rows = Vec::new();
    for (label, defense) in defenses {
        let mut config = experiment(DataPreset::Cifar10Like)
            .with_view_size(5)
            .with_attack_surface(AttackSurface::SharedModel)
            .with_seed(49);
        if let Some(d) = defense {
            config = config.with_defense(d);
        }
        let result = run_experiment(&config).expect("defense ablation experiment");
        let last = result.final_round();
        rows.push(vec![
            label.clone(),
            stat(last.test_accuracy),
            stat(last.mia_vulnerability),
            stat(last.mia_auc),
        ]);
        eprintln!("[ablation_defenses] finished {label}");
    }
    emit(
        "ablation_defenses",
        "Extension: outgoing-model perturbation defenses (CIFAR-10-like, SAMO, final round)",
        &["defense", "test acc", "MIA vuln", "AUC"],
        &rows,
    );
}

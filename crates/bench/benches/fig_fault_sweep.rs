//! Fault-injection sweep — privacy/utility under churn and message loss.
//!
//! Off-paper extension: sweeps node-churn probability and in-transit drop
//! probability (with straggler link latency held fixed) on a static
//! 5-regular graph, and reports communication cost, realized message loss,
//! and the (max accuracy, vulnerability at max) summary per cell. Expected
//! shape: mild churn/loss slows convergence (lower max accuracy at equal
//! rounds) but does not raise vulnerability at a given accuracy — the
//! attack surface tracks overfitting, not delivery reliability.
//!
//! The grid lives in `scenarios/fault_sweep.toml` (shared with
//! `glmia sweep`); this bench expands it with the same canonical grid
//! machinery and runs the cells through [`glmia_sweep::run_cell`].
//! `GLMIA_PAPER_SCALE` switches the scenario's preset to the paper's full
//! scale.

use glmia_bench::output::{emit, f3};
use glmia_bench::scale::is_paper_scale;
use glmia_sweep::{run_cell, Scenario, SweepGrid};

const SCENARIO: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../scenarios/fault_sweep.toml"
);

fn main() {
    let mut scenario = Scenario::from_path(std::path::Path::new(SCENARIO))
        .expect("committed fault-sweep scenario parses");
    if is_paper_scale() {
        scenario
            .set_preset("paper")
            .expect("paper is a known preset");
    }
    let grid = SweepGrid::expand(&scenario).expect("fault-sweep grid expands");
    let mut rows = Vec::new();
    for cell in &grid.cells {
        let churn: f64 = cell.axes["churn"].parse().expect("numeric churn label");
        let drop: f64 = cell.axes["drop"].parse().expect("numeric drop label");
        let record = run_cell(cell).expect("fault sweep experiment");
        let s = &record.summary;
        let loss = if s.messages_sent == 0 {
            0.0
        } else {
            s.messages_dropped as f64 / s.messages_sent as f64
        };
        rows.push(vec![
            format!("{churn:.2}"),
            format!("{drop:.2}"),
            s.messages_sent.to_string(),
            s.messages_dropped.to_string(),
            f3(loss),
            f3(s.best_test_accuracy),
            f3(s.mia_vulnerability_at_best),
        ]);
        eprintln!("[fault_sweep] finished churn={churn:.2} drop={drop:.2}");
    }
    emit(
        "fig_fault_sweep",
        "Fault sweep: churn x link drop (SAMO, static 5-regular, straggler latency)",
        &[
            "churn",
            "drop prob",
            "sent",
            "dropped",
            "loss rate",
            "max test acc",
            "MIA vuln @ max",
        ],
        &rows,
    );
}

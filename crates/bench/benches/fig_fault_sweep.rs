//! Fault-injection sweep — privacy/utility under churn and message loss.
//!
//! Off-paper extension: sweeps node-churn probability and in-transit drop
//! probability (with straggler link latency held fixed) on a static
//! 5-regular graph, and reports communication cost, realized message loss,
//! and the (max accuracy, vulnerability at max) summary per cell. Expected
//! shape: mild churn/loss slows convergence (lower max accuracy at equal
//! rounds) but does not raise vulnerability at a given accuracy — the
//! attack surface tracks overfitting, not delivery reliability.

use glmia_bench::output::{emit, f3};
use glmia_bench::scale::experiment;
use glmia_core::run_experiment;
use glmia_data::DataPreset;
use glmia_gossip::{ChurnConfig, FaultPlan, LatencyDist, ProtocolKind, TopologyMode};

fn main() {
    let mut rows = Vec::new();
    for &churn in &[0.0f64, 0.1, 0.3, 0.5] {
        for &drop in &[0.0f64, 0.05, 0.15] {
            let mut fault = FaultPlan::none().with_latency(LatencyDist::Straggler {
                base: 1,
                tail: 20,
                tail_prob: 0.1,
            });
            if churn > 0.0 {
                fault = fault.with_churn(ChurnConfig::new(churn).with_downtime(40, 160));
            }
            if drop > 0.0 {
                fault = fault.with_link_drop(drop);
            }
            let config = experiment(DataPreset::FashionMnistLike)
                .with_protocol(ProtocolKind::Samo)
                .with_topology_mode(TopologyMode::Static)
                .with_view_size(5)
                .with_fault_plan(fault)
                .with_seed(42);
            let result = run_experiment(&config).expect("fault sweep experiment");
            let loss = if result.messages_sent == 0 {
                0.0
            } else {
                result.messages_dropped as f64 / result.messages_sent as f64
            };
            let best = result.best_point().expect("non-empty run");
            rows.push(vec![
                format!("{churn:.2}"),
                format!("{drop:.2}"),
                result.messages_sent.to_string(),
                result.messages_dropped.to_string(),
                f3(loss),
                f3(best.utility),
                f3(best.vulnerability),
            ]);
            eprintln!("[fault_sweep] finished churn={churn:.2} drop={drop:.2}");
        }
    }
    emit(
        "fig_fault_sweep",
        "Fault sweep: churn x link drop (SAMO, static 5-regular, straggler latency)",
        &[
            "churn",
            "drop prob",
            "sent",
            "dropped",
            "loss rate",
            "max test acc",
            "MIA vuln @ max",
        ],
        &rows,
    );
}

//! Figure 7 — vulnerability and generalization error over rounds.
//!
//! Purchase-100-like, SAMO, 2-regular: the per-round time series of mean
//! MIA vulnerability and mean generalization error. Expected shape:
//! generalization error peaks early then shrinks, while the MIA
//! vulnerability reached around that early peak *persists* — later
//! generalization improvements do not claw it back (the paper's early
//! overfitting / critical-learning-period finding).

use glmia_bench::output::{emit, f3, stat};
use glmia_bench::scale::experiment;
use glmia_core::run_experiment;
use glmia_data::DataPreset;
use glmia_gossip::TopologyMode;

fn main() {
    let config = experiment(DataPreset::Purchase100Like)
        .with_topology_mode(TopologyMode::Static)
        .with_view_size(2)
        .with_eval_every(2)
        .with_seed(46);
    let result = run_experiment(&config).expect("figure 7 experiment");
    let rows: Vec<Vec<String>> = result
        .rounds
        .iter()
        .map(|r| {
            vec![
                r.round.to_string(),
                stat(r.mia_vulnerability),
                stat(r.gen_error),
                stat(r.test_accuracy),
                stat(r.train_accuracy),
            ]
        })
        .collect();
    emit(
        "fig7_rounds",
        "Figure 7: MIA vulnerability & generalization error over rounds (Purchase-100-like, SAMO, 2-regular)",
        &["round", "MIA vuln", "gen error", "test acc", "train acc"],
        &rows,
    );
    // Quantify the persistence claim: vulnerability after the gen-error
    // peak stays within a small band of its own peak.
    let peak_ge_round = result
        .rounds
        .iter()
        .max_by(|a, b| a.gen_error.mean.total_cmp(&b.gen_error.mean))
        .expect("non-empty");
    let peak_vuln = result
        .rounds
        .iter()
        .map(|r| r.mia_vulnerability.mean)
        .fold(f64::NEG_INFINITY, f64::max);
    let final_vuln = result.final_round().mia_vulnerability.mean;
    emit(
        "fig7_persistence",
        "Figure 7 persistence summary",
        &[
            "gen-error peak round",
            "peak MIA vuln",
            "final MIA vuln",
            "retained fraction",
        ],
        &[vec![
            peak_ge_round.round.to_string(),
            f3(peak_vuln),
            f3(final_vuln),
            f3(final_vuln / peak_vuln),
        ]],
    );
}

//! Criterion micro-benchmarks of the workspace's hot kernels: dense
//! matmul, MPE scoring, k-regular generation, PeerSwap, mixing matvec and
//! the Jacobi λ₂ path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use glmia_graph::Topology;
use glmia_mia::AttackKind;
use glmia_nn::{Activation, Matrix, Mlp, MlpSpec, Sgd};
use glmia_spectral::MixingMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = Matrix::from_vec(
        64,
        64,
        (0..64 * 64).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
    .unwrap();
    let b = Matrix::from_vec(
        64,
        64,
        (0..64 * 64).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
    .unwrap();
    c.bench_function("matmul_64x64", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul(&b).unwrap()))
    });
}

fn bench_train_batch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let spec = MlpSpec::new(48, &[64, 32], 10, Activation::Relu).unwrap();
    let model = Mlp::new(&spec, &mut rng);
    let x = Matrix::from_vec(
        16,
        48,
        (0..16 * 48).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
    .unwrap();
    let y: Vec<usize> = (0..16).map(|i| i % 10).collect();
    c.bench_function("train_batch_16x48_mlp", |bench| {
        bench.iter_batched(
            || (model.clone(), Sgd::new(0.01)),
            |(mut m, mut opt)| {
                std::hint::black_box(m.train_batch(&x, &y, &mut opt));
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_mpe(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut probs = vec![0.0f32; 100];
    for p in &mut probs {
        *p = rng.gen_range(0.0..1.0);
    }
    let total: f32 = probs.iter().sum();
    for p in &mut probs {
        *p /= total;
    }
    c.bench_function("mpe_100_classes", |bench| {
        bench.iter(|| std::hint::black_box(AttackKind::Mpe.score(&probs, 42)))
    });
}

fn bench_graph(c: &mut Criterion) {
    c.bench_function("random_regular_150_k5", |bench| {
        let mut rng = StdRng::seed_from_u64(3);
        bench.iter(|| std::hint::black_box(Topology::random_regular(150, 5, &mut rng).unwrap()))
    });
    c.bench_function("peerswap_150_k5", |bench| {
        let mut rng = StdRng::seed_from_u64(4);
        let topo = Topology::random_regular(150, 5, &mut rng).unwrap();
        bench.iter_batched(
            || topo.clone(),
            |mut g| {
                let i = rng.gen_range(0..g.len());
                std::hint::black_box(g.swap_with_random_neighbor(i, &mut rng));
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_spectral(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let topo = Topology::random_regular(150, 5, &mut rng).unwrap();
    let w = MixingMatrix::from_regular(&topo).unwrap();
    let v: Vec<f64> = (0..150).map(|_| rng.gen_range(-1.0..1.0)).collect();
    c.bench_function("mixing_matvec_150", |bench| {
        bench.iter(|| std::hint::black_box(w.apply(&v)))
    });
    let small_topo = Topology::random_regular(40, 5, &mut rng).unwrap();
    let small = MixingMatrix::from_regular(&small_topo).unwrap();
    c.bench_function("jacobi_lambda2_40", |bench| {
        bench.iter(|| std::hint::black_box(small.lambda2()))
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_train_batch,
    bench_mpe,
    bench_graph,
    bench_spectral
);
criterion_main!(benches);

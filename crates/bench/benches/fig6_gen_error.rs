//! Figure 6 — MIA vulnerability vs generalization error.
//!
//! The same Base-vs-SAMO runs as Figure 2 but plotted against the mean
//! generalization error (Eq. 7) instead of test accuracy. Expected shape:
//! vulnerability broadly grows with generalization error, but the relation
//! is not one-to-one — the same generalization error can carry different
//! vulnerabilities depending on protocol and round (the paper's RQ5 point
//! that generalization error alone does not determine privacy risk).

use glmia_bench::output::{emit, stat};
use glmia_bench::scale::experiment;
use glmia_core::run_experiment;
use glmia_data::DataPreset;
use glmia_gossip::{ProtocolKind, TopologyMode};

fn main() {
    let mut rows = Vec::new();
    for preset in DataPreset::ALL {
        for protocol in [ProtocolKind::BaseGossip, ProtocolKind::Samo] {
            let config = experiment(preset)
                .with_protocol(protocol)
                .with_topology_mode(TopologyMode::Static)
                .with_view_size(5)
                .with_seed(42); // same seed as fig2: these are the same runs
            let result = run_experiment(&config).expect("figure 6 experiment");
            for r in &result.rounds {
                rows.push(vec![
                    preset.to_string(),
                    protocol.to_string(),
                    r.round.to_string(),
                    stat(r.gen_error),
                    stat(r.mia_vulnerability),
                ]);
            }
            eprintln!("[fig6] finished {}", config.label());
        }
    }
    emit(
        "fig6_gen_error",
        "Figure 6: MIA vulnerability vs generalization error (Base vs SAMO)",
        &["dataset", "protocol", "round", "gen error", "MIA vuln"],
        &rows,
    );
}

//! Attack-replay throughput: the same 32-node × 10-round experiment at 1,
//! 2 and all-core thread budgets.
//!
//! The omniscient attacker's replay (model reconstruction + MPE scoring for
//! every node at every round) is the pipeline's hot path; this bench tracks
//! how well the parallel evaluation layer converts cores into wall-clock.
//! Besides the criterion measurements it emits a machine-readable speedup
//! record to `target/bench-results/BENCH_eval.json` so future changes can
//! track the perf trajectory. Determinism is asserted on the way: every
//! thread count must produce the identical `ExperimentResult`.

// Benchmarks measure wall time by definition; `Instant::now` is otherwise
// disallowed workspace-wide via clippy.toml.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use glmia_bench::output::{emit_json, emit_trace};
use glmia_core::{run_experiment, run_experiment_traced, ExperimentConfig, Parallelism};
use glmia_data::DataPreset;

/// An evaluation-heavy workload: every round is attacked, and the per-node
/// pools are large relative to the single local epoch, so attack replay —
/// not simulation — dominates wall-clock.
fn eval_config() -> ExperimentConfig {
    ExperimentConfig::bench_scale(DataPreset::Cifar10Like)
        .with_nodes(32)
        .with_rounds(10)
        .with_eval_every(1)
        .with_local_epochs(1)
        .with_train_per_node(64)
        .with_test_per_node(64)
        .with_seed(7)
}

/// The thread budgets to compare: serial, 2, and all cores (deduplicated
/// on machines with ≤ 2 cores).
fn thread_settings() -> Vec<usize> {
    let mut settings = vec![1, 2, Parallelism::Auto.threads()];
    settings.sort_unstable();
    settings.dedup();
    settings
}

fn bench_eval_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_throughput");
    group.sample_size(10);
    for threads in thread_settings() {
        let config = eval_config().with_parallelism(Parallelism::Fixed(threads));
        group.bench_function(format!("nodes32_rounds10_t{threads}"), |b| {
            b.iter(|| std::hint::black_box(run_experiment(&config).expect("bench experiment")))
        });
    }
    group.finish();
    emit_speedup_record();
}

/// Times each thread budget directly (median of three runs), asserts the
/// results are identical, and writes the `BENCH_eval.json` trajectory
/// record.
fn emit_speedup_record() {
    let settings = thread_settings();
    let mut medians = Vec::with_capacity(settings.len());
    let mut baseline_result = None;
    for &threads in &settings {
        let config = eval_config().with_parallelism(Parallelism::Fixed(threads));
        let mut times = Vec::with_capacity(3);
        for _ in 0..3 {
            let start = Instant::now();
            let result = run_experiment(&config).expect("bench experiment");
            times.push(start.elapsed().as_secs_f64());
            match &baseline_result {
                None => baseline_result = Some(result),
                Some(base) => assert_eq!(
                    *base, result,
                    "thread count {threads} broke the determinism contract"
                ),
            }
        }
        times.sort_by(f64::total_cmp);
        medians.push(times[1]);
    }
    // The traced entry point must change neither the numbers nor (by more
    // than noise) the wall-clock; record its overhead alongside the
    // speedups and keep one trace as a bench artifact.
    let all_cores = *settings.last().expect("at least one thread setting");
    let traced_config = eval_config().with_parallelism(Parallelism::Fixed(all_cores));
    let mut traced_times = Vec::with_capacity(3);
    let mut last_trace = None;
    for _ in 0..3 {
        let start = Instant::now();
        let (result, trace) = run_experiment_traced(&traced_config).expect("bench experiment");
        traced_times.push(start.elapsed().as_secs_f64());
        assert_eq!(
            baseline_result.as_ref(),
            Some(&result),
            "tracing changed the experiment result"
        );
        last_trace = Some(trace);
    }
    traced_times.sort_by(f64::total_cmp);
    let traced_median = traced_times[1];
    let untraced_median = *medians.last().expect("medians parallel to settings");
    emit_trace("BENCH_eval_trace", &last_trace.expect("three traced runs"));

    let serial = medians[0];
    let per_thread: Vec<serde_json::Value> = settings
        .iter()
        .zip(&medians)
        .map(|(&threads, &secs)| {
            serde_json::json!({
                "threads": threads,
                "median_secs": secs,
                "speedup_vs_serial": serial / secs,
            })
        })
        .collect();
    emit_json(
        "BENCH_eval",
        &serde_json::json!({
            "bench": "eval_throughput",
            "workload": {"nodes": 32, "rounds": 10, "eval_every": 1},
            "available_cores": Parallelism::Auto.threads(),
            "results_identical_across_thread_counts": true,
            "measurements": per_thread,
            "trace": {
                "threads": all_cores,
                "median_secs": traced_median,
                "overhead_vs_untraced": traced_median / untraced_median - 1.0,
            },
        }),
    );
}

criterion_group!(benches, bench_eval_throughput);
criterion_main!(benches);

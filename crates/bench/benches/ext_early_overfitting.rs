//! Extension — mitigating early overfitting (the paper's §5
//! recommendation).
//!
//! Figure 7 shows that vulnerability acquired during the early
//! generalization-error peak persists. The paper recommends damping the
//! early phase (warmup / dynamic learning rates). This bench compares a
//! constant learning rate against warmup, step decay and cosine schedules
//! on the Figure 7 workload. Expected shape: schedules that shrink early
//! steps lower the generalization-error peak and with it the persistent
//! vulnerability, at modest accuracy cost.

use glmia_bench::output::{emit, f3, stat};
use glmia_bench::scale::experiment;
use glmia_core::run_experiment;
use glmia_data::DataPreset;
use glmia_gossip::{LrSchedule, TopologyMode};

fn main() {
    let schedules: Vec<(String, LrSchedule)> = vec![
        ("constant (paper)".into(), LrSchedule::Constant),
        (
            "warmup 25% of run".into(),
            LrSchedule::Warmup {
                rounds: 10,
                start_factor: 0.1,
            },
        ),
        (
            "step decay ×0.5/10r".into(),
            LrSchedule::StepDecay {
                every_rounds: 10,
                factor: 0.5,
            },
        ),
        (
            "cosine to 0.1".into(),
            LrSchedule::Cosine { min_factor: 0.1 },
        ),
    ];
    let mut rows = Vec::new();
    let mut variants: Vec<(String, LrSchedule, f32)> = schedules
        .into_iter()
        .map(|(label, s)| (label, s, 0.0))
        .collect();
    variants.push(("dropout 0.25".into(), LrSchedule::Constant, 0.25));
    for (label, schedule, dropout) in variants {
        let mut config = experiment(DataPreset::Purchase100Like)
            .with_topology_mode(TopologyMode::Static)
            .with_view_size(2)
            .with_eval_every(2)
            .with_lr_schedule(schedule)
            .with_seed(56);
        if dropout > 0.0 {
            config = config.with_dropout(dropout);
        }
        let result = run_experiment(&config).expect("early-overfitting experiment");
        let peak_ge = result
            .rounds
            .iter()
            .map(|r| r.gen_error.mean)
            .fold(f64::NEG_INFINITY, f64::max);
        let peak_vuln = result
            .rounds
            .iter()
            .map(|r| r.mia_vulnerability.mean)
            .fold(f64::NEG_INFINITY, f64::max);
        let last = result.final_round();
        rows.push(vec![
            label.clone(),
            f3(peak_ge),
            f3(peak_vuln),
            stat(last.mia_vulnerability),
            stat(last.test_accuracy),
        ]);
        eprintln!("[ext_early_overfitting] finished {label}");
    }
    emit(
        "ext_early_overfitting",
        "Extension: LR schedules vs early overfitting (Purchase-100-like, SAMO, 2-regular)",
        &[
            "schedule",
            "peak gen err",
            "peak MIA vuln",
            "final MIA vuln",
            "final test acc",
        ],
        &rows,
    );
}

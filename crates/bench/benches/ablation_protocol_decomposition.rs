//! Ablation — decomposing SAMO's two mechanisms.
//!
//! SAMO changes two things relative to Base Gossip at once: *merge-once*
//! (buffer received models, aggregate at wake-up) and *send-all*
//! (disseminate to every neighbor). This ablation runs the 2×2 grid of
//! {merge-each, merge-once} × {send-one, send-all} to attribute the
//! privacy/utility shift to each mechanism. Expected shape: both
//! mechanisms improve mixing; merge-once hides the node's own update among
//! more models, send-all accelerates dissemination — SAMO (both) is the
//! best corner, Base Gossip (neither) the worst.

use glmia_bench::output::{emit, stat};
use glmia_bench::scale::experiment;
use glmia_core::run_experiment;
use glmia_data::DataPreset;
use glmia_gossip::ProtocolKind;

fn main() {
    let mut rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        let config = experiment(DataPreset::Cifar10Like)
            .with_view_size(5)
            .with_protocol(protocol)
            .with_seed(52);
        let result = run_experiment(&config).expect("protocol decomposition experiment");
        let last = result.final_round();
        rows.push(vec![
            protocol.to_string(),
            if protocol.merges_once() {
                "once"
            } else {
                "each"
            }
            .to_string(),
            if protocol.sends_all() { "all" } else { "one" }.to_string(),
            stat(last.test_accuracy),
            stat(last.mia_vulnerability),
            result.messages_sent.to_string(),
        ]);
        eprintln!("[ablation_protocol_decomposition] finished {protocol}");
    }
    emit(
        "ablation_protocol_decomposition",
        "Ablation: SAMO mechanism decomposition (CIFAR-10-like, static 5-regular, final round)",
        &[
            "protocol",
            "merge",
            "send",
            "test acc",
            "MIA vuln",
            "models sent",
        ],
        &rows,
    );
}

//! Figure 2 — SAMO vs Base Gossip privacy/utility tradeoff.
//!
//! For each dataset, runs both protocols on a static 5-regular graph and
//! prints the per-evaluated-round (test accuracy, MIA vulnerability) series
//! — the points of the paper's Figure 2 — plus each curve's
//! maximum-accuracy summary. Expected shape: for a given accuracy, SAMO
//! sits at or below Base Gossip's vulnerability, especially near maximum
//! accuracy.

use glmia_bench::output::{emit, f3, stat};
use glmia_bench::scale::experiment;
use glmia_core::run_experiment;
use glmia_data::DataPreset;
use glmia_gossip::{ProtocolKind, TopologyMode};

fn main() {
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for preset in DataPreset::ALL {
        for protocol in [ProtocolKind::BaseGossip, ProtocolKind::Samo] {
            let config = experiment(preset)
                .with_protocol(protocol)
                .with_topology_mode(TopologyMode::Static)
                .with_view_size(5)
                .with_seed(42);
            let result = run_experiment(&config).expect("figure 2 experiment");
            for r in &result.rounds {
                rows.push(vec![
                    preset.to_string(),
                    protocol.to_string(),
                    r.round.to_string(),
                    stat(r.test_accuracy),
                    stat(r.mia_vulnerability),
                ]);
            }
            let best = result.best_point().expect("non-empty run");
            summary.push(vec![
                preset.to_string(),
                protocol.to_string(),
                f3(best.utility),
                f3(best.vulnerability),
            ]);
            eprintln!("[fig2] finished {}", config.label());
        }
    }
    emit(
        "fig2_samo_vs_base",
        "Figure 2: MIA vulnerability vs test accuracy (static 5-regular)",
        &["dataset", "protocol", "round", "test acc", "MIA vuln"],
        &rows,
    );
    emit(
        "fig2_summary",
        "Figure 2 summary: vulnerability at maximum accuracy",
        &["dataset", "protocol", "max test acc", "MIA vuln @ max"],
        &summary,
    );
}

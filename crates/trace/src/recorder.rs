//! A [`SimObserver`] that folds engine events into per-round counters.

use glmia_gossip::{DeliverEvent, MergeEvent, RoundSnapshot, SendEvent, SimObserver, UpdateEvent};

/// Simulation counters accumulated over one communication round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundCounters {
    /// 1-based round index (stamped from the round snapshot).
    pub round: usize,
    /// Simulation tick at the round boundary.
    pub tick: u64,
    /// Transmissions attempted (dropped ones included).
    pub sends: u64,
    /// Transmissions lost to failure injection.
    pub drops: u64,
    /// Models that arrived at a destination.
    pub delivers: u64,
    /// Merge operations performed.
    pub merges: u64,
    /// Received models folded into a local model across all merges.
    pub models_merged: u64,
    /// Local SGD epochs run across all nodes.
    pub update_epochs: u64,
}

/// Counts engine events per round; the finished rounds are read back after
/// the run via [`rounds`](TraceRecorder::rounds).
///
/// The recorder only *observes* snapshots
/// ([`on_snapshot`](SimObserver::on_snapshot)), never consumes them, so it
/// composes with any round-end sink via `glmia_gossip::Observers` — e.g.
/// the attack surface accumulation in the core runner.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    finished: Vec<RoundCounters>,
    current: RoundCounters,
}

impl TraceRecorder {
    /// A fresh recorder with no rounds recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters for every completed round, in round order.
    pub fn rounds(&self) -> &[RoundCounters] {
        &self.finished
    }

    /// Consumes the recorder, returning the completed rounds.
    pub fn into_rounds(self) -> Vec<RoundCounters> {
        self.finished
    }
}

impl SimObserver for TraceRecorder {
    fn on_send(&mut self, event: SendEvent) {
        self.current.sends += 1;
        self.current.drops += u64::from(event.dropped);
    }

    fn on_deliver(&mut self, _event: DeliverEvent) {
        self.current.delivers += 1;
    }

    fn on_merge(&mut self, event: MergeEvent) {
        self.current.merges += 1;
        self.current.models_merged += event.models_merged as u64;
    }

    fn on_local_update(&mut self, event: UpdateEvent) {
        self.current.update_epochs += event.epochs;
    }

    fn on_snapshot(&mut self, snapshot: &RoundSnapshot) {
        self.current.round = snapshot.round;
        self.current.tick = snapshot.tick;
        self.finished.push(self.current);
        self.current = RoundCounters::default();
    }
}

/// Lets a borrowed recorder ride along in an observer chain while the
/// caller keeps ownership for post-run readout.
impl SimObserver for &mut TraceRecorder {
    fn on_round_start(&mut self, round: usize, tick: u64) {
        (**self).on_round_start(round, tick);
    }

    fn on_send(&mut self, event: SendEvent) {
        (**self).on_send(event);
    }

    fn on_deliver(&mut self, event: DeliverEvent) {
        (**self).on_deliver(event);
    }

    fn on_merge(&mut self, event: MergeEvent) {
        (**self).on_merge(event);
    }

    fn on_local_update(&mut self, event: UpdateEvent) {
        (**self).on_local_update(event);
    }

    fn on_snapshot(&mut self, snapshot: &RoundSnapshot) {
        (**self).on_snapshot(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(round: usize, tick: u64) -> RoundSnapshot {
        RoundSnapshot {
            round,
            tick,
            models: Vec::new(),
            shared_models: Vec::new(),
        }
    }

    #[test]
    fn counters_reset_at_round_boundaries() {
        let mut rec = TraceRecorder::new();
        rec.on_send(SendEvent {
            tick: 10,
            from: 0,
            to: 1,
            dropped: false,
        });
        rec.on_send(SendEvent {
            tick: 20,
            from: 1,
            to: 0,
            dropped: true,
        });
        rec.on_deliver(DeliverEvent {
            tick: 15,
            to: 1,
            buffered: true,
        });
        rec.on_merge(MergeEvent {
            tick: 90,
            node: 1,
            models_merged: 3,
        });
        rec.on_local_update(UpdateEvent {
            tick: 90,
            node: 1,
            epochs: 2,
        });
        rec.on_snapshot(&snapshot(1, 100));
        rec.on_local_update(UpdateEvent {
            tick: 150,
            node: 0,
            epochs: 5,
        });
        rec.on_snapshot(&snapshot(2, 200));

        let rounds = rec.rounds();
        assert_eq!(rounds.len(), 2);
        assert_eq!(
            rounds[0],
            RoundCounters {
                round: 1,
                tick: 100,
                sends: 2,
                drops: 1,
                delivers: 1,
                merges: 1,
                models_merged: 3,
                update_epochs: 2,
            }
        );
        assert_eq!(
            rounds[1],
            RoundCounters {
                round: 2,
                tick: 200,
                sends: 0,
                drops: 0,
                delivers: 0,
                merges: 0,
                models_merged: 0,
                update_epochs: 5,
            }
        );
    }

    #[test]
    fn borrowed_recorder_is_an_observer() {
        // Drive through a generic bound so the `&mut TraceRecorder` impl
        // (not auto-deref onto the owned impl) is what's exercised.
        fn drive<O: SimObserver>(mut observer: O, snapshot: &glmia_gossip::RoundSnapshot) {
            observer.on_send(SendEvent {
                tick: 1,
                from: 0,
                to: 1,
                dropped: false,
            });
            observer.on_snapshot(snapshot);
        }
        let mut rec = TraceRecorder::new();
        drive(&mut rec, &snapshot(1, 100));
        assert_eq!(rec.rounds().len(), 1);
        assert_eq!(rec.rounds()[0].sends, 1);
    }
}

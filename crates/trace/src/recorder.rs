//! A [`SimObserver`] that folds engine events into per-round counters.

use glmia_gossip::{
    DeliverEvent, FaultEvent, FaultKind, MergeEvent, RoundSnapshot, SendEvent, SimObserver,
    UpdateEvent,
};

use crate::events::{FaultRecord, FaultRecordKind, HIST_BUCKETS, STALENESS_EDGES};

/// Simulation counters accumulated over one communication round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundCounters {
    /// 1-based round index (stamped from the round snapshot).
    pub round: usize,
    /// Simulation tick at the round boundary.
    pub tick: u64,
    /// Transmissions attempted (dropped ones included).
    pub sends: u64,
    /// Transmissions lost to failure injection.
    pub drops: u64,
    /// Models that arrived at a destination.
    pub delivers: u64,
    /// Merge operations performed.
    pub merges: u64,
    /// Received models folded into a local model across all merges.
    pub models_merged: u64,
    /// Local SGD epochs run across all nodes.
    pub update_epochs: u64,
    /// Merge fan-in histogram: buckets for 1..=8 merged models, ninth
    /// bucket is 9-or-more.
    pub fanin_hist: [u64; HIST_BUCKETS],
    /// Model staleness (merge tick − deliver tick) histogram over
    /// [`STALENESS_EDGES`]; ninth bucket is the overflow.
    pub staleness_hist: [u64; HIST_BUCKETS],
    /// Sum of stalenesses in ticks.
    pub staleness_sum: u64,
}

fn staleness_bucket(staleness: u64) -> usize {
    STALENESS_EDGES
        .iter()
        .position(|&edge| staleness <= edge)
        .unwrap_or(HIST_BUCKETS - 1)
}

/// Counts engine events per round; the finished rounds are read back after
/// the run via [`rounds`](TraceRecorder::rounds).
///
/// The recorder only *observes* snapshots
/// ([`on_snapshot`](SimObserver::on_snapshot)), never consumes them, so it
/// composes with any round-end sink via `glmia_gossip::Observers` — e.g.
/// the attack surface accumulation in the core runner.
///
/// Besides scalar counters, the recorder derives two fixed-bucket
/// histograms per round: merge **fan-in** (models folded per merge) and
/// model **staleness** (ticks between a model's delivery and the merge
/// that consumed it — zero for pairwise merges, up to a full wake period
/// for buffered ones).
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    finished: Vec<RoundCounters>,
    current: RoundCounters,
    /// Delivery ticks awaiting their merge, per node, FIFO.
    pending_ticks: Vec<std::collections::VecDeque<u64>>,
    /// Fault transitions stamped with their round; stays empty for
    /// fault-free runs, keeping their serialized trace byte-identical.
    finished_faults: Vec<FaultRecord>,
    /// Fault transitions of the in-progress round, awaiting their round
    /// stamp at the next snapshot.
    current_faults: Vec<FaultRecord>,
}

impl TraceRecorder {
    /// A fresh recorder with no rounds recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters for every completed round, in round order.
    pub fn rounds(&self) -> &[RoundCounters] {
        &self.finished
    }

    /// Consumes the recorder, returning the completed rounds.
    pub fn into_rounds(self) -> Vec<RoundCounters> {
        self.finished
    }

    /// Fault transitions (crash / recover / offline delivery drop) of every
    /// completed round, in event order. Empty for fault-free runs.
    ///
    /// The `seed` field is a placeholder zero; the trace assembly
    /// ([`RunTrace::add_seed_run_full`](crate::RunTrace::add_seed_run_full))
    /// restamps it, exactly as it does for round counters.
    pub fn fault_records(&self) -> &[FaultRecord] {
        &self.finished_faults
    }

    fn pending_for(&mut self, node: usize) -> &mut std::collections::VecDeque<u64> {
        if node >= self.pending_ticks.len() {
            self.pending_ticks
                .resize_with(node + 1, std::collections::VecDeque::new);
        }
        &mut self.pending_ticks[node]
    }
}

impl SimObserver for TraceRecorder {
    fn on_send(&mut self, event: SendEvent) {
        self.current.sends += 1;
        self.current.drops += u64::from(event.dropped);
    }

    fn on_deliver(&mut self, event: DeliverEvent) {
        self.current.delivers += 1;
        // Both buffered and pairwise deliveries enqueue their tick; the
        // pairwise merge follows immediately, yielding staleness zero.
        self.pending_for(event.to).push_back(event.tick);
    }

    fn on_merge(&mut self, event: MergeEvent) {
        self.current.merges += 1;
        self.current.models_merged += event.models_merged as u64;
        let fanin_bucket = event.models_merged.clamp(1, HIST_BUCKETS) - 1;
        self.current.fanin_hist[fanin_bucket] += 1;
        let queue = self.pending_for(event.node);
        let mut stalenesses = [0u64; HIST_BUCKETS];
        let mut staleness_total = 0u64;
        for _ in 0..event.models_merged {
            let Some(delivered) = queue.pop_front() else {
                break;
            };
            let staleness = event.tick.saturating_sub(delivered);
            stalenesses[staleness_bucket(staleness)] += 1;
            staleness_total += staleness;
        }
        for (bucket, count) in self.current.staleness_hist.iter_mut().zip(stalenesses) {
            *bucket += count;
        }
        self.current.staleness_sum += staleness_total;
    }

    fn on_local_update(&mut self, event: UpdateEvent) {
        self.current.update_epochs += event.epochs;
    }

    fn on_fault(&mut self, event: FaultEvent) {
        let kind = match event.kind {
            FaultKind::Crash => FaultRecordKind::Crash,
            FaultKind::Recover => FaultRecordKind::Recover,
            FaultKind::DeliveryDropped => {
                // A model discarded at a downed receiver is a drop like any
                // other: fold it into the round counter so `drops` totals
                // keep matching the engine's `messages_dropped`.
                self.current.drops += 1;
                FaultRecordKind::Drop
            }
        };
        self.current_faults.push(FaultRecord {
            seed: 0,  // restamped by the trace assembly
            round: 0, // stamped at the round boundary below
            tick: event.tick,
            node: event.node,
            kind,
            peer: event.peer,
        });
    }

    fn on_snapshot(&mut self, snapshot: &RoundSnapshot) {
        self.current.round = snapshot.round;
        self.current.tick = snapshot.tick;
        self.finished.push(self.current);
        self.current = RoundCounters::default();
        for fault in &mut self.current_faults {
            fault.round = snapshot.round;
        }
        self.finished_faults.append(&mut self.current_faults);
        // `pending_ticks` survives: buffered models merge in a later round.
    }
}

/// Lets a borrowed recorder ride along in an observer chain while the
/// caller keeps ownership for post-run readout.
impl SimObserver for &mut TraceRecorder {
    fn on_round_start(&mut self, round: usize, tick: u64) {
        (**self).on_round_start(round, tick);
    }

    fn on_send(&mut self, event: SendEvent) {
        (**self).on_send(event);
    }

    fn on_deliver(&mut self, event: DeliverEvent) {
        (**self).on_deliver(event);
    }

    fn on_merge(&mut self, event: MergeEvent) {
        (**self).on_merge(event);
    }

    fn on_local_update(&mut self, event: UpdateEvent) {
        (**self).on_local_update(event);
    }

    fn on_fault(&mut self, event: FaultEvent) {
        (**self).on_fault(event);
    }

    fn on_snapshot(&mut self, snapshot: &RoundSnapshot) {
        (**self).on_snapshot(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(round: usize, tick: u64) -> RoundSnapshot {
        RoundSnapshot {
            round,
            tick,
            models: Vec::new(),
            shared_models: Vec::new(),
        }
    }

    #[test]
    fn counters_reset_at_round_boundaries() {
        let mut rec = TraceRecorder::new();
        rec.on_send(SendEvent {
            tick: 10,
            from: 0,
            to: 1,
            dropped: false,
        });
        rec.on_send(SendEvent {
            tick: 20,
            from: 1,
            to: 0,
            dropped: true,
        });
        rec.on_deliver(DeliverEvent {
            tick: 15,
            from: 0,
            to: 1,
            buffered: true,
        });
        rec.on_merge(MergeEvent {
            tick: 90,
            node: 1,
            models_merged: 3,
        });
        rec.on_local_update(UpdateEvent {
            tick: 90,
            node: 1,
            epochs: 2,
        });
        rec.on_snapshot(&snapshot(1, 100));
        rec.on_local_update(UpdateEvent {
            tick: 150,
            node: 0,
            epochs: 5,
        });
        rec.on_snapshot(&snapshot(2, 200));

        let rounds = rec.rounds();
        assert_eq!(rounds.len(), 2);
        assert_eq!(
            rounds[0],
            RoundCounters {
                round: 1,
                tick: 100,
                sends: 2,
                drops: 1,
                delivers: 1,
                merges: 1,
                models_merged: 3,
                update_epochs: 2,
                // One merge of 3 models → fan-in bucket "3".
                fanin_hist: [0, 0, 1, 0, 0, 0, 0, 0, 0],
                // One delivery tick was queued; staleness 90 − 15 = 75
                // lands in the ≤100 bucket.
                staleness_hist: [0, 0, 0, 0, 1, 0, 0, 0, 0],
                staleness_sum: 75,
            }
        );
        assert_eq!(
            rounds[1],
            RoundCounters {
                round: 2,
                tick: 200,
                update_epochs: 5,
                ..RoundCounters::default()
            }
        );
    }

    #[test]
    fn pairwise_merges_have_zero_staleness() {
        let mut rec = TraceRecorder::new();
        rec.on_deliver(DeliverEvent {
            tick: 40,
            from: 2,
            to: 0,
            buffered: false,
        });
        rec.on_merge(MergeEvent {
            tick: 40,
            node: 0,
            models_merged: 1,
        });
        rec.on_snapshot(&snapshot(1, 100));
        let round = rec.rounds()[0];
        assert_eq!(round.fanin_hist[0], 1);
        assert_eq!(round.staleness_hist[0], 1, "staleness 0 → first bucket");
        assert_eq!(round.staleness_sum, 0);
    }

    #[test]
    fn staleness_crosses_round_boundaries() {
        let mut rec = TraceRecorder::new();
        rec.on_deliver(DeliverEvent {
            tick: 95,
            from: 1,
            to: 0,
            buffered: true,
        });
        rec.on_snapshot(&snapshot(1, 100));
        rec.on_merge(MergeEvent {
            tick: 1000,
            node: 0,
            models_merged: 1,
        });
        rec.on_snapshot(&snapshot(2, 1100));
        let round2 = rec.rounds()[1];
        // Staleness 905 overflows every finite edge → last bucket.
        assert_eq!(round2.staleness_hist[HIST_BUCKETS - 1], 1);
        assert_eq!(round2.staleness_sum, 905);
    }

    #[test]
    fn large_fanin_lands_in_overflow_bucket() {
        let mut rec = TraceRecorder::new();
        for _ in 0..12 {
            rec.on_deliver(DeliverEvent {
                tick: 10,
                from: 1,
                to: 0,
                buffered: true,
            });
        }
        rec.on_merge(MergeEvent {
            tick: 20,
            node: 0,
            models_merged: 12,
        });
        rec.on_snapshot(&snapshot(1, 100));
        assert_eq!(rec.rounds()[0].fanin_hist[HIST_BUCKETS - 1], 1);
    }

    #[test]
    fn fault_events_are_stamped_with_their_round() {
        let mut rec = TraceRecorder::new();
        rec.on_fault(FaultEvent {
            tick: 37,
            node: 2,
            kind: FaultKind::Crash,
            peer: None,
        });
        rec.on_fault(FaultEvent {
            tick: 60,
            node: 2,
            kind: FaultKind::DeliveryDropped,
            peer: Some(4),
        });
        rec.on_snapshot(&snapshot(1, 100));
        rec.on_fault(FaultEvent {
            tick: 150,
            node: 2,
            kind: FaultKind::Recover,
            peer: None,
        });
        rec.on_snapshot(&snapshot(2, 200));

        let faults = rec.fault_records();
        assert_eq!(faults.len(), 3);
        assert_eq!(
            faults[0],
            FaultRecord {
                seed: 0,
                round: 1,
                tick: 37,
                node: 2,
                kind: FaultRecordKind::Crash,
                peer: None,
            }
        );
        assert_eq!(faults[1].kind, FaultRecordKind::Drop);
        assert_eq!(faults[1].peer, Some(4));
        assert_eq!(faults[2].round, 2);
        assert_eq!(faults[2].kind, FaultRecordKind::Recover);
        // The offline drop counts toward the round's drop counter.
        assert_eq!(rec.rounds()[0].drops, 1);
        assert_eq!(rec.rounds()[1].drops, 0);
    }

    #[test]
    fn fault_free_runs_record_no_fault_records() {
        let mut rec = TraceRecorder::new();
        rec.on_send(SendEvent {
            tick: 1,
            from: 0,
            to: 1,
            dropped: false,
        });
        rec.on_snapshot(&snapshot(1, 100));
        assert!(rec.fault_records().is_empty());
    }

    #[test]
    fn borrowed_recorder_is_an_observer() {
        // Drive through a generic bound so the `&mut TraceRecorder` impl
        // (not auto-deref onto the owned impl) is what's exercised.
        fn drive<O: SimObserver>(mut observer: O, snapshot: &glmia_gossip::RoundSnapshot) {
            observer.on_send(SendEvent {
                tick: 1,
                from: 0,
                to: 1,
                dropped: false,
            });
            observer.on_snapshot(snapshot);
        }
        let mut rec = TraceRecorder::new();
        drive(&mut rec, &snapshot(1, 100));
        assert_eq!(rec.rounds().len(), 1);
        assert_eq!(rec.rounds()[0].sends, 1);
    }
}

//! Observability for glmia experiment runs.
//!
//! This crate is the *trace layer* sitting between the gossip engine's
//! [`SimObserver`](glmia_gossip::SimObserver) callback surface and
//! on-disk run artifacts:
//!
//! * [`TraceRecorder`] — an observer that folds engine events (sends,
//!   deliveries, merges, local updates) into per-round counters and
//!   fan-in/staleness histograms;
//! * [`PhaseTimings`] — monotonic wall-clock accumulation per run phase
//!   (partition, topology, simulate, eval, aggregate);
//! * [`RunTrace`] — the assembled run record, writable as a
//!   schema-versioned JSONL event stream (`events.jsonl`) plus an
//!   end-of-run [`Manifest`] (`manifest.json`);
//! * [`TraceWriter`] — crash-safe persistence: the manifest is finalized
//!   (marked `"complete": false`) even when a run dies mid-phase;
//! * [`TraceReader`] — streaming replay of `events.jsonl` with
//!   schema-version checking and line-numbered errors;
//! * [`RunSummary`] — per-round aggregates derived from a replayed event
//!   stream (message counts, histograms with deterministic quantiles,
//!   MIA/accuracy time series, empirical λ₂);
//! * [`ProgressObserver`] — a stderr live dashboard for long interactive
//!   runs (rounds/s, events/s, ETA, RSS);
//! * [`TelemetryObserver`] — drains the telemetry metrics registry at
//!   round barriers into the deterministic `telemetry.jsonl` side-stream
//!   (schema [`TELEMETRY_SCHEMA_VERSION`]).
//!
//! # Determinism contract
//!
//! The event stream is a pure function of config and seeds: records carry
//! simulation ticks and counters, never wall-clock times, so same-seed
//! reruns emit **byte-identical** `events.jsonl` at any thread count.
//! Derived summaries are pure functions of the stream, so they inherit the
//! guarantee. Timings (which do vary) are confined to the manifest.
//!
//! # Examples
//!
//! ```
//! use glmia_trace::{EvalRecord, RoundCounters, RunTrace};
//!
//! let mut trace = RunTrace::new("demo", 0xfeed, 1);
//! let round = RoundCounters {
//!     round: 1,
//!     tick: 100,
//!     sends: 4,
//!     delivers: 4,
//!     ..RoundCounters::default()
//! };
//! let eval = EvalRecord {
//!     seed: 9,
//!     round: 1,
//!     test_accuracy: 0.5,
//!     train_accuracy: 0.6,
//!     mia_vulnerability: 0.55,
//!     mia_auc: 0.58,
//!     gen_error: 0.1,
//! };
//! trace.add_seed_run(9, &[round], &[eval]);
//!
//! let jsonl = trace.events_jsonl();
//! let mut lines = jsonl.lines();
//! assert!(lines.next().unwrap().contains("\"type\":\"Header\""));
//! assert!(lines.next().unwrap().contains("\"type\":\"Round\""));
//! assert!(lines.next().unwrap().contains("\"type\":\"Eval\""));
//! assert_eq!(trace.totals().messages_sent, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod derive;
mod events;
mod manifest;
mod phase;
mod progress;
mod reader;
mod recorder;
mod telemetry;
mod writer;

pub use checkpoint::{
    read_checkpoint, CellRecord, CellSummary, CheckpointEvent, CheckpointFile, CheckpointReadError,
    CheckpointWriter, SweepHeaderRecord,
};
pub use derive::{
    EvalSummary, FaultSummary, HistogramBucket, HistogramSummary, NodeSeries, PerfSummary,
    RoundSummary, RunSummary, ThreatSummary, TopologySummary,
};
pub use events::{
    EvalRecord, FaultRecord, FaultRecordKind, HeaderRecord, MixingRecord, NodeEvalRecord,
    RoundRecord, TelemetryEvent, TelemetryHeaderRecord, TelemetryRoundRecord,
    TelemetryTotalsRecord, ThreatRecord, TopologyRecord, TraceEvent, FAULT_SCHEMA_VERSION,
    HIST_BUCKETS, SCHEMA_VERSION, STALENESS_EDGES, SWEEP_SCHEMA_VERSION, TELEMETRY_SCHEMA_VERSION,
    THREAT_SCHEMA_VERSION,
};
pub use manifest::{fnv1a, git_describe, git_describe_in, Manifest, PhaseEntry, Totals};
pub use phase::{Phase, PhaseTimings};
pub use progress::ProgressObserver;
pub use reader::{read_trace, TraceReadError, TraceReader};
pub use recorder::{RoundCounters, TraceRecorder};
pub use telemetry::TelemetryObserver;
pub use writer::TraceWriter;
// Re-exported so summary/report consumers can name the profile types
// without depending on glmia-telemetry directly.
pub use glmia_telemetry::{AllocTotals, Profile, SpanNode};

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// The assembled trace of one experiment run (one or many seeds).
///
/// Build with [`RunTrace::new`], feed each seed's recorder output through
/// [`add_seed_run`](RunTrace::add_seed_run) or
/// [`add_seed_run_full`](RunTrace::add_seed_run_full) (ascending seed
/// order), accumulate timings via [`phases_mut`](RunTrace::phases_mut),
/// then serialize with [`events_jsonl`](RunTrace::events_jsonl) /
/// [`manifest_json`](RunTrace::manifest_json) or persist both with
/// [`write_to_dir`](RunTrace::write_to_dir).
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    label: String,
    config_hash: u64,
    threads: usize,
    seeds: Vec<u64>,
    events: Vec<TraceEvent>,
    phases: PhaseTimings,
    totals: Totals,
    wall_secs: f64,
    telemetry_rounds: Vec<TelemetryRoundRecord>,
    telemetry_totals: Option<TelemetryTotalsRecord>,
    profile: Option<Profile>,
}

impl RunTrace {
    /// An empty trace for an experiment identified by `label` and the
    /// FNV-1a `config_hash` of its canonical config JSON.
    pub fn new(label: impl Into<String>, config_hash: u64, threads: usize) -> Self {
        Self {
            label: label.into(),
            config_hash,
            threads,
            seeds: Vec::new(),
            events: Vec::new(),
            phases: PhaseTimings::new(),
            totals: Totals::default(),
            wall_secs: 0.0,
            telemetry_rounds: Vec::new(),
            telemetry_totals: None,
            profile: None,
        }
    }

    /// Experiment label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Config fingerprint as zero-padded hex.
    pub fn config_hash_hex(&self) -> String {
        format!("{:016x}", self.config_hash)
    }

    /// Seeds recorded so far, in insertion (ascending) order.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Data records (header excluded), round-major per seed.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Run-wide totals accumulated from every `add_seed_run`.
    pub fn totals(&self) -> Totals {
        self.totals
    }

    /// Phase timing accumulator.
    pub fn phases(&self) -> &PhaseTimings {
        &self.phases
    }

    /// Mutable phase timing accumulator (for `time`/`add`).
    pub fn phases_mut(&mut self) -> &mut PhaseTimings {
        &mut self.phases
    }

    /// Records the end-to-end wall-clock duration.
    pub fn set_wall_secs(&mut self, secs: f64) {
        self.wall_secs = secs;
    }

    /// End-to-end wall-clock seconds (0 until set).
    pub fn wall_secs(&self) -> f64 {
        self.wall_secs
    }

    /// Appends one seed's run: per-round counters interleaved round-major
    /// with its evaluations (the `Round` record precedes the `Eval` record
    /// of the same round). Eval records are restamped with `seed` so a
    /// mislabeled input cannot corrupt the stream.
    pub fn add_seed_run(&mut self, seed: u64, rounds: &[RoundCounters], evals: &[EvalRecord]) {
        self.add_seed_run_full(seed, None, None, rounds, &[], &[], &[], evals);
    }

    /// Appends one seed's run with the full record set: an optional
    /// topology record (emitted before the first round), an optional
    /// threat-model descriptor (emitted right after the topology),
    /// per-round fault transitions, mixing spectra and per-node evaluations
    /// interleaved round-major with the counters and fleet evaluations. All
    /// records are restamped with `seed`.
    ///
    /// A threat record upgrades the stream's declared schema to
    /// [`THREAT_SCHEMA_VERSION`]; a non-empty `faults` slice (without one)
    /// upgrades it to [`FAULT_SCHEMA_VERSION`]; runs with neither keep
    /// emitting [`SCHEMA_VERSION`] byte-identically.
    #[allow(clippy::too_many_arguments)]
    pub fn add_seed_run_full(
        &mut self,
        seed: u64,
        topology: Option<TopologyRecord>,
        threat: Option<ThreatRecord>,
        rounds: &[RoundCounters],
        faults: &[FaultRecord],
        mixing: &[MixingRecord],
        node_evals: &[NodeEvalRecord],
        evals: &[EvalRecord],
    ) {
        self.seeds.push(seed);
        if let Some(mut topo) = topology {
            topo.seed = seed;
            self.events.push(TraceEvent::Topology(topo));
        }
        if let Some(mut threat) = threat {
            threat.seed = seed;
            self.events.push(TraceEvent::Threat(threat));
        }
        let mut pending_faults = faults.iter().peekable();
        let mut pending_mixing = mixing.iter().peekable();
        let mut pending_nodes = node_evals.iter().peekable();
        let mut pending = evals.iter().peekable();
        for counters in rounds {
            self.events.push(TraceEvent::Round(RoundRecord {
                seed,
                round: counters.round,
                tick: counters.tick,
                sends: counters.sends,
                drops: counters.drops,
                delivers: counters.delivers,
                merges: counters.merges,
                models_merged: counters.models_merged,
                update_epochs: counters.update_epochs,
                fanin_hist: counters.fanin_hist,
                staleness_hist: counters.staleness_hist,
                staleness_sum: counters.staleness_sum,
            }));
            while pending_faults
                .peek()
                .is_some_and(|f| f.round <= counters.round)
            {
                let mut record = *pending_faults.next().expect("peeked");
                record.seed = seed;
                self.events.push(TraceEvent::Fault(record));
            }
            while pending_mixing
                .peek()
                .is_some_and(|m| m.round <= counters.round)
            {
                let mut record = *pending_mixing.next().expect("peeked");
                record.seed = seed;
                self.events.push(TraceEvent::Mixing(record));
            }
            while pending_nodes
                .peek()
                .is_some_and(|n| n.round <= counters.round)
            {
                let mut record = *pending_nodes.next().expect("peeked");
                record.seed = seed;
                self.events.push(TraceEvent::NodeEval(record));
            }
            while pending
                .peek()
                .is_some_and(|eval| eval.round <= counters.round)
            {
                let mut eval = *pending.next().expect("peeked");
                eval.seed = seed;
                self.events.push(TraceEvent::Eval(eval));
            }
            self.totals.messages_sent += counters.sends;
            self.totals.messages_dropped += counters.drops;
            self.totals.local_updates += counters.update_epochs;
        }
        // Records past the last counted round (defensive; normally empty).
        for record in pending_faults {
            let mut record = *record;
            record.seed = seed;
            self.events.push(TraceEvent::Fault(record));
        }
        for record in pending_mixing {
            let mut record = *record;
            record.seed = seed;
            self.events.push(TraceEvent::Mixing(record));
        }
        for record in pending_nodes {
            let mut record = *record;
            record.seed = seed;
            self.events.push(TraceEvent::NodeEval(record));
        }
        for eval in pending {
            let mut eval = *eval;
            eval.seed = seed;
            self.events.push(TraceEvent::Eval(eval));
        }
        self.totals.rounds += rounds.len() as u64;
        self.totals.evals += evals.len() as u64;
    }

    /// Appends one seed's per-round telemetry records (restamped with
    /// `seed`), in the same ascending-seed discipline as
    /// [`add_seed_run_full`](RunTrace::add_seed_run_full).
    pub fn add_seed_telemetry(&mut self, seed: u64, rounds: Vec<TelemetryRoundRecord>) {
        self.telemetry_rounds
            .extend(rounds.into_iter().map(|mut r| {
                r.seed = seed;
                r
            }));
    }

    /// Records the run-wide final counter totals for the telemetry
    /// side-stream's closing line.
    pub fn set_telemetry_totals(&mut self, counters: BTreeMap<String, u64>) {
        self.telemetry_totals = Some(TelemetryTotalsRecord { counters });
    }

    /// Attaches the end-of-run span/alloc profile (written as
    /// `profile.json`; wall-clock timings, so excluded from every
    /// byte-identity guarantee).
    pub fn set_profile(&mut self, profile: Profile) {
        self.profile = Some(profile);
    }

    /// The attached profile, if any.
    pub fn profile(&self) -> Option<&Profile> {
        self.profile.as_ref()
    }

    /// Whether this trace carries any telemetry payload.
    pub fn has_telemetry(&self) -> bool {
        !self.telemetry_rounds.is_empty() || self.telemetry_totals.is_some()
    }

    /// Folds `other` into `self`: events are appended in `other`'s order,
    /// totals, phase timings and telemetry payloads are summed. Callers
    /// merge in ascending seed order to keep the stream deterministic.
    pub fn merge(&mut self, other: RunTrace) {
        self.seeds.extend(other.seeds);
        self.events.extend(other.events);
        self.phases.merge(&other.phases);
        self.totals.rounds += other.totals.rounds;
        self.totals.evals += other.totals.evals;
        self.totals.messages_sent += other.totals.messages_sent;
        self.totals.messages_dropped += other.totals.messages_dropped;
        self.totals.local_updates += other.totals.local_updates;
        self.telemetry_rounds.extend(other.telemetry_rounds);
        if let Some(theirs) = other.telemetry_totals {
            let ours = self
                .telemetry_totals
                .get_or_insert_with(|| TelemetryTotalsRecord {
                    counters: BTreeMap::new(),
                });
            for (name, value) in theirs.counters {
                *ours.counters.entry(name).or_insert(0) += value;
            }
        }
        if self.profile.is_none() {
            self.profile = other.profile;
        }
    }

    /// The schema version this trace declares: [`THREAT_SCHEMA_VERSION`]
    /// when any threat record is present, [`FAULT_SCHEMA_VERSION`] when any
    /// fault record is (and no threat record), the baseline
    /// [`SCHEMA_VERSION`] otherwise — so threat-free, fault-free streams
    /// keep their exact historical bytes.
    pub fn schema(&self) -> u32 {
        if self
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Threat(_)))
        {
            THREAT_SCHEMA_VERSION
        } else if self
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Fault(_)))
        {
            FAULT_SCHEMA_VERSION
        } else {
            SCHEMA_VERSION
        }
    }

    fn header(&self) -> TraceEvent {
        TraceEvent::Header(HeaderRecord {
            schema: self.schema(),
            label: self.label.clone(),
            config_hash: self.config_hash_hex(),
        })
    }

    /// The full JSONL stream: header line, then every data record.
    /// Byte-identical across same-seed reruns (no timestamps inside).
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        let mut push = |event: &TraceEvent| {
            out.push_str(&serde_json::to_string(event).expect("trace record serialization"));
            out.push('\n');
        };
        push(&self.header());
        for event in &self.events {
            push(event);
        }
        out
    }

    /// The telemetry side-stream (`telemetry.jsonl`): header, per-round
    /// counter deltas, and the final totals line. `None` when the run
    /// carried no telemetry, so telemetry-off runs write no file at all.
    /// Byte-identical across same-seed reruns at any thread count — the
    /// per-round records drain only simulation-thread counters and the
    /// totals are commutative sums.
    pub fn telemetry_jsonl(&self) -> Option<String> {
        if !self.has_telemetry() {
            return None;
        }
        let mut out = String::new();
        let mut push = |event: &TelemetryEvent| {
            out.push_str(&serde_json::to_string(event).expect("telemetry record serialization"));
            out.push('\n');
        };
        push(&TelemetryEvent::TelemetryHeader(TelemetryHeaderRecord {
            schema: TELEMETRY_SCHEMA_VERSION,
            label: self.label.clone(),
            config_hash: self.config_hash_hex(),
        }));
        for record in &self.telemetry_rounds {
            push(&TelemetryEvent::TelemetryRound(*record));
        }
        if let Some(totals) = &self.telemetry_totals {
            push(&TelemetryEvent::TelemetryTotals(totals.clone()));
        }
        Some(out)
    }

    /// Pretty-printed `profile.json` contents (`None` when no profile is
    /// attached).
    pub fn profile_json(&self) -> Option<String> {
        self.profile.as_ref().map(|p| {
            let mut out = serde_json::to_string_pretty(p).expect("profile serialization");
            out.push('\n');
            out
        })
    }

    /// The end-of-run manifest (stamps the current git revision; marked
    /// complete — partial manifests come from [`TraceWriter`]).
    pub fn manifest(&self) -> Manifest {
        Manifest {
            schema: self.schema(),
            label: self.label.clone(),
            config_hash: self.config_hash_hex(),
            seeds: self.seeds.clone(),
            threads: self.threads,
            git: git_describe(),
            complete: true,
            wall_secs: self.wall_secs,
            phases: PhaseEntry::from_timings(&self.phases),
            totals: self.totals,
        }
    }

    /// Pretty-printed `manifest.json` contents.
    pub fn manifest_json(&self) -> String {
        let mut out =
            serde_json::to_string_pretty(&self.manifest()).expect("manifest serialization");
        out.push('\n');
        out
    }

    /// Writes `events.jsonl` and `manifest.json` under `dir` (created if
    /// missing), plus `telemetry.jsonl` and `profile.json` when the run
    /// carried telemetry. Telemetry-off runs emit exactly the historical
    /// two files.
    pub fn write_to_dir(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("events.jsonl"), self.events_jsonl())?;
        std::fs::write(dir.join("manifest.json"), self.manifest_json())?;
        if let Some(telemetry) = self.telemetry_jsonl() {
            std::fs::write(dir.join("telemetry.jsonl"), telemetry)?;
        }
        if let Some(profile) = self.profile_json() {
            std::fs::write(dir.join("profile.json"), profile)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(round: usize) -> RoundCounters {
        RoundCounters {
            round,
            tick: round as u64 * 100,
            sends: 10 + round as u64,
            drops: 1,
            delivers: 9 + round as u64,
            merges: 5,
            models_merged: 9 + round as u64,
            update_epochs: 12,
            ..RoundCounters::default()
        }
    }

    fn eval(round: usize) -> EvalRecord {
        EvalRecord {
            seed: 0,
            round,
            test_accuracy: 0.4,
            train_accuracy: 0.5,
            mia_vulnerability: 0.6,
            mia_auc: 0.62,
            gen_error: 0.1,
        }
    }

    fn kind(event: &TraceEvent) -> &'static str {
        match event {
            TraceEvent::Header(_) => "header",
            TraceEvent::Topology(_) => "topology",
            TraceEvent::Threat(_) => "threat",
            TraceEvent::Round(_) => "round",
            TraceEvent::Fault(_) => "fault",
            TraceEvent::Mixing(_) => "mixing",
            TraceEvent::NodeEval(_) => "nodeeval",
            TraceEvent::Eval(_) => "eval",
        }
    }

    fn fault(round: usize, tick: u64, kind: FaultRecordKind) -> FaultRecord {
        FaultRecord {
            seed: 0,
            round,
            tick,
            node: 1,
            kind,
            peer: None,
        }
    }

    #[test]
    fn events_are_round_major_with_eval_after_its_round() {
        let mut trace = RunTrace::new("t", 1, 1);
        trace.add_seed_run(42, &[counters(1), counters(2)], &[eval(2)]);
        let kinds: Vec<&str> = trace.events().iter().map(kind).collect();
        assert_eq!(kinds, ["round", "round", "eval"]);
        match &trace.events()[2] {
            TraceEvent::Eval(e) => {
                assert_eq!(e.round, 2);
                assert_eq!(e.seed, 42, "eval records are restamped with the seed");
            }
            other => panic!("expected eval, got {other:?}"),
        }
    }

    #[test]
    fn full_seed_run_interleaves_all_record_kinds() {
        let mut trace = RunTrace::new("t", 1, 1);
        let topo = TopologyRecord {
            seed: 0,
            nodes: 4,
            view_size: 2,
            lambda2_analytic: 0.5,
        };
        let mixing = [
            MixingRecord {
                seed: 0,
                round: 1,
                lambda2_round: 0.9,
                lambda2_cumulative: 0.9,
            },
            MixingRecord {
                seed: 0,
                round: 2,
                lambda2_round: 0.8,
                lambda2_cumulative: 0.72,
            },
        ];
        let node_evals = [NodeEvalRecord {
            seed: 0,
            round: 2,
            node: 0,
            test_accuracy: 0.5,
            train_accuracy: 0.6,
            mia_vulnerability: 0.55,
            mia_auc: 0.58,
            gen_error: 0.1,
        }];
        trace.add_seed_run_full(
            9,
            Some(topo),
            Some(ThreatRecord {
                seed: 0,
                attacker: "coalition:0..2".into(),
                defense: None,
                observed_nodes: 2,
                nodes: 4,
                observations: 2,
            }),
            &[counters(1), counters(2)],
            &[fault(2, 130, FaultRecordKind::Crash)],
            &mixing,
            &node_evals,
            &[eval(2)],
        );
        let kinds: Vec<&str> = trace.events().iter().map(kind).collect();
        assert_eq!(
            kinds,
            [
                "topology", "threat", "round", "mixing", "round", "fault", "mixing", "nodeeval",
                "eval"
            ]
        );
        match &trace.events()[0] {
            TraceEvent::Topology(t) => assert_eq!(t.seed, 9, "topology restamped with the seed"),
            other => panic!("expected topology, got {other:?}"),
        }
        match &trace.events()[1] {
            TraceEvent::Threat(t) => assert_eq!(t.seed, 9, "threat restamped with the seed"),
            other => panic!("expected threat, got {other:?}"),
        }
        match &trace.events()[5] {
            TraceEvent::Fault(f) => {
                assert_eq!(f.seed, 9, "fault records are restamped with the seed");
                assert_eq!(f.round, 2, "the fault follows its round record");
            }
            other => panic!("expected fault, got {other:?}"),
        }
        match &trace.events()[7] {
            TraceEvent::NodeEval(n) => assert_eq!(n.seed, 9),
            other => panic!("expected nodeeval, got {other:?}"),
        }
        assert_eq!(trace.schema(), THREAT_SCHEMA_VERSION);
    }

    #[test]
    fn fault_free_traces_keep_the_baseline_schema() {
        let mut trace = RunTrace::new("t", 1, 1);
        trace.add_seed_run(7, &[counters(1)], &[eval(1)]);
        assert_eq!(trace.schema(), SCHEMA_VERSION);
        assert!(trace.events_jsonl().contains("\"schema\":2"));
        assert_eq!(trace.manifest().schema, SCHEMA_VERSION);
    }

    #[test]
    fn fault_records_upgrade_the_declared_schema() {
        let mut trace = RunTrace::new("t", 1, 1);
        trace.add_seed_run_full(
            7,
            None,
            None,
            &[counters(1)],
            &[fault(1, 40, FaultRecordKind::Crash)],
            &[],
            &[],
            &[],
        );
        assert_eq!(trace.schema(), FAULT_SCHEMA_VERSION);
        let jsonl = trace.events_jsonl();
        assert!(jsonl.lines().next().unwrap().contains("\"schema\":3"));
        assert!(jsonl.contains("\"type\":\"Fault\""));
        assert_eq!(trace.manifest().schema, FAULT_SCHEMA_VERSION);
    }

    #[test]
    fn threat_records_take_schema_precedence_over_faults() {
        let threat = ThreatRecord {
            seed: 0,
            attacker: "neighbors:1".into(),
            defense: Some("clip:1".into()),
            observed_nodes: 2,
            nodes: 4,
            observations: 2,
        };
        let mut trace = RunTrace::new("t", 1, 1);
        trace.add_seed_run_full(
            7,
            None,
            Some(threat.clone()),
            &[counters(1)],
            &[fault(1, 40, FaultRecordKind::Crash)],
            &[],
            &[],
            &[],
        );
        assert_eq!(trace.schema(), THREAT_SCHEMA_VERSION);
        let jsonl = trace.events_jsonl();
        assert!(jsonl.lines().next().unwrap().contains("\"schema\":4"));
        assert!(jsonl.contains("\"type\":\"Threat\""));
        assert_eq!(trace.manifest().schema, THREAT_SCHEMA_VERSION);

        // A threat record alone also declares schema 4.
        let mut trace = RunTrace::new("t", 1, 1);
        trace.add_seed_run_full(7, None, Some(threat), &[counters(1)], &[], &[], &[], &[]);
        assert_eq!(trace.schema(), THREAT_SCHEMA_VERSION);
    }

    #[test]
    fn totals_accumulate_across_seeds() {
        let mut trace = RunTrace::new("t", 1, 2);
        trace.add_seed_run(1, &[counters(1)], &[eval(1)]);
        trace.add_seed_run(2, &[counters(1), counters(2)], &[eval(2)]);
        let totals = trace.totals();
        assert_eq!(totals.rounds, 3);
        assert_eq!(totals.evals, 2);
        assert_eq!(totals.messages_sent, 11 + 11 + 12);
        assert_eq!(totals.messages_dropped, 3);
        assert_eq!(totals.local_updates, 36);
        assert_eq!(trace.seeds(), &[1, 2]);
    }

    #[test]
    fn jsonl_is_reproducible_and_header_first() {
        let build = || {
            let mut trace = RunTrace::new("exp", 0xabcd, 4);
            trace.add_seed_run(7, &[counters(1)], &[eval(1)]);
            trace
        };
        let a = build().events_jsonl();
        let b = build().events_jsonl();
        assert_eq!(a, b, "same inputs must serialize byte-identically");
        let first = a.lines().next().unwrap();
        assert!(first.contains("\"type\":\"Header\""));
        assert!(first.contains("\"schema\":2"));
        assert!(first.contains("000000000000abcd"));
        assert_eq!(a.lines().count(), 3);
    }

    #[test]
    fn merge_concatenates_in_call_order() {
        let mut a = RunTrace::new("exp", 1, 1);
        a.add_seed_run(1, &[counters(1)], &[]);
        a.phases_mut().add(Phase::Simulate, 1.0);
        let mut b = RunTrace::new("exp", 1, 1);
        b.add_seed_run(2, &[counters(1)], &[eval(1)]);
        b.phases_mut().add(Phase::Simulate, 2.0);
        a.merge(b);
        assert_eq!(a.seeds(), &[1, 2]);
        assert_eq!(a.totals().rounds, 2);
        assert_eq!(a.totals().evals, 1);
        assert_eq!(a.phases().get(Phase::Simulate), 3.0);
    }

    #[test]
    fn write_to_dir_emits_both_files() {
        let dir = std::env::temp_dir().join(format!("glmia-trace-test-{}", std::process::id()));
        let mut trace = RunTrace::new("exp", 2, 1);
        trace.add_seed_run(3, &[counters(1)], &[eval(1)]);
        trace.write_to_dir(&dir).unwrap();
        let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert_eq!(events, trace.events_jsonl());
        assert!(manifest.contains("\"schema\""));
        assert!(manifest.contains("\"totals\""));
        assert!(manifest.contains("\"complete\": true"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

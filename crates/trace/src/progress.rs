//! A stderr heartbeat for long interactive runs.

use std::io::{IsTerminal, Write};

use glmia_telemetry::clock::{self, Tick};
use glmia_telemetry::{format_bytes, rss_bytes};

use glmia_gossip::{DeliverEvent, MergeEvent, RoundSnapshot, SendEvent, SimObserver, UpdateEvent};

/// Emits a single-line live dashboard to stderr at round boundaries:
/// `round/total`, rounds per second, engine events per second, an ETA,
/// and the process's resident set size.
///
/// The dashboard line is carriage-return rewritten in place, throttled to
/// at most ~10 updates per second, and **suppressed entirely** when stderr
/// is not a TTY (CI logs stay clean) or when the caller asks for quiet. It
/// writes nothing to stdout and nothing into the trace, so it cannot
/// perturb the determinism contract.
#[derive(Debug)]
pub struct ProgressObserver {
    total_rounds: usize,
    enabled: bool,
    started: Tick,
    last_emit: Option<Tick>,
    events: u64,
    dirty: bool,
}

impl ProgressObserver {
    /// A dashboard for a run of `total_rounds`, enabled only when stderr
    /// is a terminal.
    #[must_use]
    pub fn new(total_rounds: usize) -> Self {
        Self::with_enabled(total_rounds, std::io::stderr().is_terminal())
    }

    /// A dashboard with explicit enablement (`enabled = false` for
    /// `--quiet`); TTY suppression still applies on top.
    #[must_use]
    pub fn with_enabled(total_rounds: usize, enabled: bool) -> Self {
        Self {
            total_rounds,
            enabled: enabled && std::io::stderr().is_terminal(),
            started: clock::now(),
            last_emit: None,
            events: 0,
            dirty: false,
        }
    }

    /// Whether the dashboard will emit anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn emit(&mut self, round: usize) {
        let elapsed = self.started.elapsed_secs();
        let rps = if elapsed > 0.0 {
            round as f64 / elapsed
        } else {
            0.0
        };
        let eps = if elapsed > 0.0 {
            self.events as f64 / elapsed
        } else {
            0.0
        };
        let remaining = self.total_rounds.saturating_sub(round);
        let eta = if rps > 0.0 {
            remaining as f64 / rps
        } else {
            0.0
        };
        let rss = rss_bytes().map_or_else(|| "n/a".to_string(), format_bytes);
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\rround {round}/{} | {rps:.1} rounds/s | {eps:.0} events/s | ETA {eta:.0}s | RSS {rss}   ",
            self.total_rounds
        );
        let _ = err.flush();
        self.dirty = true;
    }

    fn finish_line(&mut self) {
        if self.dirty {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err);
            let _ = err.flush();
            self.dirty = false;
        }
    }
}

impl SimObserver for ProgressObserver {
    fn on_send(&mut self, _event: SendEvent) {
        self.events += u64::from(self.enabled);
    }

    fn on_deliver(&mut self, _event: DeliverEvent) {
        self.events += u64::from(self.enabled);
    }

    fn on_merge(&mut self, _event: MergeEvent) {
        self.events += u64::from(self.enabled);
    }

    fn on_local_update(&mut self, _event: UpdateEvent) {
        self.events += u64::from(self.enabled);
    }

    fn on_snapshot(&mut self, snapshot: &RoundSnapshot) {
        if !self.enabled {
            return;
        }
        let last = snapshot.round >= self.total_rounds;
        let due = self.last_emit.is_none_or(|at| at.elapsed_secs() >= 0.1);
        if due || last {
            self.emit(snapshot.round);
            self.last_emit = Some(clock::now());
        }
        if last {
            self.finish_line();
        }
    }
}

/// Lets a borrowed dashboard ride along in an observer chain.
impl SimObserver for &mut ProgressObserver {
    fn on_send(&mut self, event: SendEvent) {
        (**self).on_send(event);
    }

    fn on_deliver(&mut self, event: DeliverEvent) {
        (**self).on_deliver(event);
    }

    fn on_merge(&mut self, event: MergeEvent) {
        (**self).on_merge(event);
    }

    fn on_local_update(&mut self, event: UpdateEvent) {
        (**self).on_local_update(event);
    }

    fn on_snapshot(&mut self, snapshot: &RoundSnapshot) {
        (**self).on_snapshot(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_progress_emits_nothing_and_stays_cheap() {
        let mut progress = ProgressObserver::with_enabled(10, false);
        assert!(!progress.is_enabled());
        for round in 1..=10 {
            progress.on_snapshot(&RoundSnapshot {
                round,
                tick: round as u64 * 100,
                models: Vec::new(),
                shared_models: Vec::new(),
            });
        }
        assert!(!progress.dirty);
        assert_eq!(progress.events, 0, "disabled dashboard skips counting");
    }

    #[test]
    fn non_tty_stderr_suppresses_even_when_enabled() {
        // Test harness stderr is not a terminal, so enablement is masked.
        let progress = ProgressObserver::with_enabled(5, true);
        assert!(!progress.is_enabled());
    }
}

//! A stderr heartbeat for long interactive runs.

// The heartbeat's whole purpose is wall time (lint.toml `no-wall-clock`
// allowlist); the workspace otherwise disallows `Instant::now` via
// clippy.toml.
#![allow(clippy::disallowed_methods)]

use std::io::{IsTerminal, Write};
use std::time::{Duration, Instant};

use glmia_gossip::{RoundSnapshot, SimObserver};

/// Emits a single-line progress heartbeat to stderr at round boundaries:
/// `round/total`, rounds per second, and an ETA.
///
/// The heartbeat is carriage-return rewritten in place, throttled to at
/// most ~10 updates per second, and **suppressed entirely** when stderr is
/// not a TTY (CI logs stay clean) or when the caller asks for quiet. It
/// writes nothing to stdout and nothing into the trace, so it cannot
/// perturb the determinism contract.
#[derive(Debug)]
pub struct ProgressObserver {
    total_rounds: usize,
    enabled: bool,
    started: Instant,
    last_emit: Option<Instant>,
    dirty: bool,
}

impl ProgressObserver {
    /// A heartbeat for a run of `total_rounds`, enabled only when stderr
    /// is a terminal.
    #[must_use]
    pub fn new(total_rounds: usize) -> Self {
        Self::with_enabled(total_rounds, std::io::stderr().is_terminal())
    }

    /// A heartbeat with explicit enablement (`enabled = false` for
    /// `--quiet`); TTY suppression still applies on top.
    #[must_use]
    pub fn with_enabled(total_rounds: usize, enabled: bool) -> Self {
        Self {
            total_rounds,
            enabled: enabled && std::io::stderr().is_terminal(),
            started: Instant::now(),
            last_emit: None,
            dirty: false,
        }
    }

    /// Whether the heartbeat will emit anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn emit(&mut self, round: usize) {
        let elapsed = self.started.elapsed().as_secs_f64();
        let rps = if elapsed > 0.0 {
            round as f64 / elapsed
        } else {
            0.0
        };
        let remaining = self.total_rounds.saturating_sub(round);
        let eta = if rps > 0.0 {
            remaining as f64 / rps
        } else {
            0.0
        };
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\rround {round}/{} | {rps:.1} rounds/s | ETA {eta:.0}s   ",
            self.total_rounds
        );
        let _ = err.flush();
        self.dirty = true;
    }

    fn finish_line(&mut self) {
        if self.dirty {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err);
            let _ = err.flush();
            self.dirty = false;
        }
    }
}

impl SimObserver for ProgressObserver {
    fn on_snapshot(&mut self, snapshot: &RoundSnapshot) {
        if !self.enabled {
            return;
        }
        let last = snapshot.round >= self.total_rounds;
        let due = self
            .last_emit
            .is_none_or(|at| at.elapsed() >= Duration::from_millis(100));
        if due || last {
            self.emit(snapshot.round);
            self.last_emit = Some(Instant::now());
        }
        if last {
            self.finish_line();
        }
    }
}

/// Lets a borrowed heartbeat ride along in an observer chain.
impl SimObserver for &mut ProgressObserver {
    fn on_snapshot(&mut self, snapshot: &RoundSnapshot) {
        (**self).on_snapshot(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_progress_emits_nothing_and_stays_cheap() {
        let mut progress = ProgressObserver::with_enabled(10, false);
        assert!(!progress.is_enabled());
        for round in 1..=10 {
            progress.on_snapshot(&RoundSnapshot {
                round,
                tick: round as u64 * 100,
                models: Vec::new(),
                shared_models: Vec::new(),
            });
        }
        assert!(!progress.dirty);
    }

    #[test]
    fn non_tty_stderr_suppresses_even_when_enabled() {
        // Test harness stderr is not a terminal, so enablement is masked.
        let progress = ProgressObserver::with_enabled(5, true);
        assert!(!progress.is_enabled());
    }
}

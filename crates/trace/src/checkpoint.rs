//! Sweep checkpoint stream — crash-safe per-cell progress for `glmia sweep`.
//!
//! A sweep's output directory holds a `checkpoint.jsonl`: one
//! [`SweepHeaderRecord`] line binding the file to a scenario (by hash of
//! the fully expanded cell grid), then one [`CellRecord`] line per
//! completed cell, appended and flushed as each cell finishes. The
//! persistence contract follows [`TraceWriter`](crate::TraceWriter): a
//! killed process leaves at worst one truncated final line, which
//! [`read_checkpoint`] drops (it can only belong to the cell that was
//! being recorded when the process died, and that cell simply reruns).
//! Any *complete* line that fails to parse, a schema mismatch, or a
//! header naming a different scenario is reported as corruption instead —
//! resuming under the wrong grid would silently mix incompatible cells.
//!
//! Cell summaries carry only config-and-seed-determined quantities, so an
//! interrupted-and-resumed sweep aggregates to byte-identical
//! `sweep.json` / `report.md` against an uninterrupted run.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::events::SWEEP_SCHEMA_VERSION;

/// One line of `checkpoint.jsonl`, discriminated by a `type` tag like
/// [`TraceEvent`](crate::TraceEvent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type")]
pub enum CheckpointEvent {
    /// First line: scenario identity and grid size.
    SweepHeader(SweepHeaderRecord),
    /// One completed grid cell.
    Cell(CellRecord),
}

/// Header line of a sweep checkpoint: which scenario this file belongs to
/// and how many cells the full grid contains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepHeaderRecord {
    /// Checkpoint schema version ([`SWEEP_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Scenario name from the `[scenario]` table.
    pub scenario: String,
    /// FNV-1a hash (16 hex digits) over the expanded grid — scenario name
    /// plus every cell's `(position, config fingerprint, seed)`. A resume
    /// against a file whose hash differs is rejected as stale.
    pub scenario_hash: String,
    /// Total number of cells in the grid.
    pub cells: usize,
}

/// One completed sweep cell: its grid coordinates and the deterministic
/// summary columns the aggregator folds into `sweep.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Position in the canonical grid order (0-based).
    pub cell: usize,
    /// `ExperimentConfig::fingerprint()` of the cell's config, 16 hex
    /// digits. Checked against the grid on resume.
    pub config_hash: String,
    /// Experiment seed the cell ran under.
    pub seed: u64,
    /// Axis name → canonical value label for every swept axis.
    pub axes: BTreeMap<String, String>,
    /// Deterministic result columns.
    pub summary: CellSummary,
}

/// Per-cell result columns. Every field is a pure function of config and
/// seed (the determinism contract), so checkpointed cells can be reused
/// byte-for-byte on resume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Final evaluated round's mean test accuracy.
    pub final_test_accuracy: f64,
    /// Final evaluated round's mean train accuracy.
    pub final_train_accuracy: f64,
    /// Final evaluated round's mean generalization error.
    pub final_gen_error: f64,
    /// Final evaluated round's mean MIA attack accuracy.
    pub final_mia_vulnerability: f64,
    /// Final evaluated round's mean MIA AUC.
    pub final_mia_auc: f64,
    /// Round with the best utility (max test accuracy).
    pub best_round: usize,
    /// Test accuracy at the best round.
    pub best_test_accuracy: f64,
    /// MIA vulnerability at the best round.
    pub mia_vulnerability_at_best: f64,
    /// Analytic spectral gap anchor of the topology.
    pub lambda2_analytic: f64,
    /// Empirical cumulative-product λ₂ at the last round, when the run
    /// recorded mixing events.
    pub lambda2_cumulative: Option<f64>,
    /// Model transmissions attempted.
    pub messages_sent: u64,
    /// Transmissions lost to fault injection.
    pub messages_dropped: u64,
    /// Node crash events injected by the fault plan.
    pub crashes: u64,
    /// Nodes the attacker's vantage exposed to MIA scoring.
    pub observed_nodes: usize,
    /// Canonical attacker spec (e.g. `omniscient`, `neighbors:0..3`).
    pub attacker: String,
    /// Canonical defense spec (`none` when undefended).
    pub defense: String,
    /// Local SGD epochs run (telemetry column).
    pub local_updates: u64,
    /// Rounds that were evaluated (telemetry column).
    pub evals: u64,
}

/// A parsed `checkpoint.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointFile {
    /// The header line.
    pub header: SweepHeaderRecord,
    /// Every complete cell record, in file order.
    pub cells: Vec<CellRecord>,
    /// Whether a truncated final line (no trailing newline — the mark of
    /// a mid-write kill) was dropped.
    pub truncated_tail: bool,
}

/// Why a checkpoint could not be read.
#[derive(Debug)]
pub enum CheckpointReadError {
    /// The file could not be opened or read.
    Io(std::io::Error),
    /// A complete line failed to parse, or the header is missing.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The header declares a schema this reader does not speak.
    Schema {
        /// Version found in the header.
        found: u32,
    },
}

impl fmt::Display for CheckpointReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointReadError::Io(err) => write!(f, "{err}"),
            CheckpointReadError::Corrupt { line, message } => {
                write!(f, "line {line}: {message}")
            }
            CheckpointReadError::Schema { found } => write!(
                f,
                "unsupported checkpoint schema {found} (expected {SWEEP_SCHEMA_VERSION})"
            ),
        }
    }
}

impl std::error::Error for CheckpointReadError {}

impl From<std::io::Error> for CheckpointReadError {
    fn from(err: std::io::Error) -> Self {
        CheckpointReadError::Io(err)
    }
}

/// Reads and validates a `checkpoint.jsonl`.
///
/// A final line without a trailing newline that fails to parse is treated
/// as a mid-write kill and dropped (`truncated_tail = true`); every other
/// malformed line is corruption.
///
/// # Errors
///
/// [`CheckpointReadError::Io`] when the file cannot be read,
/// [`CheckpointReadError::Corrupt`] on a malformed complete line or a
/// missing/mid-file header, [`CheckpointReadError::Schema`] on a version
/// this reader does not speak.
pub fn read_checkpoint(path: &Path) -> Result<CheckpointFile, CheckpointReadError> {
    let text = std::fs::read_to_string(path)?;
    let ends_with_newline = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return Err(CheckpointReadError::Corrupt {
            line: 1,
            message: "missing sweep header".to_string(),
        });
    }
    let mut header: Option<SweepHeaderRecord> = None;
    let mut cells = Vec::new();
    let mut truncated_tail = false;
    let last = lines.len() - 1;
    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let parsed: Result<CheckpointEvent, _> = serde_json::from_str(raw);
        let event = match parsed {
            Ok(event) => event,
            Err(err) => {
                if idx == last && !ends_with_newline {
                    // The process died mid-append; the cell reruns.
                    truncated_tail = true;
                    break;
                }
                return Err(CheckpointReadError::Corrupt {
                    line: line_no,
                    message: format!("malformed checkpoint record: {err}"),
                });
            }
        };
        match event {
            CheckpointEvent::SweepHeader(record) => {
                if line_no != 1 {
                    return Err(CheckpointReadError::Corrupt {
                        line: line_no,
                        message: "sweep header after line 1".to_string(),
                    });
                }
                if record.schema != SWEEP_SCHEMA_VERSION {
                    return Err(CheckpointReadError::Schema {
                        found: record.schema,
                    });
                }
                header = Some(record);
            }
            CheckpointEvent::Cell(record) => {
                if header.is_none() {
                    return Err(CheckpointReadError::Corrupt {
                        line: line_no,
                        message: "cell record before the sweep header".to_string(),
                    });
                }
                cells.push(record);
            }
        }
    }
    let Some(header) = header else {
        return Err(CheckpointReadError::Corrupt {
            line: 1,
            message: "first line is not a sweep header".to_string(),
        });
    };
    Ok(CheckpointFile {
        header,
        cells,
        truncated_tail,
    })
}

/// Append-only writer for `checkpoint.jsonl`, flushing after every record
/// so a kill loses at most the line being written.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: BufWriter<File>,
    path: PathBuf,
}

impl CheckpointWriter {
    /// Starts a fresh checkpoint: truncates `path` and writes the header.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn create(path: &Path, header: &SweepHeaderRecord) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let mut writer = Self {
            file: BufWriter::new(file),
            path: path.to_path_buf(),
        };
        writer.write_event(&CheckpointEvent::SweepHeader(header.clone()))?;
        Ok(writer)
    }

    /// Resumes a checkpoint: atomically rewrites `path` with the header
    /// and the already-completed `cells` (dropping any truncated tail the
    /// reader tolerated), then continues appending.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn resume(
        path: &Path,
        header: &SweepHeaderRecord,
        cells: &[CellRecord],
    ) -> std::io::Result<Self> {
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut file = BufWriter::new(File::create(&tmp)?);
            write_line(&mut file, &CheckpointEvent::SweepHeader(header.clone()))?;
            for cell in cells {
                write_line(&mut file, &CheckpointEvent::Cell(cell.clone()))?;
            }
            file.flush()?;
        }
        std::fs::rename(&tmp, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self {
            file: BufWriter::new(file),
            path: path.to_path_buf(),
        })
    }

    /// Records one completed cell, flushed to disk before returning.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn append(&mut self, cell: &CellRecord) -> std::io::Result<()> {
        self.write_event(&CheckpointEvent::Cell(cell.clone()))
    }

    /// The file this writer appends to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_event(&mut self, event: &CheckpointEvent) -> std::io::Result<()> {
        write_line(&mut self.file, event)?;
        self.file.flush()
    }
}

fn write_line<W: Write>(writer: &mut W, event: &CheckpointEvent) -> std::io::Result<()> {
    let json = serde_json::to_string(event).map_err(std::io::Error::other)?;
    writer.write_all(json.as_bytes())?;
    writer.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> SweepHeaderRecord {
        SweepHeaderRecord {
            schema: SWEEP_SCHEMA_VERSION,
            scenario: "demo".to_string(),
            scenario_hash: "00deadbeef00cafe".to_string(),
            cells: 3,
        }
    }

    fn sample_cell(index: usize) -> CellRecord {
        let mut axes = BTreeMap::new();
        axes.insert("protocol".to_string(), "samo".to_string());
        CellRecord {
            cell: index,
            config_hash: format!("{:016x}", 0x1234_u64 + index as u64),
            seed: 7,
            axes,
            summary: CellSummary {
                final_test_accuracy: 0.75,
                final_train_accuracy: 0.9,
                final_gen_error: 0.15,
                final_mia_vulnerability: 0.6,
                final_mia_auc: 0.62,
                best_round: 5,
                best_test_accuracy: 0.76,
                mia_vulnerability_at_best: 0.59,
                lambda2_analytic: 0.5,
                lambda2_cumulative: Some(0.48),
                messages_sent: 100,
                messages_dropped: 3,
                crashes: 1,
                observed_nodes: 8,
                attacker: "omniscient".to_string(),
                defense: "none".to_string(),
                local_updates: 40,
                evals: 5,
            },
        }
    }

    #[test]
    fn create_append_read_round_trips() {
        let dir = std::env::temp_dir().join(format!("glmia-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.jsonl");
        let mut writer = CheckpointWriter::create(&path, &sample_header()).unwrap();
        writer.append(&sample_cell(0)).unwrap();
        writer.append(&sample_cell(1)).unwrap();
        drop(writer);

        let file = read_checkpoint(&path).unwrap();
        assert_eq!(file.header, sample_header());
        assert_eq!(file.cells, vec![sample_cell(0), sample_cell(1)]);
        assert!(!file.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_final_line_is_dropped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("glmia-ckpt-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.jsonl");
        let mut writer = CheckpointWriter::create(&path, &sample_header()).unwrap();
        writer.append(&sample_cell(0)).unwrap();
        drop(writer);
        // Simulate a kill mid-append: a partial record with no newline.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"type\":\"Cell\",\"cell\":1,\"conf");
        std::fs::write(&path, &text).unwrap();

        let file = read_checkpoint(&path).unwrap();
        assert_eq!(file.cells, vec![sample_cell(0)]);
        assert!(file.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_complete_line_is_corrupt() {
        let dir = std::env::temp_dir().join(format!("glmia-ckpt-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.jsonl");
        let mut writer = CheckpointWriter::create(&path, &sample_header()).unwrap();
        writer.append(&sample_cell(0)).unwrap();
        drop(writer);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not json\n");
        std::fs::write(&path, &text).unwrap();

        let err = read_checkpoint(&path).unwrap_err();
        match err {
            CheckpointReadError::Corrupt { line, .. } => assert_eq!(line, 3),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let dir = std::env::temp_dir().join(format!("glmia-ckpt-schema-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.jsonl");
        let mut header = sample_header();
        header.schema = SWEEP_SCHEMA_VERSION + 1;
        let writer = CheckpointWriter::create(&path, &header).unwrap();
        drop(writer);
        let err = read_checkpoint(&path).unwrap_err();
        match err {
            CheckpointReadError::Schema { found } => assert_eq!(found, SWEEP_SCHEMA_VERSION + 1),
            other => panic!("expected Schema, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_header_and_empty_file_are_corrupt() {
        let dir = std::env::temp_dir().join(format!("glmia-ckpt-hdr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.jsonl");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointReadError::Corrupt { line: 1, .. })
        ));
        let cell_line = serde_json::to_string(&CheckpointEvent::Cell(sample_cell(0))).unwrap();
        std::fs::write(&path, format!("{cell_line}\n")).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointReadError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rewrites_cleanly_and_continues() {
        let dir = std::env::temp_dir().join(format!("glmia-ckpt-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.jsonl");
        let mut writer = CheckpointWriter::create(&path, &sample_header()).unwrap();
        writer.append(&sample_cell(0)).unwrap();
        drop(writer);
        // Kill artifact: partial tail.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"type\":\"Cell\"");
        std::fs::write(&path, &text).unwrap();

        let file = read_checkpoint(&path).unwrap();
        let mut writer = CheckpointWriter::resume(&path, &file.header, &file.cells).unwrap();
        writer.append(&sample_cell(1)).unwrap();
        drop(writer);

        let reread = read_checkpoint(&path).unwrap();
        assert_eq!(reread.cells, vec![sample_cell(0), sample_cell(1)]);
        assert!(!reread.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Crash-safe trace persistence.
//!
//! [`TraceWriter`] splits trace writing into *create* (before the run) and
//! *finish* (after it): creation immediately persists the stream header
//! and a manifest marked `"complete": false`, so a run that dies mid-phase
//! still leaves an analyzable, honestly-labeled partial trace on disk. The
//! `Drop` impl re-finalizes the partial manifest as a last resort; only
//! [`finish`](TraceWriter::finish) replaces it with the full record set
//! and `"complete": true`.

use std::io;
use std::path::{Path, PathBuf};

use crate::events::{HeaderRecord, TraceEvent, SCHEMA_VERSION};
use crate::manifest::{git_describe, Manifest, Totals};
use crate::RunTrace;

/// Writes a run's trace directory (`events.jsonl` + `manifest.json`) with
/// crash-safe finalization semantics (see the module docs).
#[derive(Debug)]
pub struct TraceWriter {
    dir: PathBuf,
    label: String,
    config_hash_hex: String,
    threads: usize,
    finished: bool,
}

impl TraceWriter {
    /// Creates `dir` (if missing) and immediately writes a header-only
    /// `events.jsonl` plus a manifest marked `"complete": false`.
    pub fn create(
        dir: impl AsRef<Path>,
        label: impl Into<String>,
        config_hash: u64,
        threads: usize,
    ) -> io::Result<Self> {
        let writer = Self {
            dir: dir.as_ref().to_path_buf(),
            label: label.into(),
            config_hash_hex: format!("{config_hash:016x}"),
            threads,
            finished: false,
        };
        std::fs::create_dir_all(&writer.dir)?;
        let header = TraceEvent::Header(HeaderRecord {
            schema: SCHEMA_VERSION,
            label: writer.label.clone(),
            config_hash: writer.config_hash_hex.clone(),
        });
        let mut line = serde_json::to_string(&header).expect("header serialization");
        line.push('\n');
        std::fs::write(writer.dir.join("events.jsonl"), line)?;
        writer.write_partial_manifest()?;
        Ok(writer)
    }

    /// Directory this writer persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes the completed trace: full `events.jsonl` and a manifest
    /// marked `"complete": true`. Consumes the writer, disarming the
    /// partial-finalization `Drop`.
    pub fn finish(mut self, trace: &RunTrace) -> io::Result<()> {
        trace.write_to_dir(&self.dir)?;
        self.finished = true;
        Ok(())
    }

    fn partial_manifest(&self) -> Manifest {
        Manifest {
            schema: SCHEMA_VERSION,
            label: self.label.clone(),
            config_hash: self.config_hash_hex.clone(),
            seeds: Vec::new(),
            threads: self.threads,
            git: git_describe(),
            complete: false,
            wall_secs: 0.0,
            phases: Vec::new(),
            totals: Totals::default(),
        }
    }

    fn write_partial_manifest(&self) -> io::Result<()> {
        let mut json =
            serde_json::to_string_pretty(&self.partial_manifest()).expect("manifest serialization");
        json.push('\n');
        std::fs::write(self.dir.join("manifest.json"), json)
    }
}

impl Drop for TraceWriter {
    /// Best-effort: a writer dropped without [`finish`](TraceWriter::finish)
    /// (run errored mid-phase) leaves a manifest marked `"complete": false`
    /// rather than a missing or stale one.
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.write_partial_manifest();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoundCounters;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("glmia-writer-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn create_leaves_an_analyzable_partial_trace() {
        let dir = tempdir("partial");
        let writer = TraceWriter::create(&dir, "quick", 0xbeef, 2).unwrap();
        // Simulate a mid-run crash: drop without finish.
        drop(writer);
        let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
        assert!(events.ends_with('\n'));
        let reader = crate::TraceReader::open(dir.join("events.jsonl")).unwrap();
        assert_eq!(reader.header().label, "quick");
        let manifest: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("manifest.json")).unwrap())
                .unwrap();
        assert_eq!(manifest["complete"], serde_json::Value::Bool(false));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finish_marks_the_manifest_complete() {
        let dir = tempdir("finish");
        let writer = TraceWriter::create(&dir, "quick", 0xbeef, 1).unwrap();
        let mut trace = RunTrace::new("quick", 0xbeef, 1);
        trace.add_seed_run(
            1,
            &[RoundCounters {
                round: 1,
                tick: 100,
                ..RoundCounters::default()
            }],
            &[],
        );
        writer.finish(&trace).unwrap();
        let manifest: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("manifest.json")).unwrap())
                .unwrap();
        assert_eq!(manifest["complete"], serde_json::Value::Bool(true));
        let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
        assert_eq!(events, trace.events_jsonl());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Schema-versioned trace records.
//!
//! A trace is a stream of [`TraceEvent`]s serialized one-per-line as JSON
//! (JSONL). The first line is always a [`HeaderRecord`] carrying
//! [`SCHEMA_VERSION`] so consumers can reject streams they do not
//! understand; subsequent lines interleave per-round simulation counters
//! ([`RoundRecord`]) with evaluation results ([`EvalRecord`]) in
//! round-major order — for every round the `Round` line precedes the
//! `Eval` line, and replicated runs are concatenated in ascending seed
//! order.
//!
//! Records deliberately carry **no wall-clock timestamps**: everything in
//! the event stream is a deterministic function of the experiment config
//! and seed, so same-seed reruns produce byte-identical JSONL. Timings
//! live in the run manifest instead (see [`crate::Manifest`]).

use serde::Serialize;

/// Version of the JSONL trace schema; bump on any incompatible change to
/// the record shapes below.
pub const SCHEMA_VERSION: u32 = 1;

/// One line of a trace stream.
///
/// Serialized internally tagged (`"type": "Header" | "Round" | "Eval"`).
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(tag = "type")]
pub enum TraceEvent {
    /// First line of every stream: schema version and run identity.
    Header(HeaderRecord),
    /// Per-round simulation counters for one seed.
    Round(RoundRecord),
    /// Evaluation results for a round that was due for eval.
    Eval(EvalRecord),
}

/// Stream identity: schema version, human-readable experiment label, and
/// the FNV-1a hash of the canonical config JSON (hex).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HeaderRecord {
    /// Trace schema version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// Experiment label, e.g. `"CIFAR-10-like samo static k=4 iid"`.
    pub label: String,
    /// FNV-1a-64 of the config's canonical JSON, zero-padded hex.
    pub config_hash: String,
}

/// Simulation counters for one communication round of one seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RoundRecord {
    /// Experiment seed this round belongs to.
    pub seed: u64,
    /// 1-based round index.
    pub round: usize,
    /// Simulation tick at the round boundary.
    pub tick: u64,
    /// Model transmissions attempted this round (dropped ones included).
    pub sends: u64,
    /// Transmissions lost to failure injection.
    pub drops: u64,
    /// Models that arrived at a destination.
    pub delivers: u64,
    /// Merge operations performed (pairwise or buffer merges).
    pub merges: u64,
    /// Received models folded into a local model across all merges.
    pub models_merged: u64,
    /// Local SGD epochs run across all nodes this round.
    pub update_epochs: u64,
}

/// Evaluation metrics for one evaluated round of one seed. Field meanings
/// match `glmia_core::RoundEval`; `gen_error` is the mean over nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EvalRecord {
    /// Experiment seed this evaluation belongs to.
    pub seed: u64,
    /// 1-based round index that was evaluated.
    pub round: usize,
    /// Mean test-set accuracy over nodes.
    pub test_accuracy: f64,
    /// Mean train-set accuracy over nodes.
    pub train_accuracy: f64,
    /// Mean MIA attack accuracy over nodes (paper's vulnerability metric).
    pub mia_vulnerability: f64,
    /// Mean MIA AUC over nodes.
    pub mia_auc: f64,
    /// Mean generalization error (train minus test accuracy) over nodes.
    pub gen_error: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_serializes_with_type_tag_and_stable_field_order() {
        let event = TraceEvent::Header(HeaderRecord {
            schema: SCHEMA_VERSION,
            label: "quick".into(),
            config_hash: "00deadbeef00cafe".into(),
        });
        let line = serde_json::to_string(&event).unwrap();
        assert_eq!(
            line,
            "{\"type\":\"Header\",\"schema\":1,\"label\":\"quick\",\
             \"config_hash\":\"00deadbeef00cafe\"}"
        );
    }

    #[test]
    fn round_record_serializes_deterministically() {
        let record = RoundRecord {
            seed: 7,
            round: 3,
            tick: 300,
            sends: 12,
            drops: 1,
            delivers: 11,
            merges: 9,
            models_merged: 11,
            update_epochs: 18,
        };
        let a = serde_json::to_string(&TraceEvent::Round(record)).unwrap();
        let b = serde_json::to_string(&TraceEvent::Round(record)).unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"type\":\"Round\",\"seed\":7,\"round\":3,"));
    }
}

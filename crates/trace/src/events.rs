//! Schema-versioned trace records.
//!
//! A trace is a stream of [`TraceEvent`]s serialized one-per-line as JSON
//! (JSONL). The first line is always a [`HeaderRecord`] carrying
//! [`SCHEMA_VERSION`] so consumers can reject streams they do not
//! understand; subsequent lines interleave per-round simulation counters
//! ([`RoundRecord`]) with mixing spectra ([`MixingRecord`]), per-node
//! evaluations ([`NodeEvalRecord`]) and fleet-wide evaluation results
//! ([`EvalRecord`]) in round-major order — for every round the `Round`
//! line precedes that round's other lines, a seed's [`TopologyRecord`]
//! precedes its first round, and replicated runs are concatenated in
//! ascending seed order.
//!
//! Records deliberately carry **no wall-clock timestamps**: everything in
//! the event stream is a deterministic function of the experiment config
//! and seed, so same-seed reruns produce byte-identical JSONL. Timings
//! live in the run manifest instead (see [`crate::Manifest`]).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Version of the JSONL trace schema; bump on any incompatible change to
/// the record shapes below.
///
/// v2 added `Topology`/`Mixing`/`NodeEval` records and the merge fan-in /
/// model-staleness histograms on [`RoundRecord`].
pub const SCHEMA_VERSION: u32 = 2;

/// Schema version declared by streams that contain [`FaultRecord`] lines
/// (deterministic fault injection: churn and offline-delivery drops).
///
/// Fault-free streams keep declaring [`SCHEMA_VERSION`] so their bytes are
/// unchanged from before fault injection existed; readers accept both.
pub const FAULT_SCHEMA_VERSION: u32 = 3;

/// Schema version declared by streams that contain [`ThreatRecord`] lines
/// (a restricted attacker model and/or an active defense).
///
/// Runs under the default omniscient attacker with no defense emit no
/// threat record and keep their schema-2 (or, with faults, schema-3) bytes
/// unchanged; readers accept all three versions.
pub const THREAT_SCHEMA_VERSION: u32 = 4;

/// Schema version of the telemetry side-stream (`telemetry.jsonl`).
///
/// Telemetry records live in their **own file** next to `events.jsonl`,
/// never inside it: runs with telemetry disabled write no telemetry file
/// and keep their `events.jsonl` bytes — and declared schema — unchanged.
/// The side-stream is deterministic by construction: per-round records
/// drain only simulation-thread counters (commutative sums at round
/// barriers), so same-seed reruns emit byte-identical `telemetry.jsonl`
/// at any thread count. Wall-clock span timings go to `profile.json`
/// instead, which carries no determinism guarantee.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 5;

/// Schema version of the sweep checkpoint stream (`checkpoint.jsonl`).
///
/// Checkpoint records live in their **own file** inside a sweep output
/// directory, never inside `events.jsonl`; like the telemetry side-stream
/// they extend the shared schema ladder without perturbing trace bytes.
/// The stream is append-only — a header naming the scenario hash, then
/// one record per completed grid cell — so a killed sweep can resume from
/// exactly the cells that finished. Cell records carry only quantities
/// that are pure functions of config and seed (accuracies, MIA scores,
/// λ₂, message counts), never wall-clock data, so resumed and
/// uninterrupted sweeps aggregate to byte-identical outputs.
pub const SWEEP_SCHEMA_VERSION: u32 = 6;

/// Number of buckets in the fan-in and staleness histograms.
pub const HIST_BUCKETS: usize = 9;

/// Upper edges (inclusive, in ticks) of the finite staleness buckets; the
/// ninth bucket is the `+Inf` overflow.
pub const STALENESS_EDGES: [u64; HIST_BUCKETS - 1] = [0, 10, 25, 50, 100, 200, 400, 800];

/// One line of a trace stream.
///
/// Serialized internally tagged (`"type": "Header" | "Topology" | "Threat"
/// | "Round" | "Fault" | "Mixing" | "NodeEval" | "Eval"`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type")]
pub enum TraceEvent {
    /// First line of every stream: schema version and run identity.
    Header(HeaderRecord),
    /// Initial communication graph of one seed (before any dynamics).
    Topology(TopologyRecord),
    /// Threat-model descriptor for one seed (schema v4 streams only).
    Threat(ThreatRecord),
    /// Per-round simulation counters for one seed.
    Round(RoundRecord),
    /// A fault-injection transition for one seed (schema v3 streams only).
    Fault(FaultRecord),
    /// Per-round empirical mixing spectrum for one seed.
    Mixing(MixingRecord),
    /// Per-node evaluation results for a round that was due for eval.
    NodeEval(NodeEvalRecord),
    /// Fleet-wide evaluation results for a round that was due for eval.
    Eval(EvalRecord),
}

/// Stream identity: schema version, human-readable experiment label, and
/// the FNV-1a hash of the canonical config JSON (hex).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeaderRecord {
    /// Trace schema version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// Experiment label, e.g. `"CIFAR-10-like samo static k=4 iid"`.
    pub label: String,
    /// FNV-1a-64 of the config's canonical JSON, zero-padded hex.
    pub config_hash: String,
}

/// Initial topology of one seed: the k-regular graph the run starts from,
/// and the analytic contraction factor of its idealized synchronous mixing
/// matrix `(A + I) / (k + 1)` (the static-graph λ₂ of `core/lambda2.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyRecord {
    /// Experiment seed this topology belongs to.
    pub seed: u64,
    /// Number of nodes.
    pub nodes: usize,
    /// View size `k` of the k-regular graph.
    pub view_size: usize,
    /// Second-largest eigenvalue magnitude of the analytic mixing matrix.
    pub lambda2_analytic: f64,
}

/// Simulation counters for one communication round of one seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Experiment seed this round belongs to.
    pub seed: u64,
    /// 1-based round index.
    pub round: usize,
    /// Simulation tick at the round boundary.
    pub tick: u64,
    /// Model transmissions attempted this round (dropped ones included).
    pub sends: u64,
    /// Transmissions lost to failure injection.
    pub drops: u64,
    /// Models that arrived at a destination.
    pub delivers: u64,
    /// Merge operations performed (pairwise or buffer merges).
    pub merges: u64,
    /// Received models folded into a local model across all merges.
    pub models_merged: u64,
    /// Local SGD epochs run across all nodes this round.
    pub update_epochs: u64,
    /// Merge fan-in histogram: buckets for 1..=8 merged models, ninth
    /// bucket is 9-or-more.
    pub fanin_hist: [u64; HIST_BUCKETS],
    /// Model staleness (merge tick − deliver tick) histogram over
    /// [`STALENESS_EDGES`]; ninth bucket is the overflow.
    pub staleness_hist: [u64; HIST_BUCKETS],
    /// Sum of stalenesses in ticks (exact, for histogram `_sum` export).
    pub staleness_sum: u64,
}

/// A fault-injection transition observed during one seed's run: a node
/// crash, a silent-rejoin recovery, or a model discarded because its
/// destination was down on arrival. Present only in streams whose header
/// declares [`FAULT_SCHEMA_VERSION`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Experiment seed this transition belongs to.
    pub seed: u64,
    /// 1-based round the transition fell in (stamped at the closing round
    /// boundary).
    pub round: usize,
    /// Simulation tick of the transition.
    pub tick: u64,
    /// The node that crashed, recovered, or lost an incoming model.
    pub node: usize,
    /// What happened.
    pub kind: FaultRecordKind,
    /// Sender of the lost model for [`FaultRecordKind::Drop`]; `None`
    /// otherwise.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub peer: Option<usize>,
}

/// The kind of a [`FaultRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultRecordKind {
    /// The node went down (stops waking, sending, merging).
    Crash,
    /// The node came back up with its pre-crash model.
    Recover,
    /// A model arrived at a downed node and was discarded. Counted in the
    /// round's `drops` alongside in-transit losses.
    Drop,
}

/// Threat-model descriptor for one seed: which attacker observed the run,
/// what defense perturbed outgoing models, and how many (round, node) model
/// snapshots the attacker's observed set exposed. Present only in streams
/// whose header declares [`THREAT_SCHEMA_VERSION`] — i.e. when the attacker
/// is not the default omniscient one, or a defense is active.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreatRecord {
    /// Experiment seed this descriptor belongs to.
    pub seed: u64,
    /// Canonical attacker spec (`omniscient`, `neighbors:…`, `coalition:…`).
    pub attacker: String,
    /// Canonical defense spec (`gaussian:…`, `mask:…`, `clip:…`); omitted
    /// when no defense is active.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub defense: Option<String>,
    /// Nodes the attacker's observed set covers at the initial topology.
    pub observed_nodes: usize,
    /// Total nodes in the run.
    pub nodes: usize,
    /// Model snapshots exposed to the attacker across the run
    /// (observed nodes × evaluated rounds).
    pub observations: u64,
}

/// Empirical mixing spectrum of one round: contraction factors of the
/// reconstructed mixing matrix `W_t` (see `glmia_gossip`'s
/// `MixingMatrixObserver`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixingRecord {
    /// Experiment seed this record belongs to.
    pub seed: u64,
    /// 1-based round index.
    pub round: usize,
    /// Contraction factor (second-largest singular value) of this round's
    /// empirical mixing matrix `W_t`.
    pub lambda2_round: f64,
    /// Contraction factor of the cumulative product `W_t · … · W_1`.
    pub lambda2_cumulative: f64,
}

/// Evaluation metrics for one node at one evaluated round of one seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeEvalRecord {
    /// Experiment seed this evaluation belongs to.
    pub seed: u64,
    /// 1-based round index that was evaluated.
    pub round: usize,
    /// Node index.
    pub node: usize,
    /// Test-set accuracy of this node's model.
    pub test_accuracy: f64,
    /// Train-set accuracy of this node's model.
    pub train_accuracy: f64,
    /// MIA attack accuracy against this node (paper's vulnerability).
    pub mia_vulnerability: f64,
    /// MIA AUC against this node.
    pub mia_auc: f64,
    /// Generalization error (train minus test accuracy) of this node.
    pub gen_error: f64,
}

/// Evaluation metrics for one evaluated round of one seed. Field meanings
/// match `glmia_core::RoundEval`; `gen_error` is the mean over nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Experiment seed this evaluation belongs to.
    pub seed: u64,
    /// 1-based round index that was evaluated.
    pub round: usize,
    /// Mean test-set accuracy over nodes.
    pub test_accuracy: f64,
    /// Mean train-set accuracy over nodes.
    pub train_accuracy: f64,
    /// Mean MIA attack accuracy over nodes (paper's vulnerability metric).
    pub mia_vulnerability: f64,
    /// Mean MIA AUC over nodes.
    pub mia_auc: f64,
    /// Mean generalization error (train minus test accuracy) over nodes.
    pub gen_error: f64,
}

/// One line of the `telemetry.jsonl` side-stream (schema
/// [`TELEMETRY_SCHEMA_VERSION`]): a header, per-round counter deltas, and
/// one end-of-run totals line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type")]
pub enum TelemetryEvent {
    /// First line: schema version and run identity.
    TelemetryHeader(TelemetryHeaderRecord),
    /// Per-round deltas of the simulation-thread instruments.
    TelemetryRound(TelemetryRoundRecord),
    /// Final line: run-wide totals of every instrument (including the
    /// worker-thread ones that cannot be attributed to a round
    /// deterministically).
    TelemetryTotals(TelemetryTotalsRecord),
}

/// Identity line of a telemetry side-stream; mirrors [`HeaderRecord`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryHeaderRecord {
    /// Telemetry schema version ([`TELEMETRY_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Experiment label.
    pub label: String,
    /// FNV-1a-64 of the config's canonical JSON, zero-padded hex.
    pub config_hash: String,
}

/// Deltas of the simulation-thread instruments over one round. Only
/// counters incremented on the simulation thread appear here — they are
/// exact per-round values regardless of how many evaluation workers run,
/// which is what keeps the side-stream byte-identical across thread
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryRoundRecord {
    /// Experiment seed this round belongs to.
    pub seed: u64,
    /// 1-based round index.
    pub round: usize,
    /// Gossip sends this round.
    pub sends: u64,
    /// Gossip deliveries this round.
    pub delivers: u64,
    /// Merge operations this round.
    pub merges: u64,
    /// Messages dropped this round.
    pub drops: u64,
    /// Flat-snapshot cache hits this round.
    pub snapshot_hits: u64,
    /// Flat-snapshot cache misses this round.
    pub snapshot_misses: u64,
    /// Engine events processed this round.
    pub events: u64,
    /// Maximum scheduler queue depth observed this round.
    pub queue_depth_max: u64,
}

/// Run-wide final totals of every instrument, name-keyed. Includes
/// worker-thread instruments (MIA scores, eval-cache hits, spectral
/// matvecs): their totals are commutative atomic sums, so they are
/// thread-count-invariant even though per-round attribution is not.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryTotalsRecord {
    /// Final value of every instrument, in name order.
    pub counters: BTreeMap<String, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_serializes_with_type_tag_and_stable_field_order() {
        let event = TraceEvent::Header(HeaderRecord {
            schema: SCHEMA_VERSION,
            label: "quick".into(),
            config_hash: "00deadbeef00cafe".into(),
        });
        let line = serde_json::to_string(&event).unwrap();
        assert_eq!(
            line,
            "{\"type\":\"Header\",\"schema\":2,\"label\":\"quick\",\
             \"config_hash\":\"00deadbeef00cafe\"}"
        );
    }

    #[test]
    fn round_record_serializes_deterministically() {
        let record = RoundRecord {
            seed: 7,
            round: 3,
            tick: 300,
            sends: 12,
            drops: 1,
            delivers: 11,
            merges: 9,
            models_merged: 11,
            update_epochs: 18,
            fanin_hist: [7, 2, 0, 0, 0, 0, 0, 0, 0],
            staleness_hist: [7, 0, 0, 0, 4, 0, 0, 0, 0],
            staleness_sum: 320,
        };
        let a = serde_json::to_string(&TraceEvent::Round(record)).unwrap();
        let b = serde_json::to_string(&TraceEvent::Round(record)).unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"type\":\"Round\",\"seed\":7,\"round\":3,"));
        assert!(a.contains("\"fanin_hist\":[7,2,0,0,0,0,0,0,0]"));
    }

    #[test]
    fn fault_record_serializes_compactly_and_round_trips() {
        let drop = TraceEvent::Fault(FaultRecord {
            seed: 3,
            round: 2,
            tick: 154,
            node: 5,
            kind: FaultRecordKind::Drop,
            peer: Some(1),
        });
        let line = serde_json::to_string(&drop).unwrap();
        assert_eq!(
            line,
            "{\"type\":\"Fault\",\"seed\":3,\"round\":2,\"tick\":154,\
             \"node\":5,\"kind\":\"drop\",\"peer\":1}"
        );
        let crash = TraceEvent::Fault(FaultRecord {
            seed: 3,
            round: 1,
            tick: 42,
            node: 0,
            kind: FaultRecordKind::Crash,
            peer: None,
        });
        let line = serde_json::to_string(&crash).unwrap();
        assert!(!line.contains("peer"), "absent peer is omitted: {line}");
        for event in [drop, crash] {
            let line = serde_json::to_string(&event).unwrap();
            let back: TraceEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn threat_record_serializes_compactly_and_round_trips() {
        let with_defense = TraceEvent::Threat(ThreatRecord {
            seed: 11,
            attacker: "coalition:0..3".into(),
            defense: Some("gaussian:0.1".into()),
            observed_nodes: 5,
            nodes: 8,
            observations: 20,
        });
        let line = serde_json::to_string(&with_defense).unwrap();
        assert_eq!(
            line,
            "{\"type\":\"Threat\",\"seed\":11,\"attacker\":\"coalition:0..3\",\
             \"defense\":\"gaussian:0.1\",\"observed_nodes\":5,\"nodes\":8,\
             \"observations\":20}"
        );
        let without_defense = TraceEvent::Threat(ThreatRecord {
            seed: 11,
            attacker: "neighbors:3,7".into(),
            defense: None,
            observed_nodes: 4,
            nodes: 8,
            observations: 16,
        });
        let line = serde_json::to_string(&without_defense).unwrap();
        assert!(
            !line.contains("defense"),
            "absent defense is omitted: {line}"
        );
        for event in [with_defense, without_defense] {
            let line = serde_json::to_string(&event).unwrap();
            let back: TraceEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn telemetry_events_serialize_deterministically_and_round_trip() {
        let round = TelemetryEvent::TelemetryRound(TelemetryRoundRecord {
            seed: 7,
            round: 2,
            sends: 12,
            delivers: 11,
            merges: 9,
            drops: 1,
            snapshot_hits: 30,
            snapshot_misses: 12,
            events: 44,
            queue_depth_max: 5,
        });
        let line = serde_json::to_string(&round).unwrap();
        assert_eq!(
            line,
            "{\"type\":\"TelemetryRound\",\"seed\":7,\"round\":2,\"sends\":12,\
             \"delivers\":11,\"merges\":9,\"drops\":1,\"snapshot_hits\":30,\
             \"snapshot_misses\":12,\"events\":44,\"queue_depth_max\":5}"
        );
        let totals = TelemetryEvent::TelemetryTotals(TelemetryTotalsRecord {
            counters: [("gossip_sends".to_string(), 12u64)].into_iter().collect(),
        });
        let header = TelemetryEvent::TelemetryHeader(TelemetryHeaderRecord {
            schema: TELEMETRY_SCHEMA_VERSION,
            label: "quick".into(),
            config_hash: "0000000000000001".into(),
        });
        assert!(serde_json::to_string(&header)
            .unwrap()
            .contains("\"schema\":5"));
        for event in [round, totals, header] {
            let line = serde_json::to_string(&event).unwrap();
            let back: TelemetryEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            TraceEvent::Header(HeaderRecord {
                schema: SCHEMA_VERSION,
                label: "quick".into(),
                config_hash: "0000000000000001".into(),
            }),
            TraceEvent::Topology(TopologyRecord {
                seed: 1,
                nodes: 8,
                view_size: 2,
                lambda2_analytic: 0.75,
            }),
            TraceEvent::Mixing(MixingRecord {
                seed: 1,
                round: 1,
                lambda2_round: 0.9,
                lambda2_cumulative: 0.81,
            }),
            TraceEvent::NodeEval(NodeEvalRecord {
                seed: 1,
                round: 1,
                node: 3,
                test_accuracy: 0.5,
                train_accuracy: 0.6,
                mia_vulnerability: 0.55,
                mia_auc: 0.58,
                gen_error: 0.1,
            }),
        ];
        for event in events {
            let line = serde_json::to_string(&event).unwrap();
            let back: TraceEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(back, event);
        }
    }
}

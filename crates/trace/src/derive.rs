//! Derived per-round aggregates over a replayed event stream.
//!
//! [`RunSummary::from_events`] folds a validated trace (see
//! [`TraceReader`](crate::TraceReader)) into the quantities the paper
//! actually plots: message counts by kind, merge fan-in and model
//! staleness histograms with deterministic quantiles, fleet-wide and
//! per-node MIA/accuracy/generalization-error time series, and the
//! empirical mixing spectrum (per-round and cumulative λ₂) next to the
//! analytic static-graph value.
//!
//! The summary is a **pure function of the event stream**: aggregation
//! order is fixed (seeds in stream order, rounds ascending), no wall-clock
//! data is consulted, and floats serialize via `serde_json`'s shortest
//! round-trip representation — so `summary.json` is byte-identical across
//! thread counts and reruns, exactly like the underlying `events.jsonl`.

use std::collections::BTreeMap;

use serde::Serialize;

use glmia_telemetry::Profile;

use crate::events::{FaultRecordKind, HeaderRecord, TraceEvent, HIST_BUCKETS, STALENESS_EDGES};
use crate::manifest::Totals;

/// Performance aggregates attached to a summary when the run carried
/// telemetry (a `telemetry.jsonl` side-stream and, usually, a
/// `profile.json`). The counter totals inherit the side-stream's
/// determinism guarantee; the span profile carries wall-clock seconds and
/// does **not** — summaries of telemetry-on runs are reproducible in
/// every field except `perf.profile`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PerfSummary {
    /// Final value of every instrument, name-sorted (from the telemetry
    /// side-stream's totals line).
    pub counters: BTreeMap<String, u64>,
    /// Span tree, allocation accounting and histograms from
    /// `profile.json`; absent when only the side-stream was found.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub profile: Option<Profile>,
}

impl PerfSummary {
    /// Rebuilds the performance aggregates from a trace directory's
    /// telemetry artifacts: the `telemetry.jsonl` side-stream (its totals
    /// line supplies the counters) and, optionally, `profile.json`.
    ///
    /// The side-stream is best-effort by design — a malformed or
    /// totals-free stream yields `None` and the summary simply omits its
    /// Performance section, mirroring a telemetry-off run.
    #[must_use]
    pub fn from_artifacts(telemetry_jsonl: &str, profile_json: Option<&str>) -> Option<Self> {
        let mut counters: Option<BTreeMap<String, u64>> = None;
        for line in telemetry_jsonl.lines().filter(|l| !l.trim().is_empty()) {
            match serde_json::from_str::<crate::events::TelemetryEvent>(line) {
                Ok(crate::events::TelemetryEvent::TelemetryTotals(totals)) => {
                    counters = Some(totals.counters);
                }
                Ok(_) => {}
                Err(_) => return None,
            }
        }
        let counters = counters?;
        let profile = profile_json.and_then(|json| serde_json::from_str::<Profile>(json).ok());
        Some(Self { counters, profile })
    }
}

/// One fixed histogram bucket: cumulative-style upper edge (inclusive) and
/// the count that landed in the bucket. `le: None` is the overflow
/// (`+Inf`) bucket — kept out of the JSON number domain deliberately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct HistogramBucket {
    /// Inclusive upper edge; `None` means `+Inf`.
    pub le: Option<u64>,
    /// Observations in this bucket.
    pub count: u64,
}

/// A fixed-bucket histogram with deterministic quantiles.
///
/// Quantiles are *bucket upper edges*: the reported pXX is the upper edge
/// of the first bucket whose cumulative count reaches `ceil(q · total)`.
/// Observations in the overflow bucket clamp to the largest finite edge,
/// keeping every reported value a plain JSON number.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramSummary {
    /// Buckets in ascending edge order, overflow last.
    pub buckets: Vec<HistogramBucket>,
    /// Total observations.
    pub total: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
    /// Median (bucket upper edge).
    pub p50: u64,
    /// 90th percentile (bucket upper edge).
    pub p90: u64,
    /// 99th percentile (bucket upper edge).
    pub p99: u64,
}

impl HistogramSummary {
    fn build(counts: [u64; HIST_BUCKETS], values: [u64; HIST_BUCKETS], sum: u64) -> Self {
        let total: u64 = counts.iter().sum();
        let buckets = counts
            .iter()
            .enumerate()
            .map(|(i, &count)| HistogramBucket {
                le: (i + 1 < HIST_BUCKETS).then_some(values[i]),
                count,
            })
            .collect();
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = ((q * total as f64).ceil() as u64).max(1);
            let mut cumulative = 0;
            for (i, &count) in counts.iter().enumerate() {
                cumulative += count;
                if cumulative >= rank {
                    return values[i];
                }
            }
            values[HIST_BUCKETS - 1]
        };
        Self {
            buckets,
            total,
            sum,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// Initial-topology facts shared by (averaged over) every seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TopologySummary {
    /// Number of nodes.
    pub nodes: usize,
    /// View size `k` of the k-regular graph.
    pub view_size: usize,
    /// Mean analytic λ₂ of `(A + I)/(k + 1)` across seeds.
    pub lambda2_analytic: f64,
}

/// Fault-injection aggregates of a whole run. Only present for streams
/// that carry `Fault` records — fault-free summaries omit every fault
/// field, keeping their `summary.json` bytes unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultSummary {
    /// Crash transitions across all seeds.
    pub crashes: u64,
    /// Recover transitions across all seeds.
    pub recoveries: u64,
    /// Deliveries discarded because the receiver was down.
    pub offline_drops: u64,
    /// Mean per-round availability (fraction of node-ticks up); absent
    /// when the stream has no topology record to supply the node count.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub mean_availability: Option<f64>,
}

/// Threat-model aggregates of a whole run. Only present for streams that
/// carry `Threat` records — threat-free summaries omit every threat field,
/// keeping their `summary.json` bytes unchanged.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ThreatSummary {
    /// Canonical attacker spec shared by every seed.
    pub attacker: String,
    /// Canonical defense spec, absent when no defense was active.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub defense: Option<String>,
    /// Total nodes in the run.
    pub nodes: usize,
    /// Mean number of nodes the attacker observed, across seeds.
    pub mean_observed_nodes: f64,
    /// Total model snapshots exposed to the attacker across all seeds.
    pub observations: u64,
}

/// Mean evaluation metrics of one round across seeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EvalSummary {
    /// Mean test-set accuracy.
    pub test_accuracy: f64,
    /// Mean train-set accuracy.
    pub train_accuracy: f64,
    /// Mean MIA attack accuracy (paper's vulnerability).
    pub mia_vulnerability: f64,
    /// Mean MIA AUC.
    pub mia_auc: f64,
    /// Mean generalization error.
    pub gen_error: f64,
}

/// Aggregates of one communication round across every seed of the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RoundSummary {
    /// 1-based round index.
    pub round: usize,
    /// Transmissions attempted, summed across seeds.
    pub sends: u64,
    /// Transmissions lost to failure injection, summed across seeds.
    pub drops: u64,
    /// Models delivered, summed across seeds.
    pub delivers: u64,
    /// Merge operations, summed across seeds.
    pub merges: u64,
    /// Models folded into local models, summed across seeds.
    pub models_merged: u64,
    /// Local SGD epochs, summed across seeds.
    pub update_epochs: u64,
    /// Mean empirical per-round λ₂ across seeds (absent without mixing
    /// records).
    pub lambda2_round: Option<f64>,
    /// Mean cumulative-product λ₂ across seeds.
    pub lambda2_cumulative: Option<f64>,
    /// Mean evaluation metrics (absent for rounds not due for eval).
    pub eval: Option<EvalSummary>,
    /// Deliveries dropped at downed nodes this round, summed across seeds
    /// (omitted entirely for fault-free streams).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub fault_drops: Option<u64>,
    /// Fraction of node-ticks the fleet was up this round (omitted for
    /// fault-free streams, or when no topology record supplies the node
    /// count).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub availability: Option<f64>,
}

/// Per-node evaluation time series, averaged across seeds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NodeSeries {
    /// Node index.
    pub node: usize,
    /// Evaluated rounds, ascending.
    pub rounds: Vec<usize>,
    /// Mean test accuracy per evaluated round.
    pub test_accuracy: Vec<f64>,
    /// Mean MIA vulnerability per evaluated round.
    pub mia_vulnerability: Vec<f64>,
    /// Mean MIA AUC per evaluated round.
    pub mia_auc: Vec<f64>,
    /// Mean generalization error per evaluated round.
    pub gen_error: Vec<f64>,
}

/// Everything `glmia analyze` derives from one `events.jsonl`.
///
/// Built with [`RunSummary::from_events`]; serialized (pretty, trailing
/// newline) by [`RunSummary::to_json_pretty`] as `summary.json`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunSummary {
    /// Schema version of the source stream.
    pub schema: u32,
    /// Experiment label from the header.
    pub label: String,
    /// Config fingerprint (hex) from the header.
    pub config_hash: String,
    /// Seeds in stream order.
    pub seeds: Vec<u64>,
    /// Initial topology facts (absent in streams without topology records).
    pub topology: Option<TopologySummary>,
    /// Run-wide totals (same semantics as the manifest's).
    pub totals: Totals,
    /// Fault-injection aggregates (omitted for fault-free streams).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultSummary>,
    /// Threat-model aggregates (omitted for threat-free streams).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub threat: Option<ThreatSummary>,
    /// Merge fan-in histogram over every merge of the run.
    pub fan_in: HistogramSummary,
    /// Model staleness histogram (ticks from delivery to merge).
    pub staleness: HistogramSummary,
    /// Per-round aggregates, ascending round order.
    pub rounds: Vec<RoundSummary>,
    /// Per-node evaluation series, ascending node order.
    pub nodes: Vec<NodeSeries>,
    /// Performance aggregates (omitted for telemetry-off runs, keeping
    /// their `summary.json` bytes unchanged).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub perf: Option<PerfSummary>,
}

#[derive(Default, Clone, Copy)]
struct RoundAcc {
    sends: u64,
    drops: u64,
    delivers: u64,
    merges: u64,
    models_merged: u64,
    update_epochs: u64,
    fault_drops: u64,
    lambda2_round: (f64, u64),
    lambda2_cumulative: (f64, u64),
    eval: (EvalAcc, u64),
}

#[derive(Default, Clone, Copy)]
struct EvalAcc {
    test_accuracy: f64,
    train_accuracy: f64,
    mia_vulnerability: f64,
    mia_auc: f64,
    gen_error: f64,
}

impl RunSummary {
    /// Folds a validated event stream into its derived summary.
    pub fn from_events(header: &HeaderRecord, events: &[TraceEvent]) -> Self {
        let mut seeds = Vec::new();
        let note_seed = |seen: &mut Vec<u64>, seed: u64| {
            if !seen.contains(&seed) {
                seen.push(seed);
            }
        };
        let mut topo_nodes = 0usize;
        let mut topo_view = 0usize;
        let mut topo_lambda = (0.0f64, 0u64);
        let mut totals = Totals::default();
        let mut fanin = [0u64; HIST_BUCKETS];
        let mut staleness = [0u64; HIST_BUCKETS];
        let mut staleness_sum = 0u64;
        let mut rounds: BTreeMap<usize, RoundAcc> = BTreeMap::new();
        #[allow(clippy::type_complexity)]
        let mut nodes: BTreeMap<usize, BTreeMap<usize, (EvalAcc, u64)>> = BTreeMap::new();
        // Fault bookkeeping: down intervals reconstructed from crash /
        // recover pairs (an unmatched crash runs to its seed's horizon).
        let mut fault_crashes = 0u64;
        let mut fault_recoveries = 0u64;
        let mut fault_offline_drops = 0u64;
        // Threat bookkeeping: one record per seed; the attacker/defense
        // descriptors are config-derived, so every seed carries the same.
        let mut threat_attacker: Option<String> = None;
        let mut threat_defense: Option<String> = None;
        let mut threat_nodes = 0usize;
        let mut threat_observed = (0u64, 0u64);
        let mut threat_observations = 0u64;
        let mut open_crashes: BTreeMap<(u64, usize), u64> = BTreeMap::new();
        let mut down_intervals: Vec<(u64, u64)> = Vec::new();
        let mut seed_horizon: BTreeMap<u64, u64> = BTreeMap::new();
        let mut ticks_per_round = 0u64;

        for event in events {
            match event {
                TraceEvent::Header(_) => {}
                TraceEvent::Topology(t) => {
                    note_seed(&mut seeds, t.seed);
                    topo_nodes = t.nodes;
                    topo_view = t.view_size;
                    topo_lambda.0 += t.lambda2_analytic;
                    topo_lambda.1 += 1;
                }
                TraceEvent::Threat(t) => {
                    note_seed(&mut seeds, t.seed);
                    threat_attacker = Some(t.attacker.clone());
                    threat_defense.clone_from(&t.defense);
                    threat_nodes = t.nodes;
                    threat_observed.0 += t.observed_nodes as u64;
                    threat_observed.1 += 1;
                    threat_observations += t.observations;
                }
                TraceEvent::Round(r) => {
                    note_seed(&mut seeds, r.seed);
                    if ticks_per_round == 0 && r.round > 0 {
                        ticks_per_round = r.tick / r.round as u64;
                    }
                    let horizon = seed_horizon.entry(r.seed).or_insert(0);
                    *horizon = (*horizon).max(r.tick);
                    totals.rounds += 1;
                    totals.messages_sent += r.sends;
                    totals.messages_dropped += r.drops;
                    totals.local_updates += r.update_epochs;
                    for i in 0..HIST_BUCKETS {
                        fanin[i] += r.fanin_hist[i];
                        staleness[i] += r.staleness_hist[i];
                    }
                    staleness_sum += r.staleness_sum;
                    let acc = rounds.entry(r.round).or_default();
                    acc.sends += r.sends;
                    acc.drops += r.drops;
                    acc.delivers += r.delivers;
                    acc.merges += r.merges;
                    acc.models_merged += r.models_merged;
                    acc.update_epochs += r.update_epochs;
                }
                TraceEvent::Fault(f) => {
                    note_seed(&mut seeds, f.seed);
                    match f.kind {
                        FaultRecordKind::Crash => {
                            fault_crashes += 1;
                            open_crashes.insert((f.seed, f.node), f.tick);
                        }
                        FaultRecordKind::Recover => {
                            fault_recoveries += 1;
                            if let Some(start) = open_crashes.remove(&(f.seed, f.node)) {
                                down_intervals.push((start, f.tick));
                            }
                        }
                        FaultRecordKind::Drop => {
                            fault_offline_drops += 1;
                            rounds.entry(f.round).or_default().fault_drops += 1;
                        }
                    }
                }
                TraceEvent::Mixing(m) => {
                    let acc = rounds.entry(m.round).or_default();
                    acc.lambda2_round.0 += m.lambda2_round;
                    acc.lambda2_round.1 += 1;
                    acc.lambda2_cumulative.0 += m.lambda2_cumulative;
                    acc.lambda2_cumulative.1 += 1;
                }
                TraceEvent::NodeEval(n) => {
                    let slot = nodes.entry(n.node).or_default().entry(n.round).or_default();
                    slot.0.test_accuracy += n.test_accuracy;
                    slot.0.train_accuracy += n.train_accuracy;
                    slot.0.mia_vulnerability += n.mia_vulnerability;
                    slot.0.mia_auc += n.mia_auc;
                    slot.0.gen_error += n.gen_error;
                    slot.1 += 1;
                }
                TraceEvent::Eval(e) => {
                    totals.evals += 1;
                    let acc = rounds.entry(e.round).or_default();
                    acc.eval.0.test_accuracy += e.test_accuracy;
                    acc.eval.0.train_accuracy += e.train_accuracy;
                    acc.eval.0.mia_vulnerability += e.mia_vulnerability;
                    acc.eval.0.mia_auc += e.mia_auc;
                    acc.eval.0.gen_error += e.gen_error;
                    acc.eval.1 += 1;
                }
            }
        }

        // Close crash windows that never recovered at their seed's horizon.
        for (&(seed, _node), &start) in &open_crashes {
            let horizon = seed_horizon.get(&seed).copied().unwrap_or(start);
            down_intervals.push((start, horizon.max(start)));
        }
        let has_faults = fault_crashes + fault_recoveries + fault_offline_drops > 0;
        let seeds_with_rounds = seed_horizon.len() as u64;

        let mean = |sum: f64, count: u64| sum / count as f64;
        let topology = (topo_lambda.1 > 0).then(|| TopologySummary {
            nodes: topo_nodes,
            view_size: topo_view,
            lambda2_analytic: mean(topo_lambda.0, topo_lambda.1),
        });
        // Availability of one round: 1 − (downed node-ticks overlapping the
        // round window) / (total node-ticks of the window across seeds).
        let availability_for = |round: usize| -> Option<f64> {
            if !has_faults
                || topo_nodes == 0
                || ticks_per_round == 0
                || seeds_with_rounds == 0
                || round == 0
            {
                return None;
            }
            let start = (round as u64 - 1) * ticks_per_round;
            let end = round as u64 * ticks_per_round;
            let down: u64 = down_intervals
                .iter()
                .map(|&(s, e)| e.min(end).saturating_sub(s.max(start)))
                .sum();
            let capacity = seeds_with_rounds * topo_nodes as u64 * ticks_per_round;
            Some(1.0 - down as f64 / capacity as f64)
        };
        let round_summaries: Vec<RoundSummary> = rounds
            .iter()
            .map(|(&round, acc)| RoundSummary {
                round,
                sends: acc.sends,
                drops: acc.drops,
                delivers: acc.delivers,
                merges: acc.merges,
                models_merged: acc.models_merged,
                update_epochs: acc.update_epochs,
                lambda2_round: (acc.lambda2_round.1 > 0)
                    .then(|| mean(acc.lambda2_round.0, acc.lambda2_round.1)),
                lambda2_cumulative: (acc.lambda2_cumulative.1 > 0)
                    .then(|| mean(acc.lambda2_cumulative.0, acc.lambda2_cumulative.1)),
                eval: (acc.eval.1 > 0).then(|| EvalSummary {
                    test_accuracy: mean(acc.eval.0.test_accuracy, acc.eval.1),
                    train_accuracy: mean(acc.eval.0.train_accuracy, acc.eval.1),
                    mia_vulnerability: mean(acc.eval.0.mia_vulnerability, acc.eval.1),
                    mia_auc: mean(acc.eval.0.mia_auc, acc.eval.1),
                    gen_error: mean(acc.eval.0.gen_error, acc.eval.1),
                }),
                fault_drops: has_faults.then_some(acc.fault_drops),
                availability: availability_for(round),
            })
            .collect();
        let faults = has_faults.then(|| {
            let per_round: Vec<f64> = round_summaries
                .iter()
                .filter_map(|r| r.availability)
                .collect();
            FaultSummary {
                crashes: fault_crashes,
                recoveries: fault_recoveries,
                offline_drops: fault_offline_drops,
                mean_availability: (!per_round.is_empty())
                    .then(|| per_round.iter().sum::<f64>() / per_round.len() as f64),
            }
        });
        let threat = threat_attacker.map(|attacker| ThreatSummary {
            attacker,
            defense: threat_defense,
            nodes: threat_nodes,
            mean_observed_nodes: mean(threat_observed.0 as f64, threat_observed.1),
            observations: threat_observations,
        });
        let node_series = nodes
            .iter()
            .map(|(&node, per_round)| {
                let mut series = NodeSeries {
                    node,
                    rounds: Vec::with_capacity(per_round.len()),
                    test_accuracy: Vec::with_capacity(per_round.len()),
                    mia_vulnerability: Vec::with_capacity(per_round.len()),
                    mia_auc: Vec::with_capacity(per_round.len()),
                    gen_error: Vec::with_capacity(per_round.len()),
                };
                for (&round, &(acc, count)) in per_round {
                    series.rounds.push(round);
                    series.test_accuracy.push(mean(acc.test_accuracy, count));
                    series
                        .mia_vulnerability
                        .push(mean(acc.mia_vulnerability, count));
                    series.mia_auc.push(mean(acc.mia_auc, count));
                    series.gen_error.push(mean(acc.gen_error, count));
                }
                series
            })
            .collect();

        let fanin_values: [u64; HIST_BUCKETS] = std::array::from_fn(|i| i as u64 + 1);
        let staleness_values: [u64; HIST_BUCKETS] = std::array::from_fn(|i| {
            *STALENESS_EDGES
                .get(i)
                .unwrap_or(&STALENESS_EDGES[HIST_BUCKETS - 2])
        });
        let models_merged_total: u64 = rounds.values().map(|acc| acc.models_merged).sum();

        Self {
            schema: header.schema,
            label: header.label.clone(),
            config_hash: header.config_hash.clone(),
            seeds,
            topology,
            totals,
            faults,
            threat,
            fan_in: HistogramSummary::build(fanin, fanin_values, models_merged_total),
            staleness: HistogramSummary::build(staleness, staleness_values, staleness_sum),
            rounds: round_summaries,
            nodes: node_series,
            perf: None,
        }
    }

    /// Pretty-printed `summary.json` contents (trailing newline included).
    /// Byte-identical for identical event streams.
    pub fn to_json_pretty(&self) -> String {
        let mut out = serde_json::to_string_pretty(self).expect("summary serialization");
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{
        EvalRecord, MixingRecord, NodeEvalRecord, RoundRecord, TopologyRecord, SCHEMA_VERSION,
    };

    fn header() -> HeaderRecord {
        HeaderRecord {
            schema: SCHEMA_VERSION,
            label: "derive-test".into(),
            config_hash: "0000000000000001".into(),
        }
    }

    fn round(seed: u64, round: usize) -> RoundRecord {
        RoundRecord {
            seed,
            round,
            tick: round as u64 * 100,
            sends: 10,
            drops: 1,
            delivers: 9,
            merges: 4,
            models_merged: 8,
            update_epochs: 12,
            fanin_hist: [0, 4, 0, 0, 0, 0, 0, 0, 0],
            staleness_hist: [4, 0, 0, 4, 0, 0, 0, 0, 0],
            staleness_sum: 200,
        }
    }

    #[test]
    fn per_round_counters_sum_across_seeds() {
        let events = vec![
            TraceEvent::Round(round(1, 1)),
            TraceEvent::Round(round(1, 2)),
            TraceEvent::Round(round(2, 1)),
            TraceEvent::Round(round(2, 2)),
        ];
        let summary = RunSummary::from_events(&header(), &events);
        assert_eq!(summary.seeds, vec![1, 2]);
        assert_eq!(summary.rounds.len(), 2);
        assert_eq!(summary.rounds[0].round, 1);
        assert_eq!(summary.rounds[0].sends, 20, "two seeds summed");
        assert_eq!(summary.totals.rounds, 4);
        assert_eq!(summary.totals.messages_sent, 40);
        assert!(summary.rounds[0].eval.is_none());
        assert!(summary.rounds[0].lambda2_round.is_none());
    }

    #[test]
    fn histograms_accumulate_with_quantiles() {
        let events = vec![
            TraceEvent::Round(round(1, 1)),
            TraceEvent::Round(round(1, 2)),
        ];
        let summary = RunSummary::from_events(&header(), &events);
        assert_eq!(summary.fan_in.total, 8, "4 merges × 2 rounds");
        assert_eq!(summary.fan_in.sum, 16, "models merged");
        assert_eq!(summary.fan_in.p50, 2, "all merges had fan-in 2");
        assert_eq!(summary.fan_in.p99, 2);
        assert_eq!(summary.staleness.total, 16);
        assert_eq!(summary.staleness.sum, 400);
        assert_eq!(summary.staleness.p50, 0, "half the mass at staleness 0");
        assert_eq!(summary.staleness.p90, 50);
        // Overflow bucket has le: None.
        assert_eq!(summary.staleness.buckets.last().unwrap().le, None);
        assert_eq!(summary.fan_in.buckets[1].count, 8);
    }

    #[test]
    fn mixing_and_eval_records_average_across_seeds() {
        let mixing = |seed, l2: f64| {
            TraceEvent::Mixing(MixingRecord {
                seed,
                round: 1,
                lambda2_round: l2,
                lambda2_cumulative: l2 / 2.0,
            })
        };
        let eval = |seed, acc: f64| {
            TraceEvent::Eval(EvalRecord {
                seed,
                round: 1,
                test_accuracy: acc,
                train_accuracy: acc + 0.1,
                mia_vulnerability: 0.6,
                mia_auc: 0.62,
                gen_error: 0.1,
            })
        };
        let events = vec![
            TraceEvent::Round(round(1, 1)),
            mixing(1, 0.8),
            eval(1, 0.4),
            TraceEvent::Round(round(2, 1)),
            mixing(2, 0.6),
            eval(2, 0.6),
        ];
        let summary = RunSummary::from_events(&header(), &events);
        let r1 = &summary.rounds[0];
        assert!((r1.lambda2_round.unwrap() - 0.7).abs() < 1e-12);
        assert!((r1.lambda2_cumulative.unwrap() - 0.35).abs() < 1e-12);
        let eval = r1.eval.as_ref().unwrap();
        assert!((eval.test_accuracy - 0.5).abs() < 1e-12);
        assert_eq!(summary.totals.evals, 2);
    }

    #[test]
    fn node_series_collect_per_node_trajectories() {
        let node_eval = |seed, round, node, auc: f64| {
            TraceEvent::NodeEval(NodeEvalRecord {
                seed,
                round,
                node,
                test_accuracy: 0.5,
                train_accuracy: 0.6,
                mia_vulnerability: 0.55,
                mia_auc: auc,
                gen_error: 0.1,
            })
        };
        let events = vec![
            TraceEvent::Round(round(1, 1)),
            node_eval(1, 1, 0, 0.6),
            node_eval(1, 1, 1, 0.7),
            TraceEvent::Round(round(1, 2)),
            node_eval(1, 2, 0, 0.65),
            node_eval(1, 2, 1, 0.75),
        ];
        let summary = RunSummary::from_events(&header(), &events);
        assert_eq!(summary.nodes.len(), 2);
        assert_eq!(summary.nodes[0].node, 0);
        assert_eq!(summary.nodes[0].rounds, vec![1, 2]);
        assert_eq!(summary.nodes[0].mia_auc, vec![0.6, 0.65]);
        assert_eq!(summary.nodes[1].mia_auc, vec![0.7, 0.75]);
    }

    #[test]
    fn topology_summary_averages_analytic_lambda2() {
        let topo = |seed, l2: f64| {
            TraceEvent::Topology(TopologyRecord {
                seed,
                nodes: 8,
                view_size: 2,
                lambda2_analytic: l2,
            })
        };
        let events = vec![topo(1, 0.8), topo(2, 0.6)];
        let summary = RunSummary::from_events(&header(), &events);
        let topology = summary.topology.unwrap();
        assert_eq!(topology.nodes, 8);
        assert!((topology.lambda2_analytic - 0.7).abs() < 1e-12);
    }

    #[test]
    fn fault_records_aggregate_into_availability() {
        use crate::events::{FaultRecord, FaultRecordKind};
        let fault = |round, tick, node, kind, peer| {
            TraceEvent::Fault(FaultRecord {
                seed: 1,
                round,
                tick,
                node,
                kind,
                peer,
            })
        };
        let events = vec![
            TraceEvent::Topology(TopologyRecord {
                seed: 1,
                nodes: 4,
                view_size: 2,
                lambda2_analytic: 0.5,
            }),
            TraceEvent::Round(round(1, 1)),
            fault(1, 50, 2, FaultRecordKind::Crash, None),
            fault(1, 80, 2, FaultRecordKind::Drop, Some(0)),
            TraceEvent::Round(round(1, 2)),
            fault(2, 150, 2, FaultRecordKind::Recover, None),
        ];
        let summary = RunSummary::from_events(&header(), &events);
        let faults = summary.faults.unwrap();
        assert_eq!(faults.crashes, 1);
        assert_eq!(faults.recoveries, 1);
        assert_eq!(faults.offline_drops, 1);
        // Node 2 is down over (50, 150): 50 of the 4 × 100 node-ticks of
        // each round window.
        let r1 = &summary.rounds[0];
        assert_eq!(r1.fault_drops, Some(1));
        assert!((r1.availability.unwrap() - 0.875).abs() < 1e-12);
        let r2 = &summary.rounds[1];
        assert_eq!(r2.fault_drops, Some(0));
        assert!((r2.availability.unwrap() - 0.875).abs() < 1e-12);
        assert!((faults.mean_availability.unwrap() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn unmatched_crashes_run_to_the_seed_horizon() {
        use crate::events::{FaultRecord, FaultRecordKind};
        let events = vec![
            TraceEvent::Topology(TopologyRecord {
                seed: 1,
                nodes: 4,
                view_size: 2,
                lambda2_analytic: 0.5,
            }),
            TraceEvent::Round(round(1, 1)),
            TraceEvent::Round(round(1, 2)),
            TraceEvent::Fault(FaultRecord {
                seed: 1,
                round: 2,
                tick: 150,
                node: 0,
                kind: FaultRecordKind::Crash,
                peer: None,
            }),
        ];
        let summary = RunSummary::from_events(&header(), &events);
        // The crash never recovers: down (150, 200 = horizon).
        assert!((summary.rounds[0].availability.unwrap() - 1.0).abs() < 1e-12);
        assert!((summary.rounds[1].availability.unwrap() - 0.875).abs() < 1e-12);
        assert_eq!(summary.faults.unwrap().recoveries, 0);
    }

    #[test]
    fn fault_free_summaries_omit_fault_fields_entirely() {
        let events = vec![TraceEvent::Round(round(1, 1))];
        let summary = RunSummary::from_events(&header(), &events);
        assert!(summary.faults.is_none());
        assert!(summary.rounds[0].fault_drops.is_none());
        let json = summary.to_json_pretty();
        assert!(!json.contains("fault"), "no fault keys in fault-free JSON");
        assert!(!json.contains("availability"));
    }

    #[test]
    fn threat_records_aggregate_across_seeds() {
        use crate::events::ThreatRecord;
        let threat = |seed| {
            TraceEvent::Threat(ThreatRecord {
                seed,
                attacker: "coalition:0..2".into(),
                defense: Some("gaussian:0.1".into()),
                observed_nodes: 3,
                nodes: 8,
                observations: 6,
            })
        };
        let events = vec![
            threat(1),
            TraceEvent::Round(round(1, 1)),
            threat(2),
            TraceEvent::Round(round(2, 1)),
        ];
        let summary = RunSummary::from_events(&header(), &events);
        let threat = summary.threat.unwrap();
        assert_eq!(threat.attacker, "coalition:0..2");
        assert_eq!(threat.defense.as_deref(), Some("gaussian:0.1"));
        assert_eq!(threat.nodes, 8);
        assert!((threat.mean_observed_nodes - 3.0).abs() < 1e-12);
        assert_eq!(threat.observations, 12, "summed across both seeds");
        assert_eq!(summary.seeds, vec![1, 2]);
    }

    #[test]
    fn threat_free_summaries_omit_threat_fields_entirely() {
        let events = vec![TraceEvent::Round(round(1, 1))];
        let summary = RunSummary::from_events(&header(), &events);
        assert!(summary.threat.is_none());
        let json = summary.to_json_pretty();
        assert!(!json.contains("threat"), "no threat keys: {json}");
        assert!(!json.contains("attacker"));
        assert!(!json.contains("defense"));
    }

    #[test]
    fn summary_json_is_deterministic() {
        let events = vec![TraceEvent::Round(round(1, 1))];
        let a = RunSummary::from_events(&header(), &events).to_json_pretty();
        let b = RunSummary::from_events(&header(), &events).to_json_pretty();
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        assert!(a.contains("\"fan_in\""));
    }
}

//! End-of-run manifests.
//!
//! A [`Manifest`] is the run's summary document: config identity, seeds,
//! thread count, best-effort git revision, per-phase wall-clock timings
//! and bench-comparable totals. Unlike the event stream it *does* contain
//! timings, so `manifest.json` is not expected to be byte-identical
//! across reruns — `events.jsonl` is.

use serde::Serialize;

use crate::phase::PhaseTimings;

/// Summary of a traced run, serialized pretty-printed to `manifest.json`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Manifest {
    /// Trace schema version (matches the event stream header).
    pub schema: u32,
    /// Experiment label.
    pub label: String,
    /// FNV-1a-64 of the config's canonical JSON, zero-padded hex.
    pub config_hash: String,
    /// Every experiment seed in the run, ascending.
    pub seeds: Vec<u64>,
    /// Worker threads the runner was configured with.
    pub threads: usize,
    /// `git describe --always --dirty` of the working tree; `null` when
    /// git or the repository is unavailable (no `.git`, shallow clone).
    pub git: Option<String>,
    /// Whether the run finished all phases. Partial traces (run aborted
    /// mid-phase) are finalized with `complete: false` so they remain
    /// analyzable.
    pub complete: bool,
    /// End-to-end wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Per-phase busy seconds, canonical phase order. Overlapping phases
    /// (simulate/eval under the pipelined runner) may sum past `wall_secs`.
    pub phases: Vec<PhaseEntry>,
    /// Run-wide counters comparable across benchmark runs.
    pub totals: Totals,
}

/// One `phases` entry: a phase name and its accumulated seconds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseEntry {
    /// Stable phase name (see `Phase::name`).
    pub phase: &'static str,
    /// Accumulated busy seconds.
    pub secs: f64,
}

impl PhaseEntry {
    /// Flattens timings into manifest entries in canonical order.
    pub fn from_timings(timings: &PhaseTimings) -> Vec<PhaseEntry> {
        timings
            .iter()
            .map(|(phase, secs)| PhaseEntry {
                phase: phase.name(),
                secs,
            })
            .collect()
    }
}

/// Bench-comparable totals over every seed of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Totals {
    /// Communication rounds simulated (summed over seeds).
    pub rounds: u64,
    /// Rounds that were evaluated.
    pub evals: u64,
    /// Model transmissions attempted.
    pub messages_sent: u64,
    /// Transmissions lost to failure injection.
    pub messages_dropped: u64,
    /// Local SGD epochs run.
    pub local_updates: u64,
}

/// FNV-1a 64-bit hash — the config fingerprint. Dependency-free and
/// stable across platforms/versions, unlike `DefaultHasher`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    bytes.iter().fold(BASIS, |hash, &byte| {
        (hash ^ u64::from(byte)).wrapping_mul(PRIME)
    })
}

/// Best-effort `git describe --always --dirty` of the current working
/// directory; `None` when git or the repository is unavailable.
pub fn git_describe() -> Option<String> {
    git_describe_in(std::path::Path::new("."))
}

/// Best-effort `git describe --always --dirty` run inside `dir`; `None`
/// when git is missing, `dir` is not a repository (or a shallow clone with
/// nothing describable), or the output is empty — the manifest records
/// `"git": null` in all of those cases rather than failing the run.
pub fn git_describe_in(dir: &std::path::Path) -> Option<String> {
    let output = std::process::Command::new("git")
        .arg("-C")
        .arg(dir)
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let text = String::from_utf8(output.stdout).ok()?;
    let trimmed = text.trim();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv1a_distinguishes_nearby_configs() {
        assert_ne!(fnv1a(b"{\"seed\":1}"), fnv1a(b"{\"seed\":2}"));
    }

    #[test]
    fn git_describe_outside_a_repo_is_none_not_an_error() {
        let dir = std::env::temp_dir().join(format!("glmia-no-repo-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(git_describe_in(&dir), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_serializes_missing_git_as_null() {
        let manifest = Manifest {
            schema: crate::events::SCHEMA_VERSION,
            label: "quick".into(),
            config_hash: "0000000000000001".into(),
            seeds: vec![1],
            threads: 1,
            git: None,
            complete: false,
            wall_secs: 0.0,
            phases: Vec::new(),
            totals: Totals::default(),
        };
        let json = serde_json::to_string(&manifest).unwrap();
        assert!(json.contains("\"git\":null"), "{json}");
        assert!(json.contains("\"complete\":false"), "{json}");
    }

    #[test]
    fn phase_entries_follow_canonical_order() {
        let mut timings = PhaseTimings::new();
        timings.add(Phase::Eval, 1.0);
        let entries = PhaseEntry::from_timings(&timings);
        let names: Vec<&str> = entries.iter().map(|e| e.phase).collect();
        assert_eq!(
            names,
            [
                "partition",
                "topology",
                "simulate",
                "eval",
                "spectral",
                "aggregate"
            ]
        );
        assert_eq!(entries[3].secs, 1.0);
    }
}

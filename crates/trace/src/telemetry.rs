//! An observer that drains telemetry counters at round barriers.

use glmia_telemetry::{CounterSnapshot, Gauge, Instrument, Telemetry};

use glmia_gossip::{RoundSnapshot, SimObserver};

use crate::events::TelemetryRoundRecord;

/// Folds the telemetry registry's simulation-thread counters into one
/// [`TelemetryRoundRecord`] per round.
///
/// At every round snapshot the observer reads the registry, subtracts the
/// previous barrier's snapshot, and records the deltas of the gossip and
/// runner instruments plus the round's queue-depth high-water mark. Only
/// counters incremented on the simulation thread are drained per-round —
/// worker-thread instruments (MIA scores, eval caches, spectral matvecs)
/// land in the end-of-run totals instead — so the resulting side-stream
/// is byte-identical at any thread count.
///
/// Construct with `None` for telemetry-off runs: the observer then does
/// nothing at all, keeping the hot path free of branches on record
/// storage.
#[derive(Debug, Default)]
pub struct TelemetryObserver {
    telemetry: Option<Telemetry>,
    last: CounterSnapshot,
    records: Vec<TelemetryRoundRecord>,
}

impl TelemetryObserver {
    /// An observer draining `telemetry` (or inert when `None`).
    #[must_use]
    pub fn new(telemetry: Option<Telemetry>) -> Self {
        let last = telemetry
            .as_ref()
            .map(Telemetry::counters)
            .unwrap_or_default();
        Self {
            telemetry,
            last,
            records: Vec::new(),
        }
    }

    /// Per-round records drained so far (seed stamped as 0; the trace
    /// assembly restamps them).
    #[must_use]
    pub fn records(&self) -> &[TelemetryRoundRecord] {
        &self.records
    }

    /// Consumes the observer, yielding its per-round records.
    #[must_use]
    pub fn into_records(self) -> Vec<TelemetryRoundRecord> {
        self.records
    }
}

impl SimObserver for TelemetryObserver {
    fn on_snapshot(&mut self, snapshot: &RoundSnapshot) {
        let Some(telemetry) = &self.telemetry else {
            return;
        };
        let now = telemetry.counters();
        let delta = now.delta_since(&self.last);
        self.records.push(TelemetryRoundRecord {
            seed: 0,
            round: snapshot.round,
            sends: delta.get(Instrument::GossipSends),
            delivers: delta.get(Instrument::GossipDelivers),
            merges: delta.get(Instrument::GossipMerges),
            drops: delta.get(Instrument::GossipDrops),
            snapshot_hits: delta.get(Instrument::GossipSnapshotHits),
            snapshot_misses: delta.get(Instrument::GossipSnapshotMisses),
            events: delta.get(Instrument::RunnerEvents),
            queue_depth_max: telemetry.take_gauge_max(Gauge::QueueDepth),
        });
        self.last = now;
    }
}

/// Lets a borrowed observer ride along in an observer chain.
impl SimObserver for &mut TelemetryObserver {
    fn on_snapshot(&mut self, snapshot: &RoundSnapshot) {
        (**self).on_snapshot(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glmia_telemetry::{count, gauge_set};

    fn snap(round: usize) -> RoundSnapshot {
        RoundSnapshot {
            round,
            tick: round as u64 * 100,
            models: Vec::new(),
            shared_models: Vec::new(),
        }
    }

    #[test]
    fn inert_without_a_telemetry_handle() {
        let mut obs = TelemetryObserver::new(None);
        obs.on_snapshot(&snap(1));
        assert!(obs.records().is_empty());
    }

    #[test]
    fn drains_per_round_deltas_and_queue_high_water() {
        let telemetry = Telemetry::new();
        let mut obs = TelemetryObserver::new(Some(telemetry.clone()));
        let _scope = telemetry.enter();

        count(Instrument::GossipSends, 4);
        count(Instrument::GossipDelivers, 3);
        count(Instrument::RunnerEvents, 9);
        gauge_set(Gauge::QueueDepth, 7);
        gauge_set(Gauge::QueueDepth, 2);
        obs.on_snapshot(&snap(1));

        count(Instrument::GossipSends, 2);
        gauge_set(Gauge::QueueDepth, 3);
        obs.on_snapshot(&snap(2));

        let records = obs.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].round, 1);
        assert_eq!(records[0].sends, 4);
        assert_eq!(records[0].delivers, 3);
        assert_eq!(records[0].events, 9);
        assert_eq!(records[0].queue_depth_max, 7);
        assert_eq!(records[1].sends, 2, "second round sees only its delta");
        assert_eq!(records[1].delivers, 0);
        assert_eq!(
            records[1].queue_depth_max, 3,
            "gauge max resets at each barrier"
        );
    }
}

//! Monotonic phase timers.
//!
//! An experiment run decomposes into a fixed set of [`Phase`]s; a
//! [`PhaseTimings`] accumulates wall-clock seconds per phase via the
//! telemetry clock shim ([`glmia_telemetry::clock`] — monotonic, immune
//! to clock adjustments). Timings are *observability output only*: they
//! are reported in the run manifest and never fed back into the
//! simulation, so they cannot perturb experiment numbers.
//!
//! Under the pipelined runner, `Simulate` and `Eval` overlap in wall
//! time; per-phase seconds measure each phase's own busy time and may sum
//! to more than the run's wall-clock.

use glmia_telemetry::clock;

/// A stage of an experiment run, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Building the federation: dataset synthesis and node partitioning.
    Partition,
    /// Constructing the initial communication graph.
    Topology,
    /// Driving the discrete-event gossip simulation.
    Simulate,
    /// Per-round evaluation: accuracy, MIA replay, generalization error.
    Eval,
    /// Post-run spectral analysis of the empirical mixing matrices.
    Spectral,
    /// Cross-seed aggregation during replication.
    Aggregate,
}

impl Phase {
    /// All phases, in canonical reporting order.
    pub const ALL: [Phase; 6] = [
        Phase::Partition,
        Phase::Topology,
        Phase::Simulate,
        Phase::Eval,
        Phase::Spectral,
        Phase::Aggregate,
    ];

    /// Stable lowercase name used in manifests.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Partition => "partition",
            Phase::Topology => "topology",
            Phase::Simulate => "simulate",
            Phase::Eval => "eval",
            Phase::Spectral => "spectral",
            Phase::Aggregate => "aggregate",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Partition => 0,
            Phase::Topology => 1,
            Phase::Simulate => 2,
            Phase::Eval => 3,
            Phase::Spectral => 4,
            Phase::Aggregate => 5,
        }
    }
}

/// Accumulated seconds per [`Phase`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    secs: [f64; 6],
}

impl PhaseTimings {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `secs` to `phase`'s accumulated time.
    pub fn add(&mut self, phase: Phase, secs: f64) {
        self.secs[phase.index()] += secs;
    }

    /// Runs `f`, charging its wall-clock duration to `phase`.
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = clock::now();
        let out = f();
        self.add(phase, start.elapsed_secs());
        out
    }

    /// Accumulated seconds for `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        self.secs[phase.index()]
    }

    /// Sum over all phases.
    pub fn total(&self) -> f64 {
        self.secs.iter().sum()
    }

    /// Folds `other`'s accumulations into `self`.
    pub fn merge(&mut self, other: &PhaseTimings) {
        for (acc, x) in self.secs.iter_mut().zip(other.secs) {
            *acc += x;
        }
    }

    /// `(phase, seconds)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, f64)> + '_ {
        Phase::ALL.iter().map(move |&p| (p, self.get(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get_accumulate_per_phase() {
        let mut t = PhaseTimings::new();
        t.add(Phase::Simulate, 1.5);
        t.add(Phase::Simulate, 0.5);
        t.add(Phase::Eval, 0.25);
        assert_eq!(t.get(Phase::Simulate), 2.0);
        assert_eq!(t.get(Phase::Eval), 0.25);
        assert_eq!(t.get(Phase::Partition), 0.0);
        assert_eq!(t.total(), 2.25);
    }

    #[test]
    fn time_charges_elapsed_and_returns_value() {
        let mut t = PhaseTimings::new();
        let out = t.time(Phase::Topology, || 41 + 1);
        assert_eq!(out, 42);
        assert!(t.get(Phase::Topology) >= 0.0);
        assert_eq!(t.get(Phase::Simulate), 0.0);
    }

    #[test]
    fn merge_sums_componentwise() {
        let mut a = PhaseTimings::new();
        a.add(Phase::Partition, 1.0);
        let mut b = PhaseTimings::new();
        b.add(Phase::Partition, 2.0);
        b.add(Phase::Aggregate, 3.0);
        a.merge(&b);
        assert_eq!(a.get(Phase::Partition), 3.0);
        assert_eq!(a.get(Phase::Aggregate), 3.0);
    }

    #[test]
    fn iter_walks_canonical_order() {
        let t = PhaseTimings::new();
        let names: Vec<&str> = t.iter().map(|(p, _)| p.name()).collect();
        assert_eq!(
            names,
            [
                "partition",
                "topology",
                "simulate",
                "eval",
                "spectral",
                "aggregate"
            ]
        );
    }
}

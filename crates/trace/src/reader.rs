//! Streaming replay of `events.jsonl`.
//!
//! [`TraceReader`] wraps any [`BufRead`] source, eagerly validates the
//! header line (schema version included), and then yields one
//! [`TraceEvent`] per line. Every failure is a typed [`TraceReadError`]
//! carrying the 1-based line number it occurred on, so a corrupted trace
//! points straight at the offending line.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

use crate::events::{
    HeaderRecord, TraceEvent, FAULT_SCHEMA_VERSION, SCHEMA_VERSION, THREAT_SCHEMA_VERSION,
};

/// A failure while reading a trace stream. Line numbers are 1-based.
#[derive(Debug)]
pub enum TraceReadError {
    /// Underlying I/O failure (opening the file or reading a line).
    Io(io::Error),
    /// The stream is empty or its first line is not a `Header` record.
    MissingHeader,
    /// A line was not valid JSON for any known record shape.
    Malformed {
        /// Line the parse failed on.
        line: usize,
        /// Parser diagnostic.
        message: String,
    },
    /// The final line is missing its trailing newline — the write was cut
    /// off mid-record, so the line cannot be trusted.
    Truncated {
        /// The incomplete final line.
        line: usize,
    },
    /// The header declares a schema version this reader does not support.
    UnsupportedSchema {
        /// Line of the header (always 1).
        line: usize,
        /// Schema version found in the stream.
        found: u32,
        /// Highest schema version this reader supports.
        supported: u32,
    },
    /// A float field parsed to an infinity or NaN (e.g. an out-of-range
    /// literal like `1e999`), which no well-formed writer emits.
    NonFiniteValue {
        /// Line of the offending record.
        line: usize,
        /// Name of the non-finite field.
        field: &'static str,
    },
    /// A `Round` record's index did not increase strictly within its seed.
    OutOfOrderRound {
        /// Line of the offending record.
        line: usize,
        /// Seed whose round sequence broke.
        seed: u64,
        /// Last round seen for this seed.
        prev: usize,
        /// Round found on this line.
        found: usize,
    },
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(err) => write!(f, "trace I/O error: {err}"),
            Self::MissingHeader => write!(f, "trace line 1: expected a Header record"),
            Self::Malformed { line, message } => {
                write!(f, "trace line {line}: malformed record: {message}")
            }
            Self::Truncated { line } => {
                write!(f, "trace line {line}: truncated final line (no newline)")
            }
            Self::UnsupportedSchema {
                line,
                found,
                supported,
            } => write!(
                f,
                "trace line {line}: unsupported schema version {found} (reader supports {supported})"
            ),
            Self::NonFiniteValue { line, field } => {
                write!(f, "trace line {line}: non-finite value in field `{field}`")
            }
            Self::OutOfOrderRound {
                line,
                seed,
                prev,
                found,
            } => write!(
                f,
                "trace line {line}: out-of-order round for seed {seed}: {found} after {prev}"
            ),
        }
    }
}

impl std::error::Error for TraceReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceReadError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

/// Streaming `events.jsonl` reader: validates the header eagerly, then
/// yields data records one line at a time via [`Iterator`].
///
/// Validation performed per line: JSON shape (line-numbered
/// [`Malformed`](TraceReadError::Malformed) errors), trailing-newline
/// presence on the final line
/// ([`Truncated`](TraceReadError::Truncated)), finite float fields
/// ([`NonFiniteValue`](TraceReadError::NonFiniteValue)), and strictly
/// increasing `Round` indices per seed
/// ([`OutOfOrderRound`](TraceReadError::OutOfOrderRound)).
#[derive(Debug)]
pub struct TraceReader<R> {
    inner: R,
    header: HeaderRecord,
    /// 1-based number of the last line read.
    line: usize,
    last_round: BTreeMap<u64, usize>,
    failed: bool,
}

impl TraceReader<BufReader<File>> {
    /// Opens `events.jsonl` at `path` and validates its header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceReadError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps a reader and validates the first (header) line.
    pub fn new(mut inner: R) -> Result<Self, TraceReadError> {
        let mut first = String::new();
        let bytes = inner.read_line(&mut first)?;
        if bytes == 0 {
            return Err(TraceReadError::MissingHeader);
        }
        if !first.ends_with('\n') {
            return Err(TraceReadError::Truncated { line: 1 });
        }
        let event: TraceEvent =
            serde_json::from_str(first.trim_end()).map_err(|err| TraceReadError::Malformed {
                line: 1,
                message: err.to_string(),
            })?;
        let TraceEvent::Header(header) = event else {
            return Err(TraceReadError::MissingHeader);
        };
        // The baseline, fault-extended, and threat-extended schemas are all
        // readable; anything else is from a writer this reader predates.
        if header.schema != SCHEMA_VERSION
            && header.schema != FAULT_SCHEMA_VERSION
            && header.schema != THREAT_SCHEMA_VERSION
        {
            return Err(TraceReadError::UnsupportedSchema {
                line: 1,
                found: header.schema,
                supported: THREAT_SCHEMA_VERSION,
            });
        }
        Ok(Self {
            inner,
            header,
            line: 1,
            last_round: BTreeMap::new(),
            failed: false,
        })
    }

    /// The validated stream header.
    pub fn header(&self) -> &HeaderRecord {
        &self.header
    }
}

/// The first non-finite float field of `event`, if any. JSON itself cannot
/// spell `NaN`, but out-of-range literals like `1e999` parse to infinity,
/// so corrupted streams are caught here rather than poisoning summaries.
fn non_finite_field(event: &TraceEvent) -> Option<&'static str> {
    fn first_bad(fields: &[(&'static str, f64)]) -> Option<&'static str> {
        fields
            .iter()
            .find(|(_, value)| !value.is_finite())
            .map(|(name, _)| *name)
    }
    match event {
        TraceEvent::Topology(t) => first_bad(&[("lambda2_analytic", t.lambda2_analytic)]),
        TraceEvent::Mixing(m) => first_bad(&[
            ("lambda2_round", m.lambda2_round),
            ("lambda2_cumulative", m.lambda2_cumulative),
        ]),
        TraceEvent::NodeEval(e) => first_bad(&[
            ("test_accuracy", e.test_accuracy),
            ("train_accuracy", e.train_accuracy),
            ("mia_vulnerability", e.mia_vulnerability),
            ("mia_auc", e.mia_auc),
            ("gen_error", e.gen_error),
        ]),
        TraceEvent::Eval(e) => first_bad(&[
            ("test_accuracy", e.test_accuracy),
            ("train_accuracy", e.train_accuracy),
            ("mia_vulnerability", e.mia_vulnerability),
            ("mia_auc", e.mia_auc),
            ("gen_error", e.gen_error),
        ]),
        TraceEvent::Header(_)
        | TraceEvent::Threat(_)
        | TraceEvent::Round(_)
        | TraceEvent::Fault(_) => None,
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceEvent, TraceReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let mut buf = String::new();
        let bytes = match self.inner.read_line(&mut buf) {
            Ok(bytes) => bytes,
            Err(err) => {
                self.failed = true;
                return Some(Err(err.into()));
            }
        };
        if bytes == 0 {
            return None;
        }
        self.line += 1;
        if !buf.ends_with('\n') {
            self.failed = true;
            return Some(Err(TraceReadError::Truncated { line: self.line }));
        }
        let event: TraceEvent = match serde_json::from_str(buf.trim_end()) {
            Ok(event) => event,
            Err(err) => {
                self.failed = true;
                return Some(Err(TraceReadError::Malformed {
                    line: self.line,
                    message: err.to_string(),
                }));
            }
        };
        if let Some(field) = non_finite_field(&event) {
            self.failed = true;
            return Some(Err(TraceReadError::NonFiniteValue {
                line: self.line,
                field,
            }));
        }
        match &event {
            TraceEvent::Header(_) => {
                self.failed = true;
                return Some(Err(TraceReadError::Malformed {
                    line: self.line,
                    message: "unexpected second Header record".into(),
                }));
            }
            TraceEvent::Round(round) => {
                let prev = self.last_round.get(&round.seed).copied();
                if let Some(prev) = prev {
                    if round.round <= prev {
                        self.failed = true;
                        return Some(Err(TraceReadError::OutOfOrderRound {
                            line: self.line,
                            seed: round.seed,
                            prev,
                            found: round.round,
                        }));
                    }
                }
                self.last_round.insert(round.seed, round.round);
            }
            _ => {}
        }
        Some(Ok(event))
    }
}

/// Reads and fully validates `events.jsonl` at `path`, returning the
/// header and every data record.
pub fn read_trace(
    path: impl AsRef<Path>,
) -> Result<(HeaderRecord, Vec<TraceEvent>), TraceReadError> {
    let reader = TraceReader::open(path)?;
    let header = reader.header().clone();
    let events = reader.collect::<Result<Vec<_>, _>>()?;
    Ok((header, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvalRecord, RoundCounters, RunTrace};
    use std::io::Cursor;

    fn sample_trace() -> RunTrace {
        let mut trace = RunTrace::new("reader-test", 0xfeed, 1);
        let rounds: Vec<RoundCounters> = (1..=3)
            .map(|round| RoundCounters {
                round,
                tick: round as u64 * 100,
                sends: 4,
                delivers: 4,
                merges: 2,
                models_merged: 4,
                ..RoundCounters::default()
            })
            .collect();
        let eval = EvalRecord {
            seed: 5,
            round: 3,
            test_accuracy: 0.5,
            train_accuracy: 0.6,
            mia_vulnerability: 0.55,
            mia_auc: 0.58,
            gen_error: 0.1,
        };
        trace.add_seed_run(5, &rounds, &[eval]);
        trace
    }

    fn read_all(jsonl: &str) -> Result<Vec<TraceEvent>, TraceReadError> {
        TraceReader::new(Cursor::new(jsonl.as_bytes()))?.collect()
    }

    #[test]
    fn replays_a_written_stream_losslessly() {
        let trace = sample_trace();
        let jsonl = trace.events_jsonl();
        let reader = TraceReader::new(Cursor::new(jsonl.as_bytes())).unwrap();
        assert_eq!(reader.header().label, "reader-test");
        assert_eq!(reader.header().schema, SCHEMA_VERSION);
        let events: Vec<TraceEvent> = reader.map(Result::unwrap).collect();
        assert_eq!(events, trace.events());
    }

    #[test]
    fn empty_stream_is_missing_header() {
        assert!(matches!(
            TraceReader::new(Cursor::new(b"" as &[u8])).err(),
            Some(TraceReadError::MissingHeader)
        ));
    }

    #[test]
    fn data_first_stream_is_missing_header() {
        let jsonl = sample_trace().events_jsonl();
        // Drop the header line.
        let rest: String = jsonl.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert!(matches!(
            TraceReader::new(Cursor::new(rest.as_bytes())).err(),
            Some(TraceReadError::MissingHeader)
        ));
    }

    #[test]
    fn unknown_schema_is_rejected_with_line_number() {
        let jsonl = sample_trace()
            .events_jsonl()
            .replacen("\"schema\":2", "\"schema\":99", 1);
        match TraceReader::new(Cursor::new(jsonl.as_bytes())).err() {
            Some(TraceReadError::UnsupportedSchema { line, found, .. }) => {
                assert_eq!(line, 1);
                assert_eq!(found, 99);
            }
            other => panic!("expected UnsupportedSchema, got {other:?}"),
        }
    }

    #[test]
    fn fault_schema_streams_replay_losslessly() {
        use crate::{FaultRecord, FaultRecordKind};
        let mut trace = RunTrace::new("fault-test", 0xbeef, 1);
        let rounds = [
            RoundCounters {
                round: 1,
                tick: 100,
                sends: 3,
                drops: 1,
                ..RoundCounters::default()
            },
            RoundCounters {
                round: 2,
                tick: 200,
                sends: 3,
                ..RoundCounters::default()
            },
        ];
        let faults = [
            FaultRecord {
                seed: 0,
                round: 1,
                tick: 40,
                node: 2,
                kind: FaultRecordKind::Crash,
                peer: None,
            },
            FaultRecord {
                seed: 0,
                round: 2,
                tick: 170,
                node: 2,
                kind: FaultRecordKind::Recover,
                peer: None,
            },
        ];
        trace.add_seed_run_full(5, None, None, &rounds, &faults, &[], &[], &[]);
        let jsonl = trace.events_jsonl();
        let reader = TraceReader::new(Cursor::new(jsonl.as_bytes())).unwrap();
        assert_eq!(reader.header().schema, FAULT_SCHEMA_VERSION);
        let events: Vec<TraceEvent> = reader.map(Result::unwrap).collect();
        assert_eq!(events, trace.events());
    }

    #[test]
    fn threat_schema_streams_replay_losslessly() {
        use crate::ThreatRecord;
        let mut trace = RunTrace::new("threat-test", 0xcafe, 1);
        let rounds = [RoundCounters {
            round: 1,
            tick: 100,
            sends: 3,
            ..RoundCounters::default()
        }];
        let threat = ThreatRecord {
            seed: 0,
            attacker: "neighbors:0,2".into(),
            defense: Some("mask:0.25".into()),
            observed_nodes: 3,
            nodes: 6,
            observations: 3,
        };
        trace.add_seed_run_full(5, None, Some(threat), &rounds, &[], &[], &[], &[]);
        let jsonl = trace.events_jsonl();
        let reader = TraceReader::new(Cursor::new(jsonl.as_bytes())).unwrap();
        assert_eq!(reader.header().schema, THREAT_SCHEMA_VERSION);
        let events: Vec<TraceEvent> = reader.map(Result::unwrap).collect();
        assert_eq!(events, trace.events());
    }

    #[test]
    fn non_finite_float_fields_are_rejected_with_field_name() {
        let jsonl = sample_trace().events_jsonl();
        // The Eval record is the last line; blow up its gen_error field.
        let broken = jsonl.replacen("\"gen_error\":0.1", "\"gen_error\":1e999", 1);
        assert_ne!(broken, jsonl, "substitution must hit");
        let total_lines = broken.lines().count();
        // Depending on the JSON parser's overflow policy `1e999` either
        // parses to infinity (caught by the finite check) or is rejected as
        // out of range (Malformed); both are typed, line-numbered errors.
        match read_all(&broken).err() {
            Some(TraceReadError::NonFiniteValue { line, field }) => {
                assert_eq!(line, total_lines);
                assert_eq!(field, "gen_error");
            }
            Some(TraceReadError::Malformed { line, .. }) => assert_eq!(line, total_lines),
            other => panic!("expected a typed per-line error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_final_line_names_its_line() {
        let mut jsonl = sample_trace().events_jsonl();
        let total_lines = jsonl.lines().count();
        jsonl.truncate(jsonl.len() - 10); // chop mid-record, newline gone
        match read_all(&jsonl).err() {
            Some(TraceReadError::Truncated { line }) => assert_eq!(line, total_lines),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn malformed_line_names_its_line() {
        let jsonl = sample_trace().events_jsonl();
        let mut lines: Vec<String> = jsonl.lines().map(String::from).collect();
        lines[2] = "{\"type\":\"Round\",\"seed\":oops".into();
        let broken: String = lines.iter().map(|l| format!("{l}\n")).collect();
        match read_all(&broken).err() {
            Some(TraceReadError::Malformed { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn out_of_order_rounds_are_rejected_per_seed() {
        let jsonl = sample_trace().events_jsonl();
        let mut lines: Vec<String> = jsonl.lines().map(String::from).collect();
        // Swap the round-2 and round-3 lines (indices 2 and 3).
        lines.swap(2, 3);
        let broken: String = lines.iter().map(|l| format!("{l}\n")).collect();
        match read_all(&broken).err() {
            Some(TraceReadError::OutOfOrderRound {
                line,
                seed,
                prev,
                found,
            }) => {
                assert_eq!(line, 4);
                assert_eq!(seed, 5);
                assert_eq!(prev, 3);
                assert_eq!(found, 2);
            }
            other => panic!("expected OutOfOrderRound, got {other:?}"),
        }
    }

    #[test]
    fn interleaved_seeds_keep_independent_round_sequences() {
        let mut trace = RunTrace::new("multi", 1, 1);
        let round = |round| RoundCounters {
            round,
            tick: round as u64 * 100,
            ..RoundCounters::default()
        };
        trace.add_seed_run(1, &[round(1), round(2)], &[]);
        trace.add_seed_run(2, &[round(1), round(2)], &[]);
        assert!(read_all(&trace.events_jsonl()).is_ok());
    }

    #[test]
    fn second_header_is_malformed() {
        let jsonl = sample_trace().events_jsonl();
        let header_line = jsonl.lines().next().unwrap();
        let doubled = format!("{jsonl}{header_line}\n");
        assert!(matches!(
            read_all(&doubled).err(),
            Some(TraceReadError::Malformed { .. })
        ));
    }

    #[test]
    fn read_trace_round_trips_via_disk() {
        let dir = std::env::temp_dir().join(format!("glmia-reader-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = sample_trace();
        let path = dir.join("events.jsonl");
        std::fs::write(&path, trace.events_jsonl()).unwrap();
        let (header, events) = read_trace(&path).unwrap();
        assert_eq!(header.config_hash, trace.config_hash_hex());
        assert_eq!(events, trace.events());
        std::fs::remove_dir_all(&dir).ok();
    }
}

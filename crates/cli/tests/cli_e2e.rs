//! End-to-end tests of the `glmia` binary.

use std::process::Command;

fn glmia(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_glmia"))
        .args(args)
        .output()
        .expect("running glmia binary")
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = glmia(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SUBCOMMANDS"));
    assert!(stdout.contains("lambda2"));
}

#[test]
fn no_args_prints_usage() {
    let out = glmia(&[]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_subcommand_fails() {
    let out = glmia(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn unknown_option_fails_with_message() {
    let out = glmia(&["run", "--nodse", "8"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown options"));
}

#[test]
fn topo_reports_statistics() {
    let out = glmia(&["topo", "--nodes", "16", "--k", "4", "--seed", "3"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("connected: true"));
    assert!(stdout.contains("λ₂(W)"));
}

#[test]
fn lambda2_emits_series() {
    let out = glmia(&[
        "lambda2",
        "--nodes",
        "16",
        "--k",
        "2",
        "--iterations",
        "4",
        "--runs",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Header plus rule plus 4 iterations.
    assert_eq!(stdout.lines().count(), 6, "{stdout}");
}

#[test]
fn run_small_experiment_emits_json() {
    let out = glmia(&[
        "run",
        "--dataset",
        "fashion",
        "--nodes",
        "6",
        "--k",
        "2",
        "--rounds",
        "2",
        "--eval-every",
        "1",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value: serde_json::Value =
        serde_json::from_str(&stdout).expect("valid JSON from --json run");
    assert_eq!(value["rounds"].as_array().map(Vec::len), Some(2));
}

#[test]
fn usage_errors_exit_with_code_2() {
    assert_eq!(glmia(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(glmia(&["run", "--nodse", "8"]).status.code(), Some(2));
    assert_eq!(
        glmia(&["run", "--k", "1", "--k", "2"]).status.code(),
        Some(2)
    );
}

#[test]
fn value_and_runtime_errors_exit_with_code_1() {
    let out = glmia(&["run", "--threads", "lots"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid value for --threads"));
    assert_eq!(glmia(&["run", "--dataset", "mnist"]).status.code(), Some(1));
    assert_eq!(glmia(&["run", "--preset", "huge"]).status.code(), Some(1));
}

#[test]
fn trace_flag_writes_jsonl_and_manifest_without_changing_results() {
    let dir = std::env::temp_dir().join(format!("glmia-cli-trace-{}", std::process::id()));
    let traced = glmia(&[
        "run",
        "--preset",
        "quick",
        "--seed",
        "5",
        "--json",
        "--trace",
        dir.to_str().unwrap(),
    ]);
    assert!(
        traced.status.success(),
        "{}",
        String::from_utf8_lossy(&traced.stderr)
    );

    let events = std::fs::read_to_string(dir.join("events.jsonl")).expect("events.jsonl written");
    let header = events.lines().next().expect("non-empty event stream");
    assert!(header.contains("\"schema\":2"), "{header}");
    assert!(events.lines().count() > 1, "events follow the header");

    let manifest: serde_json::Value = serde_json::from_str(
        &std::fs::read_to_string(dir.join("manifest.json")).expect("manifest.json written"),
    )
    .expect("valid manifest JSON");
    assert_eq!(manifest["schema"].as_u64(), Some(2));
    assert_eq!(
        manifest["complete"],
        serde_json::Value::Bool(true),
        "a finished run is marked complete"
    );
    assert_eq!(
        manifest["seeds"].as_array().map(Vec::len),
        Some(1),
        "one seed was run"
    );
    assert_eq!(
        manifest["totals"]["rounds"].as_u64(),
        Some(5),
        "quick preset runs 5 rounds"
    );
    assert_eq!(manifest["phases"].as_array().map(Vec::len), Some(6));

    // Tracing must not perturb the experiment itself.
    let plain = glmia(&["run", "--preset", "quick", "--seed", "5", "--json"]);
    assert!(plain.status.success());
    assert_eq!(traced.stdout, plain.stdout);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_renders_a_recorded_trace_in_every_format() {
    let dir = std::env::temp_dir().join(format!("glmia-cli-analyze-{}", std::process::id()));
    let run = glmia(&[
        "run",
        "--preset",
        "quick",
        "--seed",
        "11",
        "--json",
        "--trace",
        dir.to_str().unwrap(),
    ]);
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );

    let md = glmia(&["analyze", dir.to_str().unwrap()]);
    assert_eq!(md.status.code(), Some(0));
    let md_out = String::from_utf8_lossy(&md.stdout);
    assert!(md_out.contains("# Run report:"), "{md_out}");
    assert!(md_out.contains("## Empirical mixing spectrum"), "{md_out}");

    let summary = std::fs::read_to_string(dir.join("summary.json")).expect("summary.json written");
    assert!(!summary.is_empty());
    let value: serde_json::Value = serde_json::from_str(&summary).expect("valid summary JSON");
    assert_eq!(value["schema"].as_u64(), Some(2));
    assert!(value["rounds"].as_array().is_some_and(|r| !r.is_empty()));
    let report = std::fs::read_to_string(dir.join("report.md")).expect("report.md written");
    assert_eq!(
        report, md_out,
        "printed markdown matches the written report"
    );

    let json = glmia(&["analyze", dir.to_str().unwrap(), "--format", "json"]);
    assert_eq!(json.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&json.stdout), summary);

    let prom = glmia(&["analyze", dir.to_str().unwrap(), "--format", "prometheus"]);
    assert_eq!(prom.status.code(), Some(0));
    let prom_out = String::from_utf8_lossy(&prom.stdout);
    assert!(
        prom_out.contains("# TYPE glmia_rounds_total counter"),
        "{prom_out}"
    );
    assert!(
        prom_out.contains("glmia_merge_fanin_bucket{le=\"+Inf\"}"),
        "{prom_out}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_output_is_byte_identical_across_thread_counts() {
    let base = std::env::temp_dir().join(format!("glmia-cli-threads-{}", std::process::id()));
    let mut summaries = Vec::new();
    for threads in ["1", "8"] {
        let dir = base.join(threads);
        let run = glmia(&[
            "run",
            "--preset",
            "quick",
            "--seed",
            "13",
            "--threads",
            threads,
            "--json",
            "--trace",
            dir.to_str().unwrap(),
        ]);
        assert!(
            run.status.success(),
            "{}",
            String::from_utf8_lossy(&run.stderr)
        );
        let analyzed = glmia(&["analyze", dir.to_str().unwrap(), "--format", "json"]);
        assert_eq!(analyzed.status.code(), Some(0));
        summaries.push(std::fs::read(dir.join("summary.json")).expect("summary.json written"));
    }
    assert_eq!(
        summaries[0], summaries[1],
        "summary.json is byte-identical at --threads 1 and --threads 8"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn analyze_exits_2_on_corrupt_traces_and_usage_errors_but_1_on_io() {
    // Missing operand and unknown options are usage errors.
    assert_eq!(glmia(&["analyze"]).status.code(), Some(2));
    assert_eq!(
        glmia(&["analyze", "some/dir", "--oops"]).status.code(),
        Some(2)
    );
    // A missing trace is a runtime (I/O) failure: exit 1.
    assert_eq!(
        glmia(&["analyze", "/nonexistent/trace-dir"]).status.code(),
        Some(1)
    );
    // A trace that reads but is corrupt names the line and exits 2, so
    // scripts can tell bad input from transient failures.
    let dir = std::env::temp_dir().join(format!("glmia-cli-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("events.jsonl"),
        "{\"type\":\"Header\",\"schema\":2,\"label\":\"x\",\"config_hash\":\"00\"}\nnot json\n",
    )
    .unwrap();
    let out = glmia(&["analyze", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("corrupt trace"), "{stderr}");
    assert!(stderr.contains("line 2"), "error names the line: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_injected_runs_trace_and_analyze_end_to_end() {
    let dir = std::env::temp_dir().join(format!("glmia-cli-fault-{}", std::process::id()));
    let run = glmia(&[
        "run",
        "--preset",
        "quick",
        "--seed",
        "7",
        "--churn",
        "0.3",
        "--latency-dist",
        "uniform:1:5",
        "--drop",
        "0.05",
        "--json",
        "--trace",
        dir.to_str().unwrap(),
    ]);
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    // With churn at 0.3 per node-round over 8 nodes x 5 rounds the seeded
    // schedule contains crashes, so the stream declares the fault schema.
    let events = std::fs::read_to_string(dir.join("events.jsonl")).expect("events.jsonl written");
    let header = events.lines().next().expect("non-empty event stream");
    assert!(header.contains("\"schema\":3"), "{header}");
    assert!(
        events.contains("\"type\":\"Fault\""),
        "fault records present"
    );

    let analyzed = glmia(&["analyze", dir.to_str().unwrap(), "--format", "json"]);
    assert_eq!(
        analyzed.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&analyzed.stderr)
    );
    let summary: serde_json::Value = serde_json::from_str(
        &std::fs::read_to_string(dir.join("summary.json")).expect("summary.json written"),
    )
    .expect("valid summary JSON");
    assert!(
        summary["faults"]["crashes"].as_u64().unwrap_or(0) > 0,
        "fault summary reports the crashes: {summary}"
    );
    assert!(
        summary["faults"]["mean_availability"]
            .as_f64()
            .unwrap_or(2.0)
            < 1.0,
        "downtime shows up as availability below 1: {summary}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn threat_model_runs_trace_and_analyze_end_to_end() {
    let dir = std::env::temp_dir().join(format!("glmia-cli-threat-{}", std::process::id()));
    let run = glmia(&[
        "run",
        "--preset",
        "quick",
        "--seed",
        "19",
        "--attacker",
        "neighbors:0,1",
        "--defense",
        "clip:0.5",
        "--json",
        "--trace",
        dir.to_str().unwrap(),
    ]);
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    // A restricted attacker (or a defense) promotes the stream to the
    // threat schema and emits a Threat record carrying both descriptors.
    let events = std::fs::read_to_string(dir.join("events.jsonl")).expect("events.jsonl written");
    let header = events.lines().next().expect("non-empty event stream");
    assert!(header.contains("\"schema\":4"), "{header}");
    assert!(
        events.contains("\"type\":\"Threat\""),
        "threat record present"
    );
    assert!(
        events.contains("\"attacker\":\"neighbors:0..2\""),
        "{events}"
    );
    assert!(events.contains("\"defense\":\"clip:0.5\""), "{events}");

    let analyzed = glmia(&["analyze", dir.to_str().unwrap(), "--format", "json"]);
    assert_eq!(
        analyzed.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&analyzed.stderr)
    );
    let summary: serde_json::Value = serde_json::from_str(
        &std::fs::read_to_string(dir.join("summary.json")).expect("summary.json written"),
    )
    .expect("valid summary JSON");
    assert_eq!(
        summary["threat"]["attacker"].as_str(),
        Some("neighbors:0..2")
    );
    assert_eq!(summary["threat"]["defense"].as_str(), Some("clip:0.5"));
    let report = std::fs::read_to_string(dir.join("report.md")).expect("report.md written");
    assert!(report.contains("## Threat model"), "{report}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_threat_specs_exit_with_code_1() {
    let out = glmia(&["run", "--attacker", "fancy"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid value for --attacker"));
    let out = glmia(&["run", "--defense", "nope:1"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid value for --defense"));
    // Well-formed but out of range for the preset's 8 nodes: rejected by
    // config validation, naming the field.
    let out = glmia(&["run", "--preset", "quick", "--attacker", "neighbors:99"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("attacker"));
}

#[test]
fn analyze_exits_2_on_malformed_threat_records() {
    let dir = std::env::temp_dir().join(format!("glmia-cli-badthreat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // Schema-4 header, then a Threat record whose `attacker` is a number:
    // a typed corrupt-trace rejection, same contract as every other kind.
    std::fs::write(
        dir.join("events.jsonl"),
        "{\"type\":\"Header\",\"schema\":4,\"label\":\"x\",\"config_hash\":\"00\"}\n\
         {\"type\":\"Threat\",\"seed\":1,\"attacker\":42,\"observed_nodes\":2,\"nodes\":8,\"observations\":10}\n",
    )
    .unwrap();
    let out = glmia(&["analyze", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("corrupt trace"), "{stderr}");
    assert!(stderr.contains("line 2"), "error names the line: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seeded_runs_are_reproducible() {
    let args = [
        "run",
        "--dataset",
        "fashion",
        "--nodes",
        "6",
        "--k",
        "2",
        "--rounds",
        "2",
        "--eval-every",
        "1",
        "--seed",
        "9",
        "--json",
    ];
    let a = glmia(&args);
    let b = glmia(&args);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout);
}

// ---------------------------------------------------------------------------
// `glmia sweep`: scenario DSL + resumable checkpointed runner.

/// A fast 12-cell quick-scale scenario, written into `dir`.
fn write_sweep_scenario(dir: &std::path::Path) -> std::path::PathBuf {
    write_scenario_with(dir, 6, 2)
}

/// A 12-cell scenario whose cells are deliberately heavy (hundreds of
/// milliseconds each) so a mid-run kill reliably lands while later cells
/// are still pending.
fn write_slow_sweep_scenario(dir: &std::path::Path) -> std::path::PathBuf {
    write_scenario_with(dir, 32, 24)
}

fn write_scenario_with(dir: &std::path::Path, nodes: usize, rounds: usize) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("scenario.toml");
    std::fs::write(
        &path,
        format!(
            "[scenario]\nname = \"e2e\"\npreset = \"quick\"\ndataset = \"fashion\"\n\
             nodes = {nodes}\nk = {k}\nrounds = {rounds}\neval-every = {eval}\n\n\
             [seeds]\nrange = \"0..6\"\n\n\
             [axes]\nprotocol = [\"base\", \"samo\"]\n",
            k = if nodes > 8 { 4 } else { 2 },
            eval = rounds.div_ceil(4),
        ),
    )
    .unwrap();
    path
}

fn sweep_artifacts(dir: &std::path::Path) -> (Vec<u8>, Vec<u8>) {
    (
        std::fs::read(dir.join("sweep.json")).expect("sweep.json written"),
        std::fs::read(dir.join("report.md")).expect("report.md written"),
    )
}

#[test]
fn sweep_aggregates_are_byte_identical_across_worker_counts_and_reruns() {
    let base = std::env::temp_dir().join(format!("glmia-cli-sweep-workers-{}", std::process::id()));
    let scenario = write_sweep_scenario(&base);
    let one = base.join("w1");
    let four = base.join("w4");
    for (dir, workers) in [(&one, "1"), (&four, "4")] {
        let out = glmia(&[
            "sweep",
            scenario.to_str().unwrap(),
            "--out",
            dir.to_str().unwrap(),
            "--workers",
            workers,
            "--quiet",
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("12 cells (0 resumed, 12 ran)"),
            "{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
    assert_eq!(
        sweep_artifacts(&one),
        sweep_artifacts(&four),
        "sweep.json/report.md must not depend on --workers"
    );

    // Rerunning against a complete checkpoint executes nothing and leaves
    // the artifacts byte-identical.
    let before = sweep_artifacts(&one);
    let again = glmia(&[
        "sweep",
        scenario.to_str().unwrap(),
        "--out",
        one.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(again.status.success());
    assert!(
        String::from_utf8_lossy(&again.stdout).contains("(12 resumed, 0 ran)"),
        "{}",
        String::from_utf8_lossy(&again.stdout)
    );
    assert_eq!(sweep_artifacts(&one), before);
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn sweep_killed_mid_run_resumes_to_byte_identical_output() {
    let base = std::env::temp_dir().join(format!("glmia-cli-sweep-kill-{}", std::process::id()));
    let scenario = write_slow_sweep_scenario(&base);

    // Reference: one uninterrupted run.
    let reference_dir = base.join("reference");
    let reference = glmia(&[
        "sweep",
        scenario.to_str().unwrap(),
        "--out",
        reference_dir.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(
        reference.status.success(),
        "{}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let expected = sweep_artifacts(&reference_dir);

    // Kill: start the same sweep, SIGKILL it at (or inside) a cell
    // boundary as soon as at least one cell record hits the checkpoint.
    let killed_dir = base.join("killed");
    let checkpoint = killed_dir.join("checkpoint.jsonl");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_glmia"))
        .args([
            "sweep",
            scenario.to_str().unwrap(),
            "--out",
            killed_dir.to_str().unwrap(),
            "--workers",
            "1",
            "--quiet",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawning glmia sweep");
    let mut polls = 0;
    loop {
        let cell_lines = std::fs::read_to_string(&checkpoint)
            .map(|s| s.lines().count().saturating_sub(1))
            .unwrap_or(0);
        if cell_lines >= 1 {
            break;
        }
        polls += 1;
        assert!(polls < 30_000, "no cell completed within the poll budget");
        assert!(
            child.try_wait().expect("polling child").is_none(),
            "sweep finished before it could be killed; grow the scenario"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL the sweep");
    child.wait().expect("reaping the killed sweep");
    assert!(
        !killed_dir.join("sweep.json").exists(),
        "a killed sweep must not have produced final artifacts"
    );

    // The surviving checkpoint holds `complete` whole cell records; a
    // torn final line (kill mid-write) is healed, not fatal.
    let content = std::fs::read_to_string(&checkpoint).expect("checkpoint survives the kill");
    let lines = content.lines().count();
    let complete = if content.ends_with('\n') {
        lines
    } else {
        lines - 1
    };
    let resumable = complete - 1; // minus the header line

    // Resume and demand the uninterrupted bytes.
    let resumed = glmia(&[
        "sweep",
        scenario.to_str().unwrap(),
        "--out",
        killed_dir.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        stdout.contains(&format!("({resumable} resumed, {} ran)", 12 - resumable)),
        "expected {resumable} resumed cells: {stdout}"
    );
    assert_eq!(
        sweep_artifacts(&killed_dir),
        expected,
        "kill/resume must reproduce the uninterrupted bytes"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn sweep_exit_codes_partition_usage_parse_and_corruption() {
    let base = std::env::temp_dir().join(format!("glmia-cli-sweep-exit-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();

    // Usage problems: missing operand, unknown option → 2.
    assert_eq!(glmia(&["sweep"]).status.code(), Some(2));
    assert_eq!(glmia(&["sweep", "x.toml", "--oops"]).status.code(), Some(2));

    // Scenario problems are user-input problems → 1, with the line.
    let bad = base.join("bad.toml");
    std::fs::write(
        &bad,
        "[scenario]\nname = \"bad\"\nnodez = 4\n[seeds]\nlist = [1]\n",
    )
    .unwrap();
    let out = glmia(&["sweep", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 3"), "{stderr}");
    // A missing file is an I/O failure, also 1.
    assert_eq!(
        glmia(&["sweep", base.join("absent.toml").to_str().unwrap()])
            .status
            .code(),
        Some(1)
    );

    // A corrupt checkpoint in the output directory → 2.
    let scenario = write_sweep_scenario(&base);
    let out_dir = base.join("corrupt");
    std::fs::create_dir_all(&out_dir).unwrap();
    std::fs::write(out_dir.join("checkpoint.jsonl"), "not json\n").unwrap();
    let out = glmia(&[
        "sweep",
        scenario.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("corrupt checkpoint"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&base).ok();
}

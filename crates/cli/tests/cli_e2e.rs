//! End-to-end tests of the `glmia` binary.

use std::process::Command;

fn glmia(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_glmia"))
        .args(args)
        .output()
        .expect("running glmia binary")
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = glmia(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SUBCOMMANDS"));
    assert!(stdout.contains("lambda2"));
}

#[test]
fn no_args_prints_usage() {
    let out = glmia(&[]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_subcommand_fails() {
    let out = glmia(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn unknown_option_fails_with_message() {
    let out = glmia(&["run", "--nodse", "8"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown options"));
}

#[test]
fn topo_reports_statistics() {
    let out = glmia(&["topo", "--nodes", "16", "--k", "4", "--seed", "3"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("connected: true"));
    assert!(stdout.contains("λ₂(W)"));
}

#[test]
fn lambda2_emits_series() {
    let out = glmia(&[
        "lambda2",
        "--nodes",
        "16",
        "--k",
        "2",
        "--iterations",
        "4",
        "--runs",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Header plus rule plus 4 iterations.
    assert_eq!(stdout.lines().count(), 6, "{stdout}");
}

#[test]
fn run_small_experiment_emits_json() {
    let out = glmia(&[
        "run",
        "--dataset",
        "fashion",
        "--nodes",
        "6",
        "--k",
        "2",
        "--rounds",
        "2",
        "--eval-every",
        "1",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value: serde_json::Value =
        serde_json::from_str(&stdout).expect("valid JSON from --json run");
    assert_eq!(value["rounds"].as_array().map(Vec::len), Some(2));
}

#[test]
fn seeded_runs_are_reproducible() {
    let args = [
        "run",
        "--dataset",
        "fashion",
        "--nodes",
        "6",
        "--k",
        "2",
        "--rounds",
        "2",
        "--eval-every",
        "1",
        "--seed",
        "9",
        "--json",
    ];
    let a = glmia(&args);
    let b = glmia(&args);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout);
}
